"""Textbook (multiprecision) CKKS — Cheon-Kim-Kim-Song 2017 [8].

This is the scheme behind the paper's non-RNS "CNN-HE" baselines.  All
ring elements live in :class:`repro.nt.polynomial.PolyRing` with Python
big-integer coefficients, i.e. the "multi-precision library" cost model
that the RNS variant (:mod:`repro.ckksrns`) eliminates.

Primitives follow §II of the paper: ``KeyGen``, ``Encrypt``, ``Decrypt``,
``Add``, ``Mult`` (+ relinearisation with the ``P = q_L`` evaluation-key
trick), ``Resc`` (rescaling) and ``Rot`` (slot rotation via Galois keys).
"""

from repro.ckks.encoder import CkksEncoder
from repro.ckks.context import CkksContext, CkksParams
from repro.ckks.ciphertext import Ciphertext, CiphertextExt
from repro.ckks.keys import KeyPair, PublicKey, RelinKey, GaloisKey, SecretKey

__all__ = [
    "CkksEncoder",
    "CkksContext",
    "CkksParams",
    "Ciphertext",
    "CiphertextExt",
    "KeyPair",
    "SecretKey",
    "PublicKey",
    "RelinKey",
    "GaloisKey",
]
