"""RLWE noise/key distributions (§II notation).

* ``chi_key = HW(h)`` — ternary secrets with Hamming weight *h*.
* ``chi_enc`` — here the standard ZO(1/2) ternary encryption randomness.
* ``chi_err`` — rounded discrete Gaussian with sigma = 3.2 (HE standard).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_hwt", "sample_zo", "sample_gaussian", "DEFAULT_SIGMA"]

#: Error std-dev from the HomomorphicEncryption.org standard [37].
DEFAULT_SIGMA = 3.2


def sample_hwt(n: int, h: int, rng: np.random.Generator) -> np.ndarray:
    """Signed binary vector in {±1}^n with exactly *h* non-zeros (chi_key)."""
    if not 0 < h <= n:
        raise ValueError(f"Hamming weight must be in (0, {n}], got {h}")
    out = np.zeros(n, dtype=np.int64)
    pos = rng.choice(n, size=h, replace=False)
    out[pos] = rng.choice(np.array([-1, 1], dtype=np.int64), size=h)
    return out


def sample_zo(n: int, rng: np.random.Generator, rho: float = 0.5) -> np.ndarray:
    """Ternary vector: each coefficient ±1 w.p. rho/2 each, else 0 (chi_enc)."""
    if not 0 < rho <= 1:
        raise ValueError("rho must be in (0, 1]")
    u = rng.random(n)
    out = np.zeros(n, dtype=np.int64)
    out[u < rho / 2] = 1
    out[(u >= rho / 2) & (u < rho)] = -1
    return out


def sample_gaussian(n: int, rng: np.random.Generator, sigma: float = DEFAULT_SIGMA) -> np.ndarray:
    """Rounded discrete Gaussian error vector (chi_err)."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return np.zeros(n, dtype=np.int64)
    return np.rint(rng.normal(0.0, sigma, size=n)).astype(np.int64)
