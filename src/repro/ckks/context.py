"""The multiprecision CKKS context: parameters, keygen and all primitives.

Implements §II of the paper over :class:`repro.nt.polynomial.PolyRing`:

* modulus chain ``q_ell = q0 * Δ^ell`` for ``ell = 0..L`` (rescaling by Δ
  exactly divides because Δ is a power of two);
* ``KeyGen(N, q, L)`` with ternary HW(h) secret, RLWE public key, and the
  evaluation key ``ek = (-a's + e' + P s^2, a')`` over ``P·q_L`` with
  special modulus ``P = q_L`` (the original CKKS key-switching);
* ``Encrypt/Decrypt/Add/Mult/Resc/Rot`` exactly as listed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ckks.ciphertext import Ciphertext, CiphertextExt
from repro.ckks.encoder import CkksEncoder
from repro.ckks.keys import GaloisKey, KeyPair, PublicKey, RelinKey, SecretKey
from repro.ckks.sampling import DEFAULT_SIGMA, sample_gaussian, sample_hwt, sample_zo
from repro.nt.polynomial import PolyRing
from repro.obs.metrics import get_registry
from repro.obs.tracer import traced
from repro.utils.cache import PlaintextCache
from repro.utils.rng import derive_rng

__all__ = ["CkksParams", "CkksContext"]


@dataclass(frozen=True)
class CkksParams:
    """Scheme parameters (paper Table II shape).

    ``n`` ring degree, ``scale_bits`` = log2 Δ, ``q0_bits`` the base
    modulus width, ``levels`` = L (max multiplicative depth), ``hw`` the
    secret Hamming weight, ``sigma`` the error std-dev.
    """

    n: int = 2**12
    scale_bits: int = 26
    q0_bits: int = 40
    levels: int = 6
    hw: int = 64
    sigma: float = DEFAULT_SIGMA

    def __post_init__(self) -> None:
        if self.n < 8 or self.n & (self.n - 1):
            raise ValueError("n must be a power of two >= 8")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if not 0 < self.scale_bits < 60:
            raise ValueError("scale_bits out of range")
        if self.q0_bits < self.scale_bits:
            raise ValueError("q0_bits should be >= scale_bits for correct decryption")

    @property
    def scale(self) -> float:
        return float(1 << self.scale_bits)

    @property
    def log_q(self) -> int:
        """Total modulus bits at the top level (Table II 'log q')."""
        return self.q0_bits + self.scale_bits * self.levels


class CkksContext:
    """All CKKS primitives bound to one parameter set."""

    def __init__(self, params: CkksParams):
        self.params = params
        self.n = params.n
        self.encoder = CkksEncoder(params.n)
        delta = 1 << params.scale_bits
        q0 = 1 << params.q0_bits
        #: q_ell = q0 * Δ^ell, ell = 0..L
        self.moduli = [q0 * delta**ell for ell in range(params.levels + 1)]
        self.q_top = self.moduli[-1]
        #: Special key-switching modulus P = q_L (original CKKS choice).
        self.p_special = self.q_top
        self._rings = {q: PolyRing(self.n, q) for q in self.moduli}
        self._rings_big = {}  # lazily built P*q_ell rings
        #: Optional compile-once store for encoded plaintexts; installed
        #: by the inference-plan layer (:mod:`repro.henn.plan`).
        self.plain_cache: PlaintextCache | None = None

    # -- helpers ------------------------------------------------------------

    def ring(self, level: int) -> PolyRing:
        return self._rings[self.moduli[level]]

    def ring_big(self, level: int) -> PolyRing:
        q = self.moduli[level] * self.p_special
        if q not in self._rings_big:
            self._rings_big[q] = PolyRing(self.n, q)
        return self._rings_big[q]

    @property
    def top_level(self) -> int:
        return self.params.levels

    @property
    def slots(self) -> int:
        return self.n // 2

    # -- key generation -------------------------------------------------------

    @traced("ckks.keygen")
    def keygen(
        self, seed: int | np.random.Generator | None = None, rotations: tuple[int, ...] = ()
    ) -> KeyPair:
        """``KeyGen(N, q, L) -> sk, pk, ek`` plus optional Galois keys."""
        rng = derive_rng(seed)
        ring = self.ring(self.top_level)
        big = self.ring_big(self.top_level)
        s = sample_hwt(self.n, self.params.hw, rng).astype(object) % ring.q
        # pk = (b, a): b = -a s + e (mod q_L)
        a = ring.random_uniform(rng)
        e = sample_gaussian(self.n, rng, self.params.sigma).astype(object)
        b = ring.sub(ring.from_coeffs(e), ring.mul(a, s))
        # ek over P * q_L encoding P * s^2
        s_big = np.mod(self._center(s, ring.q), big.q)
        s2_big = big.mul(s_big, s_big)
        a2 = big.random_uniform(rng)
        e2 = sample_gaussian(self.n, rng, self.params.sigma).astype(object)
        b2 = big.add(
            big.sub(big.from_coeffs(e2), big.mul(a2, s_big)),
            big.scalar_mul(s2_big, self.p_special),
        )
        relin = RelinKey(b=b2, a=a2, p_special=self.p_special)
        # ek3 over P * q_L encoding P * s^3 — consumed when a degree-3
        # extended ciphertext (lazy BSGS fold) is relinearised.
        s3_big = big.mul(s2_big, s_big)
        a3 = big.random_uniform(rng)
        e3 = sample_gaussian(self.n, rng, self.params.sigma).astype(object)
        b3 = big.add(
            big.sub(big.from_coeffs(e3), big.mul(a3, s_big)),
            big.scalar_mul(s3_big, self.p_special),
        )
        relin3 = RelinKey(b=b3, a=a3, p_special=self.p_special)
        kp = KeyPair(sk=SecretKey(s=s), pk=PublicKey(b=b, a=a), relin=relin, relin3=relin3)
        for r in rotations:
            self.add_galois_key(kp, r, rng)
        return kp

    def add_galois_key(self, kp: KeyPair, rotation: int, rng: np.random.Generator) -> None:
        """Generate the key switching ``s(X^g) -> s`` for left-rotation *rotation*."""
        g = self.galois_element(rotation)
        if g in kp.galois:
            return
        ring = self.ring(self.top_level)
        big = self.ring_big(self.top_level)
        s = kp.sk.s
        s_big = np.mod(self._center(s, ring.q), big.q)
        sg = big.automorphism(s_big, g)
        a = big.random_uniform(rng)
        e = sample_gaussian(self.n, rng, self.params.sigma).astype(object)
        b = big.add(
            big.sub(big.from_coeffs(e), big.mul(a, s_big)),
            big.scalar_mul(sg, self.p_special),
        )
        kp.galois[g] = GaloisKey(g=g, b=b, a=a, p_special=self.p_special)

    def galois_element(self, rotation: int) -> int:
        """Galois group element for a left-rotation by *rotation* slots."""
        if rotation == "conj":  # pragma: no cover - defensive
            return 2 * self.n - 1
        return pow(5, rotation % self.slots, 2 * self.n)

    @staticmethod
    def _center(a: np.ndarray, q: int) -> np.ndarray:
        half = q // 2
        return np.where(np.asarray(a, dtype=object) > half, np.asarray(a, dtype=object) - q, a)

    # -- encryption ------------------------------------------------------------

    @traced("ckks.encrypt")
    def encrypt(
        self,
        pk: PublicKey,
        values: np.ndarray,
        rng: int | np.random.Generator | None = None,
        scale: float | None = None,
    ) -> Ciphertext:
        """``Encrypt(z, Δ, pk)``: encode then mask with an RLWE sample."""
        rng = derive_rng(rng)
        scale = float(scale or self.params.scale)
        m = self.encoder.encode(values, scale)
        return self.encrypt_poly(pk, m, scale, rng)

    def encrypt_poly(
        self, pk: PublicKey, m: np.ndarray, scale: float, rng: np.random.Generator
    ) -> Ciphertext:
        """Encrypt an already-encoded integer polynomial at top level."""
        ring = self.ring(self.top_level)
        v = ring.from_coeffs(sample_zo(self.n, rng).astype(object))
        e0 = sample_gaussian(self.n, rng, self.params.sigma).astype(object)
        e1 = sample_gaussian(self.n, rng, self.params.sigma).astype(object)
        c0 = ring.add(ring.mul(v, pk.b), ring.from_coeffs(np.asarray(m, dtype=object) + e0))
        c1 = ring.add(ring.mul(v, pk.a), ring.from_coeffs(e1))
        return Ciphertext(c0=c0, c1=c1, level=self.top_level, scale=scale, n=self.n)

    @traced("ckks.decrypt")
    def decrypt(self, sk: SecretKey, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        """``Decrypt(c, Δ, sk) -> z`` (complex slot vector)."""
        ring = self.ring(ct.level)
        s = np.mod(self._center(sk.s, self.q_top), ring.q)
        m = ring.add(ct.c0, ring.mul(ct.c1, s))
        centered = ring.to_centered(m)
        z = self.encoder.decode(centered, ct.scale)
        return z[:count] if count is not None else z

    def decrypt_real(self, sk: SecretKey, ct: Ciphertext, count: int | None = None) -> np.ndarray:
        """Decrypt and keep the real parts (the common CNN use)."""
        return np.real(self.decrypt(sk, ct, count))

    # -- homomorphic operations --------------------------------------------------

    def _align(self, a: Ciphertext, b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two ciphertexts to a common level (mod-switch the higher one)."""
        if a.level > b.level:
            a = self.mod_switch_to(a, b.level)
        elif b.level > a.level:
            b = self.mod_switch_to(b, a.level)
        return a, b

    @traced("ckks.add")
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition (scales must match)."""
        a, b = self._align(a, b)
        if not np.isclose(a.scale, b.scale, rtol=1e-9):
            raise ValueError(f"scale mismatch in add: {a.scale} vs {b.scale}")
        ring = self.ring(a.level)
        return Ciphertext(ring.add(a.c0, b.c0), ring.add(a.c1, b.c1), a.level, a.scale, self.n)

    @traced("ckks.sub")
    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction (scales must match)."""
        a, b = self._align(a, b)
        if not np.isclose(a.scale, b.scale, rtol=1e-9):
            raise ValueError(f"scale mismatch in sub: {a.scale} vs {b.scale}")
        ring = self.ring(a.level)
        return Ciphertext(ring.sub(a.c0, b.c0), ring.sub(a.c1, b.c1), a.level, a.scale, self.n)

    def negate(self, a: Ciphertext) -> Ciphertext:
        ring = self.ring(a.level)
        return Ciphertext(ring.neg(a.c0), ring.neg(a.c1), a.level, a.scale, self.n)

    @traced("ckks.add_plain")
    def add_plain(self, a: Ciphertext, values: np.ndarray | float) -> Ciphertext:
        """Add a plaintext vector/scalar encoded at the ciphertext's scale."""
        ring = self.ring(a.level)

        def encode_now() -> np.ndarray:
            get_registry().counter("plan.encode.fresh").inc()
            vec = np.full(self.slots, float(values)) if np.isscalar(values) else values
            return ring.from_coeffs(self.encoder.encode(vec, a.scale))

        if np.isscalar(values) and self.plain_cache is not None:
            key = ("ckks.scalar", self.n, a.level, float(a.scale), float(values))
            pt = self.plain_cache.get_or_encode(key, encode_now)
        else:
            pt = encode_now()
        return Ciphertext(ring.add(a.c0, pt), a.c1.copy(), a.level, a.scale, self.n)

    @traced("ckks.mul_plain")
    def mul_plain(
        self, a: Ciphertext, values: np.ndarray | float, plain_scale: float | None = None
    ) -> Ciphertext:
        """Multiply by a plaintext vector/scalar; output scale multiplies."""
        ring = self.ring(a.level)
        plain_scale = float(plain_scale or self.params.scale)
        if np.isscalar(values):
            values = np.full(self.slots, float(values))
        get_registry().counter("plan.encode.fresh").inc()
        m = ring.from_coeffs(self.encoder.encode(values, plain_scale))
        return Ciphertext(
            ring.mul(a.c0, m), ring.mul(a.c1, m), a.level, a.scale * plain_scale, self.n
        )

    @traced("ckks.mul_plain_scalar")
    def mul_plain_scalar(
        self, a: Ciphertext, scalar: float, plain_scale: float | None = None
    ) -> Ciphertext:
        """Multiply by one real scalar — coefficientwise, no encoding FFT."""
        ring = self.ring(a.level)
        plain_scale = float(plain_scale or self.params.scale)
        c = int(round(float(scalar) * plain_scale))
        return Ciphertext(
            ring.scalar_mul(a.c0, c),
            ring.scalar_mul(a.c1, c),
            a.level,
            a.scale * plain_scale,
            self.n,
        )

    @traced("ckks.mul")
    def mul(self, a: Ciphertext, b: Ciphertext, relin: RelinKey) -> Ciphertext:
        """``Mult(c1, c2, ek)`` with immediate relinearisation."""
        return self.relinearize(self.mul_raw(a, b), relin)

    @traced("ckks.square")
    def square(self, a: Ciphertext, relin: RelinKey) -> Ciphertext:
        """Homomorphic squaring (saves one ring product vs. :meth:`mul`)."""
        return self.relinearize(self.square_raw(a), relin)

    # -- extended (degree >= 2) arithmetic: deferred relinearisation ------------------

    @traced("ckks.mul_raw")
    def mul_raw(self, a: Ciphertext, b: "Ciphertext | CiphertextExt") -> CiphertextExt:
        """Raw tensor product without relinearisation.

        ``ct × ct`` yields degree 2; ``ct × ext2`` (a BSGS giant-step
        fold against a raw giant power) yields degree 3.
        """
        if isinstance(b, CiphertextExt):
            return self._mul_ct_ext(a, b)
        a, b = self._align(a, b)
        ring = self.ring(a.level)
        d0 = ring.mul(a.c0, b.c0)
        d1 = ring.add(ring.mul(a.c0, b.c1), ring.mul(a.c1, b.c0))
        d2 = ring.mul(a.c1, b.c1)
        return CiphertextExt(d0, d1, d2, a.level, a.scale * b.scale, self.n)

    @traced("ckks.square_raw")
    def square_raw(self, a: Ciphertext) -> CiphertextExt:
        """Raw squaring without relinearisation (degree-2 result)."""
        ring = self.ring(a.level)
        d0 = ring.mul(a.c0, a.c0)
        c0c1 = ring.mul(a.c0, a.c1)
        d1 = ring.add(c0c1, c0c1)
        d2 = ring.mul(a.c1, a.c1)
        return CiphertextExt(d0, d1, d2, a.level, a.scale**2, self.n)

    def _mul_ct_ext(self, a: Ciphertext, x: CiphertextExt) -> CiphertextExt:
        """Degree-1 × degree-2 product: six ring products, degree-3 result."""
        if x.degree != 2:
            raise ValueError("ct × ext products require a degree-2 extended operand")
        if a.level > x.level:
            a = self.mod_switch_to(a, x.level)
        elif x.level > a.level:
            x = self.mod_switch_ext(x, a.level)
        ring = self.ring(a.level)
        e0 = ring.mul(a.c0, x.c0)
        e1 = ring.add(ring.mul(a.c0, x.c1), ring.mul(a.c1, x.c0))
        e2 = ring.add(ring.mul(a.c0, x.c2), ring.mul(a.c1, x.c1))
        e3 = ring.mul(a.c1, x.c2)
        return CiphertextExt(
            e0, e1, e2, a.level, a.scale * x.scale, self.n, c3=e3, deferred=x.deferred
        )

    @traced("ckks.add_ext")
    def add_ext(
        self, x: "Ciphertext | CiphertextExt", y: "Ciphertext | CiphertextExt"
    ) -> "Ciphertext | CiphertextExt":
        """Add ciphertexts of possibly different degrees (levels aligned)."""
        level = min(x.level, y.level)
        x = self._any_mod_switch(x, level)
        y = self._any_mod_switch(y, level)
        if not np.isclose(x.scale, y.scale, rtol=1e-9):
            raise ValueError(f"scale mismatch in add_ext: {x.scale} vs {y.scale}")
        ring = self.ring(level)
        xs = x.components() if isinstance(x, CiphertextExt) else [x.c0, x.c1]
        ys = y.components() if isinstance(y, CiphertextExt) else [y.c0, y.c1]
        out = []
        for idx in range(max(len(xs), len(ys))):
            if idx < len(xs) and idx < len(ys):
                out.append(ring.add(xs[idx], ys[idx]))
            else:
                out.append((xs[idx] if idx < len(xs) else ys[idx]).copy())
        if len(out) == 2:
            return Ciphertext(out[0], out[1], level, x.scale, self.n)
        deferred = getattr(x, "deferred", False) or getattr(y, "deferred", False)
        return CiphertextExt(
            out[0], out[1], out[2], level, x.scale, self.n,
            c3=out[3] if len(out) > 3 else None, deferred=deferred,
        )

    def _any_mod_switch(self, c, level: int):
        if isinstance(c, CiphertextExt):
            return self.mod_switch_ext(c, level)
        return self.mod_switch_to(c, level)

    def mod_switch_ext(self, x: CiphertextExt, level: int) -> CiphertextExt:
        """Drop an extended ciphertext to a lower level (scale kept)."""
        if level > x.level:
            raise ValueError("cannot mod-switch upwards")
        if level == x.level:
            return x
        ring = self.ring(x.level)
        new_q = self.moduli[level]
        comps = [ring.mod_switch(c, new_q) for c in x.components()]
        return CiphertextExt(
            comps[0], comps[1], comps[2], level, x.scale, self.n,
            c3=comps[3] if len(comps) > 3 else None, deferred=x.deferred,
        )

    @traced("ckks.rescale_ext")
    def rescale_ext(self, x: CiphertextExt) -> CiphertextExt:
        """Rescale an extended ciphertext component-wise (marks deferred)."""
        if x.level == 0:
            raise ValueError("cannot rescale below level 0")
        ring = self.ring(x.level)
        delta = 1 << self.params.scale_bits
        new_q = self.moduli[x.level - 1]
        comps = [ring.round_div(c, delta, new_q) for c in x.components()]
        return CiphertextExt(
            comps[0], comps[1], comps[2], x.level - 1, x.scale / delta, self.n,
            c3=comps[3] if len(comps) > 3 else None, deferred=True,
        )

    @traced("ckks.mul_plain_scalar_ext")
    def mul_plain_scalar_ext(
        self, x: CiphertextExt, scalar: float, plain_scale: float | None = None
    ) -> CiphertextExt:
        """Scalar multiply of an extended ciphertext (every component)."""
        ring = self.ring(x.level)
        plain_scale = float(plain_scale or self.params.scale)
        c = int(round(float(scalar) * plain_scale))
        comps = [ring.scalar_mul(comp, c) for comp in x.components()]
        return CiphertextExt(
            comps[0], comps[1], comps[2], x.level, x.scale * plain_scale, self.n,
            c3=comps[3] if len(comps) > 3 else None, deferred=x.deferred,
        )

    def add_plain_ext(self, x: CiphertextExt, values: np.ndarray | float) -> CiphertextExt:
        """Plaintext addition on an extended ciphertext (only ``c0`` moves)."""
        base = self.add_plain(Ciphertext(x.c0, x.c1, x.level, x.scale, self.n), values)
        comps = [base.c0, base.c1] + [c.copy() for c in x.components()[2:]]
        return CiphertextExt(
            comps[0], comps[1], comps[2], x.level, x.scale, self.n,
            c3=comps[3] if len(comps) > 3 else None, deferred=x.deferred,
        )

    @traced("ckks.relinearize")
    def relinearize(
        self, x: CiphertextExt, relin: RelinKey, relin3: RelinKey | None = None
    ) -> Ciphertext:
        """Switch the high components back to degree 1.

        Degree 3 runs a *merged* switch: the ``s²`` and ``s³`` terms
        share one lifted accumulator so the exact rounded P-division is
        paid once per output component instead of once per key.
        """
        reg = get_registry()
        reg.counter("relin.count").inc()
        if x.deferred:
            reg.counter("relin.deferred").inc()
        ring = self.ring(x.level)
        big = self.ring_big(x.level)
        q_big = big.q
        lift_q = self.q_top * self.p_special
        x2_big = np.mod(ring.to_centered(x.c2), q_big)
        kb_l = np.mod(self._center(relin.b, lift_q), q_big)
        ka_l = np.mod(self._center(relin.a, lift_q), q_big)
        t0 = big.mul(x2_big, kb_l)
        t1 = big.mul(x2_big, ka_l)
        if x.c3 is not None:
            if relin3 is None:
                raise ValueError("degree-3 relinearisation requires the s^3 key (relin3)")
            x3_big = np.mod(ring.to_centered(x.c3), q_big)
            kb3_l = np.mod(self._center(relin3.b, lift_q), q_big)
            ka3_l = np.mod(self._center(relin3.a, lift_q), q_big)
            t0 = big.add(t0, big.mul(x3_big, kb3_l))
            t1 = big.add(t1, big.mul(x3_big, ka3_l))
        r0 = big.round_div(t0, self.p_special, ring.q)
        r1 = big.round_div(t1, self.p_special, ring.q)
        return Ciphertext(
            ring.add(x.c0, r0), ring.add(x.c1, r1), x.level, x.scale, self.n
        )

    @traced("ckks.keyswitch")
    def _keyswitch(
        self, x: np.ndarray, kb: np.ndarray, ka: np.ndarray, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``round(P^{-1} * x * key) mod q_level`` for both key components."""
        ring = self.ring(level)
        big = self.ring_big(level)
        q_big = big.q
        x_big = np.mod(ring.to_centered(x), q_big)
        kb_l = np.mod(self._center(kb, self.q_top * self.p_special), q_big)
        ka_l = np.mod(self._center(ka, self.q_top * self.p_special), q_big)
        t0 = big.mul(x_big, kb_l)
        t1 = big.mul(x_big, ka_l)
        r0 = big.round_div(t0, self.p_special, ring.q)
        r1 = big.round_div(t1, self.p_special, ring.q)
        return r0, r1

    @traced("ckks.rescale")
    def rescale(self, a: Ciphertext) -> Ciphertext:
        """``Resc(c)``: divide by Δ and drop one level."""
        if a.level == 0:
            raise ValueError("cannot rescale below level 0")
        ring = self.ring(a.level)
        delta = 1 << self.params.scale_bits
        new_q = self.moduli[a.level - 1]
        c0 = ring.round_div(a.c0, delta, new_q)
        c1 = ring.round_div(a.c1, delta, new_q)
        return Ciphertext(c0, c1, a.level - 1, a.scale / delta, self.n)

    def mod_switch_to(self, a: Ciphertext, level: int) -> Ciphertext:
        """Drop to a lower level without dividing the plaintext (scale kept)."""
        if level > a.level:
            raise ValueError("cannot mod-switch upwards")
        if level == a.level:
            return a
        ring = self.ring(a.level)
        new_q = self.moduli[level]
        c0 = ring.mod_switch(a.c0, new_q)
        c1 = ring.mod_switch(a.c1, new_q)
        return Ciphertext(c0, c1, level, a.scale, self.n)

    @traced("ckks.rotate")
    def rotate(self, a: Ciphertext, rotation: int, galois: dict[int, GaloisKey]) -> Ciphertext:
        """``Rot(c, r)``: left-rotate slots by *rotation* using a Galois key."""
        rotation = rotation % self.slots
        if rotation == 0:
            return a.copy()
        g = self.galois_element(rotation)
        if g not in galois:
            raise KeyError(f"no Galois key for rotation {rotation} (element {g})")
        key = galois[g]
        ring = self.ring(a.level)
        c0g = ring.automorphism(a.c0, g)
        c1g = ring.automorphism(a.c1, g)
        r0, r1 = self._keyswitch(c1g, key.b, key.a, a.level)
        return Ciphertext(ring.add(c0g, r0), r1, a.level, a.scale, self.n)

    def rescale_to_match(self, a: Ciphertext, target_scale: float) -> Ciphertext:
        """Rescale repeatedly until the scale matches *target_scale*."""
        out = a
        while out.scale > target_scale * 1.5 and out.level > 0:
            out = self.rescale(out)
        if not np.isclose(out.scale, target_scale, rtol=1e-6):
            raise ValueError(f"cannot reach scale {target_scale} from {a.scale}")
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.params
        return f"CkksContext(n={p.n}, Δ=2^{p.scale_bits}, L={p.levels}, log q={p.log_q})"
