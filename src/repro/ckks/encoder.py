"""Canonical-embedding encoder/decoder (§II of the paper).

Real/complex vectors of length ``N/2`` are mapped through the canonical
embedding ``tau`` into real polynomials of degree < N, scaled by ``Δ``
and rounded to integer coefficients: ``m = [Δ · tau^{-1}(z)]``.

Slots are ordered along the orbit of 5 modulo 2N, so that the Galois
automorphism ``X -> X^{5^r}`` acts as a cyclic left-rotation by ``r``
slots (the ``Rot`` primitive) and ``X -> X^{-1}`` as complex
conjugation.  Both directions are computed with FFTs in O(N log N).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CkksEncoder"]


class CkksEncoder:
    """Encode/decode between ``C^{N/2}`` slot vectors and integer polynomials."""

    def __init__(self, n: int):
        if n < 4 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 4, got {n}")
        self.n = int(n)
        self.slots = self.n // 2
        # Orbit of 5 mod 2n: logical slot j sits at primitive root
        # omega^{e_j} with e_j = 5^j mod 2n; natural FFT position is
        # t_j = (e_j - 1) / 2.
        two_n = 2 * self.n
        e = 1
        nat = np.empty(self.slots, dtype=np.int64)
        for j in range(self.slots):
            nat[j] = (e - 1) // 2
            e = (e * 5) % two_n
        self._nat_index = nat
        k = np.arange(self.n)
        self._omega_neg = np.exp(-1j * np.pi * k / self.n)  # omega^{-k}
        self._omega_pos = np.exp(1j * np.pi * k / self.n)  # omega^{+k}

    # -- core maps ---------------------------------------------------------

    def embed(self, values: np.ndarray) -> np.ndarray:
        """``tau^{-1}``: slot vector -> real coefficient vector (float64)."""
        values = np.asarray(values, dtype=np.complex128)
        if values.ndim != 1 or values.shape[0] > self.slots:
            raise ValueError(f"need a 1-D vector of at most {self.slots} slots")
        v = np.zeros(self.n, dtype=np.complex128)
        v[self._nat_index[: values.shape[0]]] = values
        s = np.fft.fft(v)  # S_k = sum_t v_t e^{-2 pi i t k / n}
        return (2.0 / self.n) * np.real(self._omega_neg * s)

    def project(self, coeffs_real: np.ndarray) -> np.ndarray:
        """``tau``: real coefficient vector -> slot vector (length N/2)."""
        coeffs_real = np.asarray(coeffs_real, dtype=np.float64)
        if coeffs_real.shape != (self.n,):
            raise ValueError(f"expected {self.n} coefficients")
        evals = self.n * np.fft.ifft(coeffs_real * self._omega_pos)
        return evals[self._nat_index]

    # -- scaled integer interface -------------------------------------------

    def encode(self, values: np.ndarray, scale: float) -> np.ndarray:
        """``[Δ · tau^{-1}(z)]`` as an ``object`` (big-int) coefficient array.

        Rounding is to nearest (ties away from zero, matching ``[.]``).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        real_coeffs = self.embed(values) * float(scale)
        if np.max(np.abs(real_coeffs), initial=0.0) >= 2**62:
            # Stay exact beyond float64-int range.
            return np.array([int(round(c)) for c in real_coeffs], dtype=object)
        return np.array([int(v) for v in np.rint(real_coeffs).astype(np.int64)], dtype=object)

    def decode(self, coeffs: np.ndarray, scale: float) -> np.ndarray:
        """Inverse of :meth:`encode` for *centered* integer coefficients."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        fc = np.array([float(int(c)) for c in coeffs], dtype=np.float64)
        return self.project(fc / float(scale))

    # -- diagnostics ---------------------------------------------------------

    def encoding_error(self, values: np.ndarray, scale: float) -> np.ndarray:
        """Per-slot absolute error of one encode/decode round trip.

        Reproduces the §III.C observation that small inputs near zero can
        be destroyed by rounding when ``Δ`` is small.
        """
        values = np.asarray(values, dtype=np.complex128)
        back = self.decode(self.encode(values, scale), scale)[: values.shape[0]]
        return np.abs(back - values)
