"""Ciphertext container for the multiprecision scheme."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ciphertext", "CiphertextExt"]


@dataclass
class Ciphertext:
    """``c = (c0, c1) in R_{q_level}^2`` with scale bookkeeping.

    ``level`` counts remaining rescaling steps: a fresh ciphertext is at
    ``level = L`` and each :meth:`~repro.ckks.context.CkksContext.rescale`
    decrements it.  ``scale`` is the current plaintext scaling factor Δ'.
    """

    c0: np.ndarray  # object coefficient array mod q_level
    c1: np.ndarray
    level: int
    scale: float
    n: int

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.level, self.scale, self.n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ciphertext(n={self.n}, level={self.level}, scale=2^{np.log2(self.scale):.1f})"


@dataclass
class CiphertextExt:
    """Extended (degree ≥ 2) ciphertext awaiting relinearisation.

    ``(c0, c1, c2[, c3])`` decrypts under ``(1, s, s², s³)``.  Produced
    by raw tensor products; ``deferred`` is True once a rescale has run
    while extended (the relinearisation then happens at the lower level).
    """

    c0: np.ndarray
    c1: np.ndarray
    c2: np.ndarray
    level: int
    scale: float
    n: int
    c3: np.ndarray | None = None
    deferred: bool = False

    @property
    def degree(self) -> int:
        return 2 if self.c3 is None else 3

    def components(self) -> list[np.ndarray]:
        out = [self.c0, self.c1, self.c2]
        if self.c3 is not None:
            out.append(self.c3)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CiphertextExt(n={self.n}, degree={self.degree}, level={self.level}, "
            f"scale=2^{np.log2(self.scale):.1f}, deferred={self.deferred})"
        )
