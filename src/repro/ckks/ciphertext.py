"""Ciphertext container for the multiprecision scheme."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ciphertext"]


@dataclass
class Ciphertext:
    """``c = (c0, c1) in R_{q_level}^2`` with scale bookkeeping.

    ``level`` counts remaining rescaling steps: a fresh ciphertext is at
    ``level = L`` and each :meth:`~repro.ckks.context.CkksContext.rescale`
    decrements it.  ``scale`` is the current plaintext scaling factor Δ'.
    """

    c0: np.ndarray  # object coefficient array mod q_level
    c1: np.ndarray
    level: int
    scale: float
    n: int

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.level, self.scale, self.n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ciphertext(n={self.n}, level={self.level}, scale=2^{np.log2(self.scale):.1f})"
