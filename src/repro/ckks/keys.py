"""Key material containers for the multiprecision CKKS scheme."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SecretKey", "PublicKey", "RelinKey", "GaloisKey", "KeyPair"]


@dataclass
class SecretKey:
    """``sk = (1, s)`` with ``s`` a ternary HW(h) polynomial."""

    s: np.ndarray  # object array, canonical mod q_L


@dataclass
class PublicKey:
    """``pk = (b, a)`` with ``b = -a s + e (mod q_L)``."""

    b: np.ndarray
    a: np.ndarray


@dataclass
class RelinKey:
    """Evaluation key ``ek = (b', a')`` over ``P * q_L`` encoding ``P s^2``."""

    b: np.ndarray
    a: np.ndarray
    p_special: int  # the special modulus P


@dataclass
class GaloisKey:
    """Key-switching key from ``s(X^g)`` to ``s``, over ``P * q_L``."""

    g: int
    b: np.ndarray
    a: np.ndarray
    p_special: int


@dataclass
class KeyPair:
    """Everything a party or evaluator may hold.

    ``relin3`` encodes ``P s³`` — the evaluation key consumed when a
    degree-3 extended ciphertext (lazy BSGS giant-step fold) is
    relinearised in one merged pass.
    """

    sk: SecretKey
    pk: PublicKey
    relin: RelinKey
    galois: dict[int, GaloisKey] = field(default_factory=dict)
    relin3: RelinKey | None = None

    def public_part(self) -> "KeyPair":
        """Evaluator view: same keys without the secret."""
        return KeyPair(
            sk=None,  # type: ignore[arg-type]
            pk=self.pk,
            relin=self.relin,
            galois=self.galois,
            relin3=self.relin3,
        )
