"""Noise measurement and budget heuristics.

CKKS is approximate: "noise" shows up as the deviation between decrypted
and true values.  :func:`measure_error` quantifies it empirically (the
only ground truth for an approximate scheme), and
:func:`fresh_noise_bound` / :func:`noise_budget_bits` give the standard
back-of-envelope bounds used when choosing parameters (§V.B).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["measure_error", "fresh_noise_bound", "noise_budget_bits"]


def measure_error(decrypted: np.ndarray, expected: np.ndarray) -> dict[str, float]:
    """Empirical error statistics between decrypted and true slot values."""
    decrypted = np.real(np.asarray(decrypted))
    expected = np.asarray(expected, dtype=np.float64)
    if decrypted.shape != expected.shape:
        raise ValueError("shape mismatch")
    err = np.abs(decrypted - expected)
    denom = np.maximum(np.abs(expected), 1e-12)
    return {
        "max_abs": float(err.max()),
        "mean_abs": float(err.mean()),
        "max_rel": float((err / denom).max()),
        "bits_precision": float(-np.log2(max(err.max(), 1e-300))),
    }


def fresh_noise_bound(n: int, sigma: float = 3.2, hw: int = 64) -> float:
    """Canonical-embedding bound on fresh encryption noise.

    ``8 * sqrt(2) * sigma * N + 6 * sigma * sqrt(N) + 16 * sigma *
    sqrt(h * N)`` — the standard heuristic from the CKKS papers.
    """
    return 8 * math.sqrt(2) * sigma * n + 6 * sigma * math.sqrt(n) + 16 * sigma * math.sqrt(hw * n)


def noise_budget_bits(log_q: int, scale_bits: int, depth: int, margin_bits: int = 10) -> int:
    """Remaining headroom after *depth* rescales at scale Δ = 2^scale_bits.

    Each rescale consumes ~``scale_bits`` of modulus; the base prime
    (wider than Δ, e.g. 40 vs 26 bits in Table II) absorbs the output
    scale, so the requirement is ``log q > depth * scale_bits + margin``.
    Positive means the parameter set supports the circuit — the paper's
    §V.B accounting (conv depth 1, degree-d polynomial depth d in our
    power-basis evaluation).
    """
    return log_q - scale_bits * depth - margin_bits
