"""Residue Number System substrate (paper §II Fig. 2, §III Fig. 5).

* :mod:`repro.rns.base` — :class:`RnsBase`, a CRT basis of NTT-friendly
  primes with per-channel metadata (the "moduli chain" of §VI).
* :mod:`repro.rns.decompose` — decomposition/recomposition of integer
  *tensors* into residue channels, exactly the operation drawn in Fig. 2
  and applied to input images in the CNN-RNS architectures of Fig. 5.
* :mod:`repro.rns.arithmetic` — componentwise channel arithmetic on
  stacked residue tensors.
* :mod:`repro.rns.convert` — fast (approximate) base conversion and exact
  single-digit base extension used by RNS key switching.
"""

from repro.rns.base import RnsBase
from repro.rns.decompose import rns_decompose, rns_recompose, rns_recompose_signed
from repro.rns.arithmetic import channel_add, channel_mul, channel_neg, channel_scalar_mul
from repro.rns.convert import approx_base_convert, extend_digit

__all__ = [
    "RnsBase",
    "rns_decompose",
    "rns_recompose",
    "rns_recompose_signed",
    "channel_add",
    "channel_mul",
    "channel_neg",
    "channel_scalar_mul",
    "approx_base_convert",
    "extend_digit",
]
