"""Base conversion between RNS bases.

Two operations are provided:

* :func:`extend_digit` — **exact** extension of a single residue digit
  ``x_j = [x]_{q_j}`` to another modulus, using the centered lift.  This
  is what the RNS key-switching gadget needs (each digit is one channel).
* :func:`approx_base_convert` — the fast basis conversion of the full-RNS
  CKKS paper [9]: converts residues over base ``Q`` to residues over a
  different base ``P`` up to a small multiple of ``Q`` (the well-known
  ``v``-overflow), optionally corrected with a float estimate.
"""

from __future__ import annotations

import numpy as np

from repro.nt.modarith import mulmod
from repro.rns.base import RnsBase

__all__ = ["extend_digit", "approx_base_convert"]


def extend_digit(digit: np.ndarray, src_modulus: int, dst_moduli: list[int]) -> np.ndarray:
    """Exactly reduce the centered lift of one residue digit into new moduli.

    ``digit`` holds values in ``[0, src_modulus)``; the centered lift
    maps them to ``(-src/2, src/2]`` before reduction, which keeps key
    switching noise small.
    Returns an array of shape ``(len(dst_moduli), *digit.shape)``.
    """
    digit = np.asarray(digit, dtype=np.int64)
    half = src_modulus // 2
    centered = np.where(digit > half, digit - src_modulus, digit)
    out = []
    for m in dst_moduli:
        out.append(np.mod(centered, np.int64(m)))
    return np.stack(out)


def approx_base_convert(
    channels: np.ndarray,
    src: RnsBase,
    dst: RnsBase,
    *,
    correct_overflow: bool = True,
) -> np.ndarray:
    """Fast basis conversion ``Conv_{Q->P}(x)`` of [9], vectorised.

    Computes ``sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i) mod p_j`` for
    every destination modulus ``p_j``.  Without correction the result
    represents ``x + v*Q`` for ``0 <= v < k``; with ``correct_overflow``
    the overflow count ``v`` is estimated in float64 (exact for the
    parameter sizes used here) and subtracted.
    """
    channels = np.asarray(channels)
    if channels.shape[0] != src.k:
        raise ValueError(f"expected {src.k} source channels, got {channels.shape[0]}")
    # y_i = [x_i * hat_inv_i]_{q_i}
    ys = np.stack(
        [
            mulmod(channels[i], np.int64(src.hat_invs[i]), src.moduli[i])
            for i in range(src.k)
        ]
    )
    if correct_overflow:
        # v = round(sum_i y_i / q_i); exact while k * q_max fits float precision.
        fracs = ys.astype(np.float64) / np.array(src.moduli, dtype=np.float64).reshape(
            (src.k,) + (1,) * (ys.ndim - 1)
        )
        v = np.rint(fracs.sum(axis=0)).astype(np.int64)
    out = []
    for pj in dst.moduli:
        acc = np.zeros(channels.shape[1:], dtype=np.int64)
        for i in range(src.k):
            hat_mod = src.hats[i] % pj
            acc = (acc + mulmod(ys[i], np.int64(hat_mod), pj)) % pj
        if correct_overflow:
            q_mod = src.modulus % pj
            acc = np.mod(acc - v * q_mod, pj)
        out.append(acc)
    return np.stack(out)
