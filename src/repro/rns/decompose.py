"""Residue decomposition of integer tensors (paper Fig. 2 / Fig. 5).

The CNN-RNS architectures decompose the (scaled-integer) input image into
one residue tensor per modulus; convolution then acts on each channel
independently — they "can be processed independently in parallel" — and
the channels are recombined by CRT after the convolutional stage.

Functions here operate on whole NumPy tensors at once: the residue stack
has shape ``(k, *x.shape)`` and stays in ``int64`` whenever the moduli
allow it (they always do for the paper's <= 60-bit chains).

Recomposition delegates to :meth:`repro.nt.crt.CrtBasis.compose`, whose
Garner mixed-radix lift runs in O(k^2) word-sized vector operations
with at most a handful of big-int multiply-adds per element — the
derivation and the measured ~10x over the classical big-int CRT sum
are in ``docs/KERNELS.md``.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import traced
from repro.rns.base import RnsBase

__all__ = ["rns_decompose", "rns_recompose", "rns_recompose_signed"]


@traced("rns.decompose")
def rns_decompose(x: np.ndarray, base: RnsBase) -> np.ndarray:
    """Decompose an integer tensor into residue channels.

    Parameters
    ----------
    x:
        Integer tensor (any shape).  Signed values are allowed as long as
        ``|x| < Q/2``; they are stored as canonical residues and recovered
        by :func:`rns_recompose_signed`.
    base:
        The moduli chain.

    Returns
    -------
    ``int64`` array of shape ``(k, *x.shape)`` — channel *i* holds
    ``x mod q_i``.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.integer) and x.dtype != object:
        raise TypeError(f"rns_decompose needs an integer tensor, got dtype {x.dtype}")
    chans = []
    for m in base.moduli:
        if x.dtype == object:
            chans.append(np.mod(x, m).astype(np.int64))
        else:
            chans.append(np.mod(x.astype(np.int64, copy=False), np.int64(m)))
    return np.stack(chans, axis=0)


@traced("rns.recompose")
def rns_recompose(channels: np.ndarray, base: RnsBase) -> np.ndarray:
    """CRT recomposition to canonical representatives in ``[0, Q)``.

    Parameters
    ----------
    channels:
        ``(k, ...)`` residue stack, channel *i* holding values mod
        ``q_i`` (unreduced int64 inputs are accepted and reduced).
    base:
        The moduli chain the stack was decomposed against.

    Returns
    -------
    Array of ``x mod Q`` per element — ``int64`` when ``Q`` fits 62
    bits, else ``object`` (Python ints).

    Notes
    -----
    Vectorised Garner lift (``docs/KERNELS.md``): O(k^2) int64 vector
    ops for the mixed-radix digits plus one exact int64 Horner fold
    over the leading digits; no final ``mod Q``.  Property-tested
    against the big-int oracle in ``tests/nt/test_crt.py``.
    """
    _check(channels, base)
    out = base.compose([channels[i] for i in range(base.k)])
    if base.modulus.bit_length() <= 62:
        return out.astype(np.int64)
    return out


@traced("rns.recompose_signed")
def rns_recompose_signed(channels: np.ndarray, base: RnsBase) -> np.ndarray:
    """CRT recomposition to signed values in ``[-Q/2, Q/2)``.

    This is the variant the CNN-RNS pipeline uses after convolution,
    where outputs may be negative.

    Parameters
    ----------
    channels:
        ``(k, ...)`` residue stack, channel *i* holding values mod ``q_i``.
    base:
        The moduli chain the stack was decomposed against.

    Returns
    -------
    Array of centered representatives — ``int64`` when ``Q`` fits 62
    bits, else ``object``.

    Notes
    -----
    Same Garner lift as :func:`rns_recompose`; the sign decision
    (``x >= Q/2``) compares mixed-radix digit vectors against the
    precomputed digits of ``Q // 2``, so it never leaves int64 either
    (``docs/KERNELS.md``).
    """
    _check(channels, base)
    out = base.compose_centered([channels[i] for i in range(base.k)])
    if base.modulus.bit_length() <= 62:
        return out.astype(np.int64)
    return out


def _check(channels: np.ndarray, base: RnsBase) -> None:
    channels = np.asarray(channels)
    if channels.shape[0] != base.k:
        raise ValueError(
            f"residue stack has {channels.shape[0]} channels, base expects {base.k}"
        )
