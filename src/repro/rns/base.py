"""RNS bases: co-prime moduli chains with CRT precomputation.

A :class:`RnsBase` is what the paper calls a "moduli chain": *k* pairwise
co-prime (here: prime) moduli whose product ``Q`` is the dynamic range.
It extends :class:`repro.nt.crt.CrtBasis` with NTT-friendliness metadata
and SEAL-style construction from bit lengths.

The inherited CRT machinery is what makes the chain cheap to use:
decomposition is one ``mod`` per channel, channel arithmetic is
word-sized int64, and composition is the vectorised Garner lift
documented in ``docs/KERNELS.md`` (O(k^2) int64 vector ops per
element, big-int work only for digits past the 62-bit Horner prefix).
"""

from __future__ import annotations

import numpy as np

from repro.nt.crt import CrtBasis
from repro.nt.primes import gen_ntt_primes

__all__ = ["RnsBase"]


class RnsBase(CrtBasis):
    """A CRT basis whose moduli are NTT-friendly primes for degree *n*.

    Construct either from an explicit list of primes or, like the SEAL
    co-prime generation tool referenced in §VI.A, from a list of bit
    lengths via :meth:`from_bit_sizes`.

    Parameters
    ----------
    moduli:
        The chain's primes, pairwise co-prime.
    n:
        Ring degree the chain must support; when given, every modulus
        is checked for NTT-friendliness (``p ≡ 1 mod 2n``).  ``None``
        skips the check (pure-CRT uses, e.g. the Fig. 2 image path).
    """

    def __init__(self, moduli: list[int], n: int | None = None):
        super().__init__(moduli)
        self.n = n
        if n is not None:
            for m in self.moduli:
                if (m - 1) % (2 * n) != 0:
                    raise ValueError(
                        f"modulus {m} is not NTT-friendly for n={n} (p != 1 mod 2n)"
                    )

    @classmethod
    def from_bit_sizes(
        cls, bit_sizes: list[int], n: int, exclude: set[int] | None = None
    ) -> "RnsBase":
        """Build a base of distinct NTT primes with the given bit lengths.

        Parameters
        ----------
        bit_sizes:
            Desired bit length per modulus (Table II's "q" row).
        n:
            Ring degree; generated primes satisfy ``p ≡ 1 mod 2n``.
        exclude:
            Primes to skip (so disjoint bases — e.g. the special
            key-switching prime — never collide).

        Returns
        -------
        An :class:`RnsBase` over freshly generated distinct primes.
        """
        return cls(gen_ntt_primes(bit_sizes, n, exclude=exclude), n=n)

    @property
    def bit_sizes(self) -> list[int]:
        """Bit length of each modulus (the paper's Table II "q" row)."""
        return [m.bit_length() for m in self.moduli]

    @property
    def total_bits(self) -> int:
        """``log2 Q`` rounded up — the paper's Table II "log q" row."""
        return self.modulus.bit_length()

    def drop_last(self) -> "RnsBase":
        """Sub-base without the final modulus (one rescaling step down)."""
        if self.k == 1:
            raise ValueError("cannot drop the only modulus")
        return RnsBase(self.moduli[:-1], n=self.n)

    def prefix(self, k: int) -> "RnsBase":
        """Sub-base of the first *k* moduli."""
        if not 1 <= k <= self.k:
            raise ValueError(f"k must be in [1, {self.k}], got {k}")
        return RnsBase(self.moduli[:k], n=self.n)

    def max_representable(self) -> int:
        """Largest magnitude of signed values exactly representable: Q//2."""
        return self.modulus // 2

    def channel_dtype_ok(self) -> bool:
        """True when every channel fits the fast int64 vectorised path."""
        return all(m.bit_length() <= 62 for m in self.moduli)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RnsBase(k={self.k}, bits={self.bit_sizes}, n={self.n})"
