"""Componentwise arithmetic on stacked residue tensors.

All functions take a residue stack of shape ``(k, ...)`` (as produced by
:func:`repro.rns.decompose.rns_decompose`) and apply the ring operation
channel by channel.  Channels are independent — exactly the property the
paper exploits for parallelism — so each loop iteration below can also be
dispatched through :mod:`repro.parallel` executors.
"""

from __future__ import annotations

import numpy as np

from repro.nt.modarith import addmod, mulmod, negmod
from repro.rns.base import RnsBase

__all__ = ["channel_add", "channel_mul", "channel_neg", "channel_scalar_mul", "channel_matmul"]


def _check(a: np.ndarray, base: RnsBase) -> np.ndarray:
    a = np.asarray(a)
    if a.shape[0] != base.k:
        raise ValueError(f"expected {base.k} channels, got {a.shape[0]}")
    return a


def channel_add(a: np.ndarray, b: np.ndarray, base: RnsBase) -> np.ndarray:
    """``(a + b) mod q_i`` per channel."""
    a, b = _check(a, base), _check(b, base)
    return np.stack([addmod(a[i], b[i], m) for i, m in enumerate(base.moduli)])


def channel_mul(a: np.ndarray, b: np.ndarray, base: RnsBase) -> np.ndarray:
    """``(a * b) mod q_i`` per channel."""
    a, b = _check(a, base), _check(b, base)
    return np.stack([mulmod(a[i], b[i], m) for i, m in enumerate(base.moduli)])


def channel_neg(a: np.ndarray, base: RnsBase) -> np.ndarray:
    """``(-a) mod q_i`` per channel."""
    a = _check(a, base)
    return np.stack([negmod(a[i], m) for i, m in enumerate(base.moduli)])


def channel_scalar_mul(a: np.ndarray, c: int, base: RnsBase) -> np.ndarray:
    """Multiply every channel by the integer scalar *c* (reduced per modulus)."""
    a = _check(a, base)
    return np.stack(
        [mulmod(a[i], np.int64(int(c) % m), m) for i, m in enumerate(base.moduli)]
    )


def channel_matmul(a: np.ndarray, w: np.ndarray, base: RnsBase) -> np.ndarray:
    """Residue matrix product: per channel ``a[i] @ (w mod q_i) mod q_i``.

    *w* is a plain signed-integer matrix (e.g. quantised convolution
    weights); it is reduced into each channel's modulus on the fly.
    ``a[i]`` has shape ``(..., d)`` and *w* ``(d, e)``.

    The accumulation is performed in ``object`` precision when the
    channel modulus is too wide for exact int64 dot products; for narrow
    (< 2**26) moduli it uses the fast int64 path with periodic reduction.
    """
    a = _check(a, base)
    w = np.asarray(w)
    out = []
    for i, m in enumerate(base.moduli):
        wm = np.mod(w.astype(object), m).astype(np.int64)
        if 2 * m.bit_length() + int(np.log2(max(w.shape[0], 1)) + 1) <= 62:
            out.append((a[i].astype(np.int64) @ wm) % m)
        else:
            acc = a[i].astype(object) @ wm.astype(object)
            out.append(np.mod(acc, m).astype(np.int64))
    return np.stack(out)
