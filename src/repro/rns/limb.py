"""Vectorised multi-limb (multiprecision) modular arithmetic.

This is the cost model of the "multi-precision library" the paper's
non-RNS baseline pays for (§II): integers wider than a machine word are
held as little-endian limbs of ``LIMB_BITS`` bits in int64 NumPy
arrays; multiplication is schoolbook over limb pairs, so the work grows
**quadratically** with the operand width.  An RNS decomposition into
``k`` channels of ``B/k`` bits therefore costs ``k * (B/(k*LIMB)) ** 2
∝ B^2 / k`` limb products — monotonically *decreasing* in ``k`` until
each channel fits a single limb, after which per-channel overhead makes
cost grow again.  That crossover is the minimum the paper observes at
nine moduli (Tables IV/VI).

All kernels are elementwise over arbitrary leading axes; the limb axis
is axis 0.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LIMB_BITS", "LIMB_MASK", "n_limbs", "split_limbs", "carry_normalize", "fold_mod", "limbs_to_int"]

#: Limb width: 28 bits keeps tap-sum products of limb pairs inside int64.
LIMB_BITS = 28
LIMB_MASK = (1 << LIMB_BITS) - 1


def n_limbs(modulus: int) -> int:
    """Limbs needed for canonical residues of *modulus*."""
    return max(1, -(-modulus.bit_length() // LIMB_BITS))


def split_limbs(values: np.ndarray, d: int) -> np.ndarray:
    """Non-negative integers (object or int64) -> ``(d, *shape)`` int64 limbs."""
    values = np.asarray(values)
    out = np.empty((d,) + values.shape, dtype=np.int64)
    if values.dtype == object:
        v = values.copy()
        for k in range(d):
            out[k] = np.bitwise_and(v, LIMB_MASK).astype(np.int64)
            v = np.right_shift(v, LIMB_BITS)
        if np.any(v != 0):
            raise ValueError(
                "value does not fit the requested limb count (or is negative)"
            )
    else:
        v = values.astype(np.int64, copy=True)
        if np.any(v < 0):
            raise ValueError("split_limbs needs canonical (non-negative) values")
        for k in range(d):
            out[k] = v & LIMB_MASK
            v >>= LIMB_BITS
        if np.any(v):
            raise ValueError("value does not fit the requested limb count")
    return out


def carry_normalize(acc: np.ndarray) -> np.ndarray:
    """Propagate carries so every limb is in ``[0, 2^LIMB_BITS)``.

    Input limbs may hold partial sums up to ~2^62; one extra limb is
    appended to absorb the final carry.
    """
    acc = np.asarray(acc, dtype=np.int64)
    d = acc.shape[0]
    out = np.zeros((d + 2,) + acc.shape[1:], dtype=np.int64)
    carry = np.zeros(acc.shape[1:], dtype=np.int64)
    for k in range(d):
        total = acc[k] + carry
        out[k] = total & LIMB_MASK
        carry = total >> LIMB_BITS
    out[d] = carry & LIMB_MASK
    out[d + 1] = carry >> LIMB_BITS
    return out


def fold_mod(limbs: np.ndarray, modulus: int) -> np.ndarray:
    """Reduce normalised limbs modulo *m*: ``sum_k limb_k * (2^(28k) mod m)``.

    Fast int64 path when the partial sums fit (m below ~2^31 after the
    per-term reduction); otherwise an exact object-precision fold.
    Returns canonical residues (int64 if m fits, else object).
    """
    limbs = np.asarray(limbs, dtype=np.int64)
    d = limbs.shape[0]
    pows = [pow(1 << (LIMB_BITS * k), 1, modulus) for k in range(d)]
    mbits = modulus.bit_length()
    if mbits + LIMB_BITS + int(np.ceil(np.log2(d))) <= 62:
        acc = np.zeros(limbs.shape[1:], dtype=np.int64)
        for k in range(d):
            acc += limbs[k] * np.int64(pows[k])  # limb < 2^28, pow < m
        return acc % modulus
    if mbits <= 50:
        # Two-stage int64 fold: split each pow into 25-bit halves so all
        # partial sums stay below 2^62, then merge with one wide mulmod.
        from repro.nt.modarith import mulmod  # local import avoids a cycle

        half_bits = 25
        mask = (1 << half_bits) - 1
        lo_acc = np.zeros(limbs.shape[1:], dtype=np.int64)
        hi_acc = np.zeros(limbs.shape[1:], dtype=np.int64)
        for k in range(d):
            lo_acc += limbs[k] * np.int64(pows[k] & mask)  # < d * 2^53
            hi_acc += limbs[k] * np.int64(pows[k] >> half_bits)
        merged = mulmod(hi_acc % modulus, np.int64((1 << half_bits) % modulus), modulus)
        return (lo_acc % modulus + merged) % modulus
    # Wide modulus: contract to ~n_limbs(m) limbs with int64 arithmetic
    # first, then finish with a short exact object fold.
    short = partial_residue_limbs(limbs, modulus)
    acc_obj = np.zeros(short.shape[1:], dtype=object)
    for k in range(short.shape[0]):
        chunk = short[k]
        if not chunk.any():
            continue
        acc_obj = acc_obj + (chunk.astype(object) << (LIMB_BITS * k))
    res = np.mod(acc_obj, modulus)
    if mbits <= 62:
        return res.astype(np.int64)
    return res


def partial_residue_limbs(limbs: np.ndarray, modulus: int) -> np.ndarray:
    """Partially reduce full-width limb vectors modulo *m*, staying in limbs.

    Computes ``r = sum_j limb_j * (2^(28 j) mod m)`` with pure int64
    limb arithmetic.  The result is **not** canonical — it is bounded by
    ``D * 2^28 * m`` (a couple of extra limbs) — but is congruent to the
    input mod *m*, which is all the downstream convolution needs (its
    output is folded mod *m* anyway).  This keeps the per-channel
    residue derivation free of big-int operations.
    """
    limbs = np.asarray(limbs, dtype=np.int64)
    big_d = limbs.shape[0]
    dw = n_limbs(modulus)
    # pow_j = 2^(28 j) mod m, split into dw limbs each.
    pows = np.empty((big_d, dw), dtype=np.int64)
    for j in range(big_d):
        p = pow(1 << (LIMB_BITS * j), 1, modulus)
        for t in range(dw):
            pows[j, t] = p & LIMB_MASK
            p >>= LIMB_BITS
    acc = np.zeros((dw + 2,) + limbs.shape[1:], dtype=np.int64)
    for j in range(big_d):
        lj = limbs[j]
        for t in range(dw):
            if pows[j, t] == 0:
                continue
            prod = lj * pows[j, t]  # < 2^56
            acc[t] += prod & LIMB_MASK
            acc[t + 1] += prod >> LIMB_BITS
    return carry_normalize(acc)


def limbs_to_int(limbs: np.ndarray) -> np.ndarray:
    """Exact object-integer reconstruction (testing/reference)."""
    limbs = np.asarray(limbs, dtype=np.int64)
    acc = np.zeros(limbs.shape[1:], dtype=object)
    for k in range(limbs.shape[0]):
        acc = acc + (limbs[k].astype(object) << (LIMB_BITS * k))
    return acc
