"""Executors for dispatching independent RNS residue channels.

The paper's speed-up source ("RNS representation enables parallel
processing") is channel independence.  Three interchangeable executors
realise it:

* :class:`SerialExecutor` — baseline, runs channels in order.
* :class:`ThreadExecutor` — ``concurrent.futures`` threads; NumPy
  elementwise kernels release the GIL, so residue NTTs overlap.
* :class:`ProcessExecutor` — process pool for fully GIL-free dispatch.

All share one API: :meth:`~Executor.map` over a list of per-channel work
items.
"""

from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.parallel.sharding import shard_indices, interleave
from repro.parallel.shm import (
    ShmArena,
    ShmArrayRef,
    dispatch_channels,
    shm_available,
    uses_processes,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "shard_indices",
    "interleave",
    "ShmArena",
    "ShmArrayRef",
    "dispatch_channels",
    "shm_available",
    "uses_processes",
]
