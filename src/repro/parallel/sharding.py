"""Work-partitioning helpers for channel dispatch."""

from __future__ import annotations

__all__ = ["shard_indices", "interleave"]


def shard_indices(n_items: int, n_shards: int) -> list[list[int]]:
    """Split ``range(n_items)`` into at most *n_shards* contiguous balanced shards.

    Earlier shards receive the remainder items so sizes differ by at most 1.
    """
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n_shards = min(n_shards, max(n_items, 1))
    base, extra = divmod(n_items, n_shards)
    out: list[list[int]] = []
    start = 0
    for s in range(n_shards):
        size = base + (1 if s < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return [s for s in out if s] or [[]]


def interleave(shard_results: list[list], shards: list[list[int]], n_items: int) -> list:
    """Inverse of sharding: scatter per-shard results back to item order."""
    flat: list = [None] * n_items
    for shard, results in zip(shards, shard_results):
        if len(shard) != len(results):
            raise ValueError("shard/result length mismatch")
        for idx, res in zip(shard, results):
            flat[idx] = res
    return flat
