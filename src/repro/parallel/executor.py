"""Executor abstraction: one ``map`` API, three concurrency backends."""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor", "make_executor"]


class Executor(ABC):
    """Maps a function over independent work items, preserving order."""

    name: str = "abstract"

    @abstractmethod
    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each item; results are returned in input order."""

    def starmap(self, fn: Callable[..., Any], items: Iterable[tuple]) -> list[Any]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: fn(*args), list(items))

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run channels one after another — the non-parallel reference point."""

    name = "serial"

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        return [fn(it) for it in items]


class ThreadExecutor(Executor):
    """Thread-pool dispatch; effective because NumPy kernels drop the GIL."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        self.workers = workers or min(32, os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        if len(items) <= 1:
            return [fn(it) for it in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Process-pool dispatch (fork-based); items and results are pickled."""

    name = "process"

    def __init__(self, workers: int | None = None):
        self.workers = workers or (os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        if len(items) <= 1:
            return [fn(it) for it in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str, workers: int | None = None) -> Executor:
    """Factory keyed by name: ``"serial" | "thread" | "process"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r} (serial|thread|process)")
