"""Executor abstraction: one ``map`` API, three concurrency backends.

Dispatch is observable: when :mod:`repro.obs` tracing is enabled, every
``map`` call records a ``parallel.map`` span tagged with the executor
kind and item count, and bumps the ``parallel.<kind>.map.calls`` /
``parallel.<kind>.map.items`` counters — the per-channel dispatch and
recombination overhead behind the Table IV/VI moduli sweeps is the gap
between that span and the per-channel work inside it.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.obs import tracer as _obs

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor", "make_executor"]


class _StarCall:
    """Picklable ``fn(*args)`` adapter used by :meth:`Executor.starmap`.

    A ``lambda args: fn(*args)`` cannot cross a process boundary; this
    module-level class can, whenever ``fn`` itself is picklable.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)


class Executor(ABC):
    """Maps a function over independent work items, preserving order."""

    name: str = "abstract"

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each item; results are returned in input order.

        Parameters
        ----------
        fn:
            Per-item callable (must be picklable for process dispatch).
        items:
            Work items; one ``fn(item)`` call each.

        Returns
        -------
        ``[fn(items[0]), fn(items[1]), ...]`` — always in input order,
        regardless of completion order.
        """
        tracer = _obs.get_tracer()
        if not tracer.enabled:
            return self._map(fn, items)
        if tracer.metrics is not None:
            tracer.metrics.counter(f"parallel.{self.name}.map.calls").inc()
            tracer.metrics.counter(f"parallel.{self.name}.map.items").inc(len(items))
        with tracer.span("parallel.map", executor=self.name, items=len(items)):
            return self._map(fn, items)

    @abstractmethod
    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Backend-specific dispatch (see :meth:`map` for the contract)."""

    def starmap(self, fn: Callable[..., Any], items: Iterable[tuple]) -> list[Any]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(_StarCall(fn), list(items))

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run channels one after another — the non-parallel reference point."""

    name = "serial"

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        return [fn(it) for it in items]


class ThreadExecutor(Executor):
    """Thread-pool dispatch; effective because NumPy kernels drop the GIL."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        self.workers = workers or min(32, os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        if len(items) <= 1:
            return [fn(it) for it in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Process-pool dispatch (fork-based); items and results are pickled."""

    name = "process"

    def __init__(self, workers: int | None = None):
        self.workers = workers or (os.cpu_count() or 1)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        if len(items) <= 1:
            return [fn(it) for it in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str, workers: int | None = None) -> Executor:
    """Factory keyed by name: ``"serial" | "thread" | "process"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r} (serial|thread|process)")
