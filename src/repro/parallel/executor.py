"""Executor abstraction: one ``map`` API, three concurrency backends.

Dispatch is observable: when :mod:`repro.obs` tracing is enabled, every
``map`` call records a ``parallel.map`` span tagged with the executor
kind and item count, and bumps the ``parallel.<kind>.map.calls`` /
``parallel.<kind>.map.items`` counters — the per-channel dispatch and
recombination overhead behind the Table IV/VI moduli sweeps is the gap
between that span and the per-channel work inside it.

Pool lifecycle (the robustness contract):

* A pool that breaks mid-``map`` (a killed process worker, a failed
  thread initializer) is **discarded immediately**; the next ``map``
  lazily creates a fresh pool instead of re-raising the stale
  ``BrokenExecutor`` forever.
* :meth:`Executor.close` is idempotent, and every pool-backed executor
  is registered with an ``atexit`` closer, so executors created deep
  inside an engine or context cannot leak worker threads/processes past
  interpreter shutdown.
* :meth:`~_PoolExecutor.reset` force-discards the pool without waiting
  for in-flight work — the recovery primitive
  :class:`repro.resilience.ResilientExecutor` uses after timeouts.
"""

from __future__ import annotations

import atexit
import os
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.obs import tracer as _obs

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor", "make_executor"]


class _MeteredResult:
    """Envelope a metered pool worker returns: result + telemetry delta."""

    __slots__ = ("result", "delta", "spans", "pid")

    def __init__(self, result: Any, delta: dict, spans: list[dict], pid: int):
        self.result = result
        self.delta = delta
        self.spans = spans
        self.pid = pid


class _MeteredTask:
    """Picklable wrapper that captures a worker item's metrics and spans.

    Inside the worker it installs a fresh process-global registry and a
    fresh collecting tracer for the duration of one item, so everything
    the item records — ``span.*`` counters, NTT call counts,
    ``parallel.shm.*`` bumps, health gauges — lands in an isolated
    delta that travels back through the normal result pickle.  The
    previous registry/tracer are restored afterwards, so un-metered
    items in the same long-lived worker are unaffected.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, item: Any) -> "_MeteredResult":
        from repro.obs import metrics as _metrics
        from repro.obs import tracer as _tracer

        registry = _metrics.MetricsRegistry()
        prev_registry = _metrics.get_registry()
        _metrics.set_registry(registry)
        tracer = _tracer.Tracer(metrics=registry)
        prev_tracer = _tracer.get_tracer()
        _tracer.set_tracer(tracer)
        try:
            result = self.fn(item)
        finally:
            _tracer.set_tracer(prev_tracer)
            _metrics.set_registry(prev_registry)
        return _MeteredResult(
            result,
            registry.to_delta(),
            [s.to_dict() for s in tracer.finished()],
            os.getpid(),
        )


def _merge_metered(envelopes: Sequence[Any], tracer: Any) -> list[Any]:
    """Unwrap metered results, folding worker telemetry into the parent.

    Metric deltas merge into the tracer's registry (or the global one)
    twice over: into the plain metrics for the merged view, and into the
    per-worker ledger keyed ``worker-<pid>``.  Worker spans are re-ided
    from the parent's counter (fork copies the id counter, so worker ids
    can collide with parent ids), tagged with their worker, and absorbed
    into the parent tracer.
    """
    from repro.obs.metrics import get_registry
    from repro.obs.tracer import _IDS, Span

    registry = getattr(tracer, "metrics", None) or get_registry()
    results: list[Any] = []
    for env in envelopes:
        if not isinstance(env, _MeteredResult):  # worker predates metering
            results.append(env)
            continue
        results.append(env.result)
        worker = f"worker-{env.pid}"
        if env.delta:
            registry.merge_delta(env.delta, worker=worker)
        if env.spans and tracer.enabled:
            spans = [Span.from_dict(d) for d in env.spans]
            # Two passes: children complete before their parents, so all
            # new ids must exist before parent links are rewritten.
            remap = {sp.span_id: next(_IDS) for sp in spans}
            for sp in spans:
                sp.span_id = remap[sp.span_id]
                if sp.parent_id is not None:
                    sp.parent_id = remap.get(sp.parent_id)
                sp.tags.setdefault("worker", worker)
            tracer.absorb(spans)
    return results


class _StarCall:
    """Picklable ``fn(*args)`` adapter used by :meth:`Executor.starmap`.

    A ``lambda args: fn(*args)`` cannot cross a process boundary; this
    module-level class can, whenever ``fn`` itself is picklable.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)


class Executor(ABC):
    """Maps a function over independent work items, preserving order."""

    name: str = "abstract"

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each item; results are returned in input order.

        Parameters
        ----------
        fn:
            Per-item callable (must be picklable for process dispatch).
        items:
            Work items; one ``fn(item)`` call each.

        Returns
        -------
        ``[fn(items[0]), fn(items[1]), ...]`` — always in input order,
        regardless of completion order.
        """
        tracer = _obs.get_tracer()
        if not tracer.enabled:
            return self._map(fn, items)
        if tracer.metrics is not None:
            tracer.metrics.counter(f"parallel.{self.name}.map.calls").inc()
            tracer.metrics.counter(f"parallel.{self.name}.map.items").inc(len(items))
        with tracer.span("parallel.map", executor=self.name, items=len(items)):
            return self._map(fn, items)

    @abstractmethod
    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Backend-specific dispatch (see :meth:`map` for the contract)."""

    def starmap(self, fn: Callable[..., Any], items: Iterable[tuple]) -> list[Any]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(_StarCall(fn), list(items))

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run channels one after another — the non-parallel reference point."""

    name = "serial"

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        return [fn(it) for it in items]


#: Every live pool-backed executor; drained by the ``atexit`` hook so
#: internally-created executors (engines, contexts, factories) cannot
#: leak worker threads/processes past interpreter shutdown.
_LIVE_POOLS: "weakref.WeakSet[_PoolExecutor]" = weakref.WeakSet()


def _close_live_pools() -> None:  # pragma: no cover - interpreter shutdown
    for ex in list(_LIVE_POOLS):
        try:
            ex.close()
        except Exception:
            pass


atexit.register(_close_live_pools)


class _PoolExecutor(Executor):
    """Shared lifecycle for the thread- and process-pool executors.

    The pool is created lazily by :meth:`_ensure` and **discarded on
    breakage**: if a ``map`` fails and the underlying
    ``concurrent.futures`` pool reports itself broken, the dead pool is
    dropped so the next call starts from a healthy one (the exception
    still propagates — recovery policy lives in
    :class:`repro.resilience.ResilientExecutor`).
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers or self._default_workers()
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        _LIVE_POOLS.add(self)

    def _default_workers(self) -> int:
        return os.cpu_count() or 1

    @abstractmethod
    def _make_pool(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        """Construct a fresh underlying pool."""

    def _ensure(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def submit(self, fn: Callable[..., Any], item: Any) -> Future:
        """Submit one ``fn(item)`` call, returning its future.

        Future-based dispatch is what per-item timeout/retry policies
        build on; plain :meth:`map` remains the all-or-nothing fast path.
        """
        return self._ensure().submit(fn, item)

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        if len(items) <= 1:
            return [fn(it) for it in items]
        pool = self._ensure()
        try:
            return list(pool.map(fn, items))
        except BaseException:
            # A broken pool would poison every later map with the same
            # stale error; discard it so the next call gets a fresh one.
            if getattr(pool, "_broken", False):
                self.reset()
            raise

    def reset(self) -> None:
        """Discard the pool without waiting for in-flight work (idempotent).

        Unlike :meth:`close` this never blocks on stuck workers — it is
        the right call after a timeout or pool breakage.  The next
        :meth:`map`/:meth:`submit` lazily creates a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ThreadExecutor(_PoolExecutor):
    """Thread-pool dispatch; effective because NumPy kernels drop the GIL."""

    name = "thread"

    def _default_workers(self) -> int:
        return min(32, os.cpu_count() or 1)

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool dispatch (fork-based); items and results are pickled.

    When :mod:`repro.obs` tracing is enabled, ``map`` items are metered:
    each worker captures the metrics and spans its item produced and
    ships them back inside the result envelope, which the parent merges
    into the active registry/tracer (per-worker ledgers included).
    Worker telemetry therefore stops vanishing at the process boundary
    — at the cost of one registry/tracer swap per item, which is why
    metering stays off for untraced maps.  ``submit`` (the
    resilience-executor path) is not metered; spans recorded there are
    counted by ``obs.spans.dropped``.
    """

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        tracer = _obs.get_tracer()
        if len(items) <= 1 or not tracer.enabled:
            return super()._map(fn, items)
        return _merge_metered(super()._map(_MeteredTask(fn), items), tracer)


def make_executor(kind: str, workers: int | None = None) -> Executor:
    """Factory keyed by name: ``"serial" | "thread" | "process"``.

    Pool-backed executors returned here (and constructed directly) are
    tracked in a weak set and closed by an ``atexit`` hook, so callers
    that cannot easily reach ``close()`` — contexts or engines that
    build an executor from a kind string — do not leak workers.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r} (serial|thread|process)")
