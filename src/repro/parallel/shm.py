"""Zero-copy residue dispatch over ``multiprocessing.shared_memory``.

Process executors pickle every argument.  For residue-channel fan-out
the arguments are the big ones — ``(taps, k, n)`` ciphertext stacks or
``(d, N, C, H, W)`` limb tensors — while the per-channel work items are
an index and a few constants.  This module ships the arrays once:

* :class:`ShmArena` packs a dict of arrays into **one** shared-memory
  segment and hands out :class:`ShmArrayRef` descriptors — ``(name,
  shape, dtype, offset)`` tuples a worker turns back into NumPy views
  without copying.
* :func:`dispatch_channels` is the drop-in map: with a process-capable
  executor (and working POSIX shared memory) workers receive
  descriptors; any other executor — or any failure to create the
  segment — falls back transparently to the closure/pickle path the
  thread/serial degradation chain has always used.

Workers attach lazily and cache the mapping per process (one attach per
worker per arena, not per item); attachments are unregistered from the
``resource_tracker`` so fork-children do not double-unlink the parent's
segment.  The parent unlinks the segment after the map returns —
including after any in-map retries a
:class:`~repro.resilience.ResilientExecutor` performs, so a worker
killed mid-flight simply re-resolves the same refs on the retry stage.

Counters (always on, one bump per map): ``parallel.shm.dispatches``,
``parallel.shm.items``, ``parallel.shm.bytes`` and
``parallel.shm.fallbacks``.
"""

from __future__ import annotations

import secrets
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.obs.metrics import get_registry
from repro.parallel.executor import Executor, ProcessExecutor

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "ShmArrayRef",
    "ShmArena",
    "dispatch_channels",
    "shm_available",
    "uses_processes",
]

#: Byte alignment of packed arrays inside a segment (cache-line friendly).
_ALIGN = 64


@dataclass(frozen=True)
class ShmArrayRef:
    """Picklable descriptor of one array inside a shared segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


def _count(event: str, n: int = 1) -> None:
    get_registry().counter(f"parallel.shm.{event}").inc(n)


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed once, cached)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=64)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


def uses_processes(executor: Executor | None) -> bool:
    """True when *executor* may dispatch across a process boundary.

    Recognises :class:`~repro.parallel.ProcessExecutor` directly and any
    wrapper exposing a ``chain`` of stage kinds (the resilience
    executor), whose degradation path may start at a process pool.
    """
    if isinstance(executor, ProcessExecutor):
        return True
    return "process" in tuple(getattr(executor, "chain", ()))


class ShmArena:
    """A dict of NumPy arrays packed into one shared-memory segment.

    Construction copies each array into the segment once; ``refs`` maps
    the original keys to :class:`ShmArrayRef` descriptors.  The arena
    must outlive every dispatch that references it; call :meth:`close`
    (parent side: ``unlink=True``) when the map has returned.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        if shared_memory is None:  # pragma: no cover - platform guard
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        layout: list[tuple[str, np.ndarray, int]] = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            if arr.dtype == object:
                raise TypeError(f"array {key!r} has object dtype; cannot be shared")
            offset = -(-offset // _ALIGN) * _ALIGN
            layout.append((key, arr, offset))
            offset += arr.nbytes
        name = f"repro_{secrets.token_hex(8)}"
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1), name=name)
        self.name = self._shm.name
        self.refs: dict[str, ShmArrayRef] = {}
        for key, arr, off in layout:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=off)
            dst[...] = arr
            self.refs[key] = ShmArrayRef(self.name, tuple(arr.shape), arr.dtype.str, off)
        self.nbytes = offset

    def close(self, unlink: bool = True) -> None:
        """Release the mapping and (by default) remove the segment."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live views keep it mapped
            pass
        if unlink:
            # Fork-children share the parent's resource tracker, and
            # _attach's deliberate unregister (lifecycle is parent-owned)
            # drains this segment's registration from it; re-register so
            # the unregister inside unlink() balances instead of making
            # the tracker process print a KeyError at exit.
            if resource_tracker is not None:
                try:  # pragma: no cover - tracker is an implementation detail
                    resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
                except Exception:
                    pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Worker-side attach cache: segment name -> SharedMemory (bounded LRU).
_ATTACHED: "OrderedDict[str, Any]" = OrderedDict()
_ATTACH_CACHE = 8


def _attach(name: str):
    shm = _ATTACHED.get(name)
    if shm is not None:
        _ATTACHED.move_to_end(name)
        return shm
    shm = shared_memory.SharedMemory(name=name)
    # Attaching registers with the resource tracker, which would try to
    # unlink the parent's segment again when this worker exits; the
    # parent owns the lifecycle, so unregister the attachment.
    try:  # pragma: no cover - tracker is an implementation detail
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
    _ATTACHED[name] = shm
    while len(_ATTACHED) > _ATTACH_CACHE:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except BufferError:  # pragma: no cover - a view still references it
            pass
    return shm


def resolve(ref: ShmArrayRef) -> np.ndarray:
    """Materialise a descriptor as a zero-copy NumPy view of the segment."""
    shm = _attach(ref.name)
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset)


def _detached(result: Any, views: dict[str, np.ndarray]) -> Any:
    """Copy any result that aliases the shared segment (rare but unsafe)."""
    if isinstance(result, np.ndarray):
        if any(np.shares_memory(result, v) for v in views.values()):
            return np.array(result)
        return result
    if isinstance(result, tuple):
        return tuple(_detached(r, views) for r in result)
    if isinstance(result, list):
        return [_detached(r, views) for r in result]
    return result


class _ShmTask:
    """Picklable per-item call: resolve refs, run the worker, detach."""

    __slots__ = ("fn", "refs")

    def __init__(self, fn: Callable[[Mapping[str, np.ndarray], Any], Any], refs: dict[str, ShmArrayRef]):
        self.fn = fn
        self.refs = refs

    def __call__(self, item: Any) -> Any:
        views = {key: resolve(ref) for key, ref in self.refs.items()}
        return _detached(self.fn(views, item), views)


class _InlineTask:
    """The pickle-free fallback: call the worker on the live arrays."""

    __slots__ = ("fn", "arrays")

    def __init__(self, fn: Callable[[Mapping[str, np.ndarray], Any], Any], arrays: Mapping[str, np.ndarray]):
        self.fn = fn
        self.arrays = arrays

    def __call__(self, item: Any) -> Any:
        return self.fn(self.arrays, item)


def dispatch_channels(
    executor: Executor,
    worker: Callable[[Mapping[str, np.ndarray], Any], Any],
    arrays: Mapping[str, np.ndarray],
    items: Sequence[Any],
) -> list[Any]:
    """Map ``worker(arrays, item)`` over *items*, sharing *arrays* zero-copy.

    Parameters
    ----------
    executor:
        Any :class:`~repro.parallel.Executor`.  Process-capable
        executors receive :class:`ShmArrayRef` descriptors; thread and
        serial executors call the worker on the arrays directly.
    worker:
        Picklable callable ``worker(arrays_dict, item)``; for process
        dispatch it must be a module-level function or class instance.
    arrays:
        Named work arrays (int64/float stacks; object dtype refuses).
    items:
        Per-channel work items (typically channel indices + constants).
    """
    if uses_processes(executor) and shm_available() and len(items) > 1:
        try:
            arena = ShmArena(arrays)
        except Exception:
            _count("fallbacks")
            return executor.map(_InlineTask(worker, arrays), items)
        _count("dispatches")
        _count("items", len(items))
        _count("bytes", arena.nbytes)
        try:
            return executor.map(_ShmTask(worker, arena.refs), items)
        finally:
            arena.close(unlink=True)
    return executor.map(_InlineTask(worker, arrays), items)
