"""Serialise traces: plain JSON (round-trippable) and Chrome trace events.

Two formats, two audiences:

* :func:`trace_to_json` / :func:`load_json` — lossless span + metrics
  dump for artifacts and offline analysis (this is what the benchmark
  harness writes next to each table).
* :func:`to_chrome_trace` — the Chrome/Perfetto ``traceEvents`` format;
  load the file at ``chrome://tracing`` or https://ui.perfetto.dev to
  see the encrypted-inference flame graph, one track per thread.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "TraceDump",
    "to_chrome_trace",
    "trace_to_json",
    "dump_json",
    "load_json",
    "dump_chrome_trace",
]

#: Format marker written into every JSON dump.
FORMAT = "repro.obs/1"


@dataclass
class TraceDump:
    """Deserialised trace artifact: spans plus a metrics snapshot."""

    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)


def _spans_of(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.finished()
    return list(source)


def to_chrome_trace(source: Tracer | Iterable[Span]) -> dict[str, Any]:
    """Spans as a Chrome ``traceEvents`` document (complete 'X' events).

    Thread ids are compressed to small consecutive integers so the
    viewer's track names stay readable; timestamps are microseconds
    relative to the earliest span.  A span carrying a ``pid`` tag (the
    cross-process request traces of :mod:`repro.obs.rtrace`) lands in
    that process's track group, so a merged gateway+worker trace renders
    one lane per process; untagged spans keep pid 0.
    """
    spans = _spans_of(source)
    t0 = min((s.start for s in spans), default=0.0)
    tids: dict[int, int] = {}
    events = []
    for s in spans:
        tid = tids.setdefault(s.thread_id, len(tids))
        args: dict[str, Any] = {k: _jsonable(v) for k, v in s.tags.items()}
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        try:
            pid = int(s.tags.get("pid", 0))
        except (TypeError, ValueError):
            pid = 0
        events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": (s.start - t0) * 1e6,
                "dur": s.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(v: Any) -> Any:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def trace_to_json(
    source: Tracer | Iterable[Span], metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Lossless JSON document: ``{"format", "spans", "metrics"}``."""
    spans = _spans_of(source)
    return {
        "format": FORMAT,
        "spans": [s.to_dict() for s in spans],
        "metrics": metrics.snapshot() if metrics is not None else {},
    }


def dump_json(
    path: str | Path,
    source: Tracer | Iterable[Span],
    metrics: MetricsRegistry | None = None,
) -> Path:
    """Write :func:`trace_to_json` to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_json(source, metrics), indent=1))
    return path


def load_json(path: str | Path) -> TraceDump:
    """Inverse of :func:`dump_json`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != FORMAT:
        raise ValueError(f"not a repro.obs trace dump: {path}")
    return TraceDump(
        spans=[Span.from_dict(d) for d in doc["spans"]],
        metrics=doc.get("metrics", {}),
    )


def dump_chrome_trace(path: str | Path, source: Tracer | Iterable[Span]) -> Path:
    """Write :func:`to_chrome_trace` to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(source)))
    return path
