"""Ciphertext-health telemetry: the quantities that silently kill CKKS.

Latency spans say where time went; this module watches the quantities
that destroy *correctness* without raising: the plaintext scale drifting
off Δ, the modulus-chain level budget running out, and the noise margin
(headroom between the live modulus and the scale) shrinking toward
zero.  :func:`observe_layer` samples them from the ciphertexts crossing
every :mod:`repro.henn` layer boundary into labelled gauges
(``henn.ct.*``, tagged by layer, index and backend), and
:func:`precision_probe` measures the only ground truth an approximate
scheme has — ``max |decrypt(ct) − reference|`` — on the decrypt side.

Sampling is gated on :func:`repro.obs.enabled`, so the steady-state
engine keeps its zero-overhead default; a traced classification gets a
per-layer health timeline for free.  The noise estimate is deliberately
cheap (no decryption, no canonical-embedding norm): ``noise_margin_bits
= log2(q_level) − log2(scale)`` is the headroom the §V.B parameter
accounting budgets against, and it hits zero exactly when decryption
starts returning garbage.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

import numpy as np

from repro.obs import tracer as _tracer
from repro.obs.metrics import get_registry

__all__ = [
    "ciphertext_health",
    "observe_layer",
    "precision_probe",
    "health_enabled",
]


def health_enabled() -> bool:
    """Whether layer-boundary health sampling is active (tracing on)."""
    return _tracer.get_tracer().enabled


def _modulus_bits(backend: Any, level: int) -> float:
    """``log2`` of the ciphertext modulus active at *level*.

    Exact for both real schemes (RNS prime-chain prefix, multiprecision
    ``q_level``); the mock backend has no modulus, so each remaining
    level is modelled as one Δ-sized rescale prime — the same fiction
    its ``rescale`` implements.
    """
    ctx = getattr(backend, "ctx", None)
    moduli = getattr(ctx, "moduli", None) if ctx is not None else None
    if moduli:
        if getattr(backend, "name", "") == "ckks-rns":
            return float(sum(int(m).bit_length() for m in moduli[: level + 1]))
        return float(int(moduli[min(level, len(moduli) - 1)]).bit_length())
    scale = float(getattr(backend, "scale", 2.0))
    return float(math.log2(scale) * (level + 1))


def _top_level(backend: Any) -> int | None:
    """Length of the backend's level budget, where discoverable."""
    ctx = getattr(backend, "ctx", None)
    if ctx is not None:
        top = getattr(ctx, "top_level", None)
        if top is not None:
            return int(top)
        params = getattr(ctx, "params", None)
        levels = getattr(params, "levels", None) if params is not None else None
        if levels is not None:
            return int(levels)
    levels = getattr(backend, "levels", None)
    return int(levels) if levels is not None else None


def ciphertext_health(backend: Any, handle: Any) -> dict[str, float | int | None]:
    """Health vitals of one ciphertext under *backend*.

    Returns
    -------
    dict with:

    * ``scale_bits`` — ``log2`` of the current plaintext scale Δ'.
    * ``level`` — remaining rescale budget (chain depth remaining).
    * ``depth_consumed`` — levels already spent (``None`` when the
      backend's level budget is not discoverable).
    * ``modulus_bits`` — ``log2 q`` of the active modulus.
    * ``noise_margin_bits`` — the cheap noise-budget estimate
      ``modulus_bits − scale_bits``; at 0 the message drowns.
    """
    scale = float(backend.scale_of(handle))
    level = int(backend.level_of(handle))
    scale_bits = math.log2(scale) if scale > 0 else 0.0
    modulus_bits = _modulus_bits(backend, level)
    top = _top_level(backend)
    return {
        "scale_bits": scale_bits,
        "level": level,
        "depth_consumed": (top - level) if top is not None else None,
        "modulus_bits": modulus_bits,
        "noise_margin_bits": modulus_bits - scale_bits,
    }


def _flat_handles(handles: Any) -> list[Any]:
    if isinstance(handles, np.ndarray):
        return list(handles.reshape(-1))
    if isinstance(handles, (list, tuple)):
        return list(handles)
    return [handles]


def observe_layer(
    backend: Any, handles: Any, layer: str, index: int | None = None
) -> dict[str, float | int | None] | None:
    """Sample health gauges for the ciphertexts leaving one layer.

    Scans every handle's scale/level (cheap attribute reads) for the
    *floor* of the batch — the weakest ciphertext is the one that fails
    first — and records ``henn.ct.scale_bits`` / ``henn.ct.level`` /
    ``henn.ct.depth_consumed`` / ``henn.ct.noise_margin_bits`` gauges
    labelled ``{layer, index, backend}``, plus unlabelled floor gauges
    whose ``min`` envelope gives the run-wide worst case.  No-op (and
    returns ``None``) unless tracing is enabled.
    """
    if not health_enabled():
        return None
    flat = _flat_handles(handles)
    if not flat:
        return None
    worst = min(flat, key=lambda h: (backend.level_of(h), -backend.scale_of(h)))
    health = ciphertext_health(backend, worst)
    labels: dict[str, Any] = {"layer": layer, "backend": getattr(backend, "name", "?")}
    if index is not None:
        labels["index"] = index
    reg = get_registry()
    for field in ("scale_bits", "level", "depth_consumed", "noise_margin_bits"):
        value = health[field]
        if value is None:
            continue
        reg.gauge(f"henn.ct.{field}", labels).set(float(value))
        reg.gauge(f"henn.ct.{field}").set(float(value))  # unlabelled floor series
    reg.counter("henn.ct.sampled").inc(len(flat))
    return health


def precision_probe(
    backend: Any,
    handles: Any,
    reference: np.ndarray,
    count: int | None = None,
    labels: Mapping[str, Any] | None = None,
) -> dict[str, float]:
    """Decrypt-side ground truth: error statistics against a reference.

    Decrypts *handles* (a single handle, or a sequence stacked along the
    last axis, matching ``HeInferenceEngine.classify``'s logit layout)
    and compares against *reference*, recording
    ``henn.probe.max_abs_err`` and ``henn.probe.bits_precision`` gauges.
    This needs the secret key, so it belongs in tests and benchmarks —
    never on the serving path — but it is the only real measurement of
    CKKS noise.

    Parameters
    ----------
    backend:
        Backend holding the decryption context.
    handles:
        One ciphertext handle, or a sequence/object-array of handles
        (decrypted columns are stacked on the last axis).
    reference:
        Expected plaintext values; shape must match the decryption.
    count:
        Slots to keep per handle (defaults to the reference's leading
        dimension for stacked handles, all slots for a single one).
    labels:
        Extra gauge labels (merged over ``{"backend": ...}``).

    Returns
    -------
    The :func:`repro.ckks.noise.measure_error` statistics dict
    (``max_abs``, ``mean_abs``, ``max_rel``, ``bits_precision``).
    """
    from repro.ckks.noise import measure_error

    reference = np.asarray(reference, dtype=np.float64)
    flat = _flat_handles(handles)
    if len(flat) == 1 and reference.ndim <= 1:
        decrypted = np.real(np.asarray(backend.decrypt(flat[0], count=count)))
        decrypted = decrypted[: reference.shape[0]] if reference.ndim else decrypted
    else:
        n = count if count is not None else (reference.shape[0] if reference.ndim else None)
        decrypted = np.stack(
            [np.real(np.asarray(backend.decrypt(h, count=n))) for h in flat], axis=-1
        )
    stats = measure_error(decrypted, reference)
    all_labels = {"backend": getattr(backend, "name", "?")}
    all_labels.update(labels or {})
    reg = get_registry()
    reg.gauge("henn.probe.max_abs_err", all_labels).set(stats["max_abs"])
    reg.gauge("henn.probe.bits_precision", all_labels).set(stats["bits_precision"])
    return stats
