"""Prometheus text-exposition rendering of a :class:`MetricsRegistry`.

The registry's dotted names map onto the Prometheus data model as:

* ``Counter`` → ``counter``; the sample name gains the conventional
  ``_total`` suffix (``plan.cache.hit`` → ``repro_plan_cache_hit_total``).
* ``Gauge`` → ``gauge`` (``henn.ct.level`` → ``repro_henn_ct_level``).
* ``Histogram`` → ``summary`` with exact ``quantile`` labels (the
  registry keeps raw samples) plus ``_sum``/``_count``.

Metric labels become real Prometheus labels; every series of one name
is grouped under a single ``# TYPE`` header, as the exposition format
requires.  :func:`render_prometheus` is what the ``/metrics`` endpoint
of :class:`repro.obs.server.ObservabilityServer` serves.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "prometheus_name"]

#: Content type Prometheus scrapers expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles exposed for each histogram (exact while the stream fits the
#: reservoir; unbiased estimates beyond it).
_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Dotted registry name → a valid Prometheus metric name."""
    flat = _NAME_RE.sub("_", name.strip())
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Mapping[str, Any], extra: Mapping[str, Any] | None = None) -> str:
    merged: dict[str, str] = {str(k): str(v) for k, v in labels.items()}
    for k, v in (extra or {}).items():
        merged[str(k)] = str(v)
    if not merged:
        return ""
    inner = ",".join(
        f'{_NAME_RE.sub("_", k)}="{_escape(v)}"' for k, v in sorted(merged.items())
    )
    return f"{{{inner}}}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry as Prometheus text exposition format (version 0.0.4).

    Series sharing a base name (label variants) are grouped under one
    ``# TYPE`` header; output is sorted, so the text is diffable across
    scrapes.  Returns a document ending in a newline, ready to serve
    with :data:`CONTENT_TYPE`.
    """
    groups: dict[str, list[Counter | Gauge | Histogram]] = {}
    for _, metric in registry._items():
        groups.setdefault(metric.name, []).append(metric)

    lines: list[str] = []
    for name in sorted(groups):
        metrics = groups[name]
        kind = type(metrics[0])
        base = prometheus_name(name, prefix)
        if kind is Counter:
            lines.append(f"# TYPE {base}_total counter")
            for m in metrics:
                lines.append(f"{base}_total{_labels(m.labels)} {m.value}")
        elif kind is Gauge:
            lines.append(f"# TYPE {base} gauge")
            for m in metrics:
                v = m.value
                if v != v:  # never sampled: skip rather than emit NaN
                    continue
                lines.append(f"{base}{_labels(m.labels)} {_fmt(v)}")
        else:
            lines.append(f"# TYPE {base} summary")
            for m in metrics:
                s = m.summary()
                for q in _QUANTILES:
                    value = m.percentile(q * 100)
                    if value != value:
                        continue
                    lines.append(
                        f"{base}{_labels(m.labels, {'quantile': q})} {_fmt(value)}"
                    )
                lines.append(f"{base}_sum{_labels(m.labels)} {_fmt(s['total'])}")
                lines.append(f"{base}_count{_labels(m.labels)} {s['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
