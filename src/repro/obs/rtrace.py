"""Request-scoped distributed tracing across the serving path.

:mod:`repro.obs.tracer` answers *where one traced run spent its time*
inside a single process; this module answers the serving question —
*where did one particular request's latency go*, end to end, across the
gateway process and the cluster worker that evaluated its batch.  The
pieces mirror a Dapper-style pipeline scaled down to this repo:

* :class:`TraceContext` — minted per request at gateway admission
  (:meth:`RequestTracer.mint`), carrying the trace id and the **head
  sampling decision**.  The context rides through the
  :class:`~repro.serving.scheduler.BatchingScheduler` pending entry and
  the :class:`~repro.serving.cluster.Dispatcher` job, so every stage of
  the serving path (``queue_wait``, ``pack``, ``compute``, ``split``,
  ``failover_retry``) can attribute its wall-clock to the request it
  served.  Stage *timings* are plain floats (recorded for every traced
  request); stage *spans* are real :class:`~repro.obs.tracer.Span`
  objects and exist only when the head decision sampled the request.
* **Cross-process span shipping** — a cluster worker evaluating a
  sampled batch activates a fresh worker-local tracer, and its finished
  spans travel back with the batch result.  The gateway absorbs them
  with :meth:`TraceContext.absorb_worker_spans`, re-iding in the same
  two-pass remap :class:`~repro.parallel.ProcessExecutor` uses (fork
  copies the span-id counter, so worker ids can collide with gateway
  ids): all new ids are allocated first, then parent links rewritten,
  and orphaned roots are re-parented under the request's root span.
  Every span carries a ``pid`` tag, so the merged trace spans processes
  and the Chrome export renders one track group per process.
* :class:`SamplingPolicy` — serving-grade sampling: probabilistic head
  sampling (``rate``), plus tail retention for every errored/shed
  request and for slow-tail outliers detected against a **latency ring
  buffer** (a request slower than ``slow_factor`` × the ring median is
  kept even when head sampling said no; such tail-kept records carry
  stage timings but no spans — spans cannot be recorded retroactively).
* :class:`TraceStore` — bounded in-memory record store: the most recent
  traces plus the slowest-N exemplars, exported on the
  :class:`~repro.obs.server.ObservabilityServer` ``/debug/traces``
  endpoint and consumed by ``tools/trace_critical_path.py``.

With sampling off (``rate=0``) no context is minted, no clock beyond
the request's own latency is read and the store stays empty — the
serving hot path keeps its zero-overhead default.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, Iterator, Sequence

from repro.obs.metrics import get_registry
from repro.obs.tracer import _IDS, Span

__all__ = [
    "TraceContext",
    "RequestTrace",
    "SamplingPolicy",
    "TraceStore",
    "RequestTracer",
    "STAGES",
    "batch_stage",
]

#: Canonical serving-path stage names, in pipeline order.  ``gateway``
#: covers admission validation, ``queue_wait`` the coalescing queue,
#: ``pack``/``compute``/``split`` the batch evaluation, and
#: ``failover_retry`` the backoff + reassignment after a worker loss.
STAGES = ("gateway", "queue_wait", "pack", "compute", "split", "failover_retry")

#: Trace ids are unique per gateway process; combined with the pid they
#: are unique across a cluster.
_TRACE_IDS = itertools.count(1)


@dataclass
class RequestTrace:
    """One finished per-request trace record (what the store keeps)."""

    trace_id: str
    request_id: int
    sampled: bool
    outcome: str
    seconds: float
    #: Why the record was retained: ``head`` (sampled at admission),
    #: ``error`` (failed/shed/rejected), or ``slow`` (latency ring tail).
    kept: str
    stages: dict[str, float] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    retries: int = 0
    error_code: str | None = None

    @property
    def pids(self) -> list[int]:
        """Distinct process ids contributing spans, sorted."""
        return sorted({int(s.tags.get("pid", 0)) for s in self.spans})

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation for ``/debug/traces`` and files."""
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "sampled": self.sampled,
            "outcome": self.outcome,
            "seconds": self.seconds,
            "kept": self.kept,
            "stages": dict(self.stages),
            "retries": self.retries,
            "error_code": self.error_code,
            "pids": self.pids,
            "spans": [s.to_dict() for s in self.spans],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RequestTrace":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            trace_id=str(d["trace_id"]),
            request_id=int(d.get("request_id", 0)),
            sampled=bool(d.get("sampled", False)),
            outcome=str(d.get("outcome", "?")),
            seconds=float(d.get("seconds", 0.0)),
            kept=str(d.get("kept", "?")),
            stages={str(k): float(v) for k, v in d.get("stages", {}).items()},
            spans=[Span.from_dict(s) for s in d.get("spans", [])],
            retries=int(d.get("retries", 0)),
            error_code=d.get("error_code"),
        )


class TraceContext:
    """Mutable per-request trace state threaded through the serving path.

    Minted at gateway admission, attached to the scheduler's pending
    entry and the dispatcher's job, finished exactly once by
    :meth:`RequestTracer.finish`.  Thread-safe: queue-wait stages are
    recorded by the scheduler worker, compute stages by dispatcher
    callback threads, failover stages by failover threads.
    """

    __slots__ = (
        "trace_id",
        "request_id",
        "sampled",
        "started",
        "root_id",
        "retries",
        "_stages",
        "_spans",
        "_lock",
        "_finished",
    )

    def __init__(self, trace_id: str, request_id: int, sampled: bool):
        self.trace_id = trace_id
        self.request_id = request_id
        self.sampled = sampled
        self.started = perf_counter()
        #: Root span id; allocated eagerly for sampled requests so stage
        #: and worker spans can parent onto it before the root closes.
        self.root_id: int | None = next(_IDS) if sampled else None
        self.retries = 0
        self._stages: dict[str, float] = {}
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._finished = False

    # -- stage recording ---------------------------------------------------

    def add_stage(self, name: str, start: float, end: float, **tags: Any) -> None:
        """Attribute ``[start, end]`` (perf_counter readings) to *name*.

        Timings accumulate for every traced request; a :class:`Span`
        (parented under the request root, tagged with this process's
        pid) is recorded only when the request is sampled.
        """
        duration = max(0.0, end - start)
        with self._lock:
            self._stages[name] = self._stages.get(name, 0.0) + duration
            if self.sampled:
                self._spans.append(
                    Span(
                        name=f"rtrace.{name}",
                        start=start,
                        end=end,
                        span_id=next(_IDS),
                        parent_id=self.root_id,
                        thread_id=threading.get_ident(),
                        tags={"trace_id": self.trace_id, "pid": os.getpid(), **tags},
                    )
                )

    @contextmanager
    def stage(self, name: str, **tags: Any) -> Iterator[None]:
        """``with ctx.stage("pack"): ...`` — timed stage recording."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, t0, perf_counter(), **tags)

    def note_retry(self) -> None:
        """Count one failover retry against this request."""
        with self._lock:
            self.retries += 1

    # -- cross-process merge -----------------------------------------------

    def absorb_worker_spans(
        self,
        span_dicts: Sequence[dict],
        worker: str,
        pid: int | None = None,
        align_end: float | None = None,
    ) -> None:
        """Merge spans shipped back from a worker process into this trace.

        Two passes, exactly like the :class:`~repro.parallel.ProcessExecutor`
        merge: children can complete before their parents, so every new
        id is allocated before any parent link is rewritten.  Worker
        roots (parent absent from the shipment) are re-parented under
        the request's root span; every span gains ``worker`` and
        ``pid`` tags so the merged trace distinguishes processes.

        ``perf_counter`` readings do not compare across processes, so
        *align_end* (the gateway's clock at result receipt) shifts the
        whole shipment so its latest span ends there — the message just
        arrived, so the skew of that alignment is one pipe hop.
        """
        if not self.sampled or not span_dicts:
            return
        spans = [Span.from_dict(d) for d in span_dicts]
        if align_end is not None:
            shift = align_end - max(s.end for s in spans)
            for sp in spans:
                sp.start += shift
                sp.end += shift
        remap = {sp.span_id: next(_IDS) for sp in spans}
        for sp in spans:
            sp.span_id = remap[sp.span_id]
            if sp.parent_id is not None and sp.parent_id in remap:
                sp.parent_id = remap[sp.parent_id]
            else:
                sp.parent_id = self.root_id
            sp.tags.setdefault("worker", worker)
            if pid is not None:
                sp.tags.setdefault("pid", pid)
            sp.tags.setdefault("trace_id", self.trace_id)
        with self._lock:
            self._spans.extend(spans)

    # -- wire format --------------------------------------------------------

    def wire(self) -> dict[str, Any] | None:
        """Picklable propagation header for the worker transport.

        ``None`` for unsampled requests — the worker then skips tracer
        activation entirely (span shipping costs nothing when off).
        """
        if not self.sampled:
            return None
        return {"trace_id": self.trace_id, "request_id": self.request_id}

    # -- reading ------------------------------------------------------------

    def stages(self) -> dict[str, float]:
        with self._lock:
            return dict(self._stages)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)


@contextmanager
def batch_stage(
    ctxs: Iterable["TraceContext | None"], name: str, **tags: Any
) -> Iterator[None]:
    """Time one batch-level region and attribute it to every member.

    A coalesced batch packs/evaluates once for all its requests; each
    member's trace still wants the stage, so the region is clocked once
    and recorded into every non-``None`` context.
    """
    live = [c for c in ctxs if c is not None]
    if not live:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        t1 = perf_counter()
        for ctx in live:
            ctx.add_stage(name, t0, t1, **tags)


class SamplingPolicy:
    """Head sampling plus tail retention for errors and slow outliers.

    Parameters
    ----------
    rate:
        Head-sampling probability in ``[0, 1]``.  ``0`` disables
        request tracing entirely (nothing minted, nothing kept).
    slow_factor:
        A finished request slower than ``slow_factor`` × the ring
        median is retained even when head sampling skipped it.
    ring_size / min_ring:
        Latency ring-buffer capacity, and how many completed requests
        must be in the ring before the slow-tail rule arms (warm-up
        requests must not all be flagged against an empty ring).
    seed:
        Seeds the head-sampling RNG for reproducible tests; ``None``
        draws from the process RNG.
    """

    def __init__(
        self,
        rate: float = 0.0,
        *,
        slow_factor: float = 4.0,
        ring_size: int = 128,
        min_ring: int = 16,
        seed: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sampling rate must be in [0, 1]")
        if slow_factor <= 1.0:
            raise ValueError("slow_factor must be > 1")
        if ring_size < 1 or min_ring < 1:
            raise ValueError("ring sizes must be >= 1")
        import random

        self.rate = float(rate)
        self.slow_factor = float(slow_factor)
        self.min_ring = int(min_ring)
        self._ring: deque[float] = deque(maxlen=int(ring_size))
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether request tracing is on at all (``rate > 0``)."""
        return self.rate > 0.0

    def head_decision(self) -> bool:
        """The admission-time coin flip."""
        return self.rate >= 1.0 or (self.rate > 0.0 and self._rng.random() < self.rate)

    def note_latency(self, seconds: float) -> None:
        """Feed one *successful* request latency into the ring buffer."""
        with self._lock:
            self._ring.append(float(seconds))

    def slow_threshold(self) -> float | None:
        """Current slow-tail latency bound, or ``None`` while warming."""
        with self._lock:
            if len(self._ring) < self.min_ring:
                return None
            ordered = sorted(self._ring)
            return self.slow_factor * ordered[len(ordered) // 2]

    def keep_reason(self, sampled: bool, outcome: str, seconds: float) -> str | None:
        """Why (or whether) a finished request's record is retained."""
        if not self.enabled:
            return None
        if sampled:
            return "head"
        if outcome != "ok":
            return "error"
        threshold = self.slow_threshold()
        if threshold is not None and seconds > threshold:
            return "slow"
        return None


class TraceStore:
    """Bounded per-request record store: recent ring + slowest-N exemplars.

    ``capacity`` bounds the recent ring; independently the ``slowest_n``
    worst latencies seen are pinned, so a burst of fast requests cannot
    evict the exemplar a latency investigation needs.  Thread-safe.
    """

    def __init__(self, capacity: int = 256, slowest_n: int = 32):
        if capacity < 1 or slowest_n < 1:
            raise ValueError("store bounds must be >= 1")
        self.capacity = int(capacity)
        self.slowest_n = int(slowest_n)
        self._recent: deque[RequestTrace] = deque(maxlen=self.capacity)
        self._slowest: list[RequestTrace] = []
        self._total = 0
        self._lock = threading.Lock()

    def record(self, trace: RequestTrace) -> None:
        with self._lock:
            self._total += 1
            self._recent.append(trace)
            self._slowest.append(trace)
            self._slowest.sort(key=lambda t: t.seconds, reverse=True)
            del self._slowest[self.slowest_n :]

    def recent(self, n: int | None = None) -> list[RequestTrace]:
        """Most recent records, newest last."""
        with self._lock:
            out = list(self._recent)
        return out if n is None else out[-n:]

    def slowest(self, n: int | None = None) -> list[RequestTrace]:
        """Slowest retained records, worst first."""
        with self._lock:
            out = list(self._slowest)
        return out if n is None else out[:n]

    def get(self, trace_id: str) -> RequestTrace | None:
        """Look one trace up by id (recent ring first, then exemplars)."""
        with self._lock:
            for trace in reversed(self._recent):
                if trace.trace_id == trace_id:
                    return trace
            for trace in self._slowest:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slowest.clear()
            self._total = 0

    def snapshot(self, n: int = 16) -> dict[str, Any]:
        """JSON-ready summary for the ``/debug/traces`` index."""

        def brief(trace: RequestTrace) -> dict[str, Any]:
            return {
                "trace_id": trace.trace_id,
                "request_id": trace.request_id,
                "outcome": trace.outcome,
                "kept": trace.kept,
                "seconds": trace.seconds,
                "stages": dict(trace.stages),
                "retries": trace.retries,
                "spans": len(trace.spans),
                "pids": trace.pids,
            }

        with self._lock:
            total = self._total
        return {
            "total_recorded": total,
            "stored": len(self),
            "slowest": [brief(t) for t in self.slowest(n)],
            "recent": [brief(t) for t in self.recent(n)],
        }


class RequestTracer:
    """Per-service façade tying policy, store and metrics together.

    The serving gateways own one of these; the request path calls
    :meth:`mint` at admission and :meth:`finish` exactly once per
    request.  With a disabled policy both are near-free (``mint``
    returns ``None`` and the scheduler/cluster plumbing skips every
    trace branch).
    """

    def __init__(
        self,
        policy: SamplingPolicy | None = None,
        store: TraceStore | None = None,
        registry: Any | None = None,
    ):
        self.policy = policy or SamplingPolicy(rate=0.0)
        self.store = store or TraceStore()
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self.policy.enabled

    def _reg(self) -> Any:
        return self._registry if self._registry is not None else get_registry()

    def mint(self, request_id: int) -> TraceContext | None:
        """Admission: a new context, or ``None`` when tracing is off."""
        if not self.policy.enabled:
            return None
        sampled = self.policy.head_decision()
        ctx = TraceContext(
            trace_id=f"{os.getpid():x}-{next(_TRACE_IDS):08x}",
            request_id=request_id,
            sampled=sampled,
        )
        reg = self._reg()
        reg.counter("rtrace.minted").inc()
        if sampled:
            reg.counter("rtrace.sampled").inc()
        return ctx

    def finish(
        self,
        ctx: TraceContext | None,
        outcome: str,
        error_code: str | None = None,
    ) -> RequestTrace | None:
        """Close one request's trace; returns the retained record, if any.

        Idempotent per context (failover and shutdown paths can race a
        late result); feeds the latency ring on success, observes the
        ``rtrace.stage.*`` histograms, and applies the retention policy
        — head-sampled records close their root span first, so the
        stored trace is a complete cross-process span tree.
        """
        if ctx is None:
            return None
        with ctx._lock:
            if ctx._finished:
                return None
            ctx._finished = True
        end = perf_counter()
        seconds = end - ctx.started
        stages = ctx.stages()
        reg = self._reg()
        reg.histogram("rtrace.request.seconds").observe(seconds)
        for name, duration in stages.items():
            reg.histogram(f"rtrace.stage.{name}.seconds").observe(duration)
        if outcome == "ok":
            self.policy.note_latency(seconds)
        kept = self.policy.keep_reason(ctx.sampled, outcome, seconds)
        if kept is None:
            reg.counter("rtrace.dropped").inc()
            return None
        spans = ctx.spans()
        if ctx.sampled:
            spans.append(
                Span(
                    name="rtrace.request",
                    start=ctx.started,
                    end=end,
                    span_id=ctx.root_id,
                    parent_id=None,
                    thread_id=threading.get_ident(),
                    tags={
                        "trace_id": ctx.trace_id,
                        "pid": os.getpid(),
                        "outcome": outcome,
                    },
                )
            )
        trace = RequestTrace(
            trace_id=ctx.trace_id,
            request_id=ctx.request_id,
            sampled=ctx.sampled,
            outcome=outcome,
            seconds=seconds,
            kept=kept,
            stages=stages,
            spans=spans,
            retries=ctx.retries,
            error_code=error_code,
        )
        self.store.record(trace)
        reg.counter("rtrace.kept", {"reason": kept}).inc()
        return trace
