"""Process-global named counters and histograms.

Complements :mod:`repro.obs.tracer`: spans answer *where a particular
run spent its time*; the registry answers *how often and how expensive*
each operation is across runs, threads and engines.  All mutation is
lock-protected, so residue-channel workers on a thread executor can
bump the same counter concurrently.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = ["Counter", "Histogram", "MetricsRegistry", "get_registry"]


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError("counters only move forward")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self._value}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Accumulates float observations; exposes count/sum/min/max/mean.

    Keeps the raw samples (traces here are short-lived profiling runs,
    not unbounded production telemetry), so exact percentiles are
    available via :meth:`percentile`.
    """

    __slots__ = ("name", "_samples", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, x: float) -> None:
        """Record one observation."""
        with self._lock:
            self._samples.append(float(x))

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else math.nan

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else math.nan

    @property
    def mean(self) -> float:
        return self.total / len(self._samples) if self._samples else math.nan

    def percentile(self, q: float) -> float:
        """Exact *q*-th percentile (0 <= q <= 100) by nearest-rank."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return math.nan
            ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            s = list(self._samples)
        return {
            "type": "histogram",
            "count": len(s),
            "total": sum(s),
            "min": min(s) if s else None,
            "max": max(s) if s else None,
            "mean": (sum(s) / len(s)) if s else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.6f})"


class MetricsRegistry:
    """Name-keyed store of counters and histograms (get-or-create)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter named *name*, creating it on first use."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named *name*, creating it on first use."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def _get(self, name: str, cls: type) -> Counter | Histogram:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = self._metrics[name] = cls(name)
            elif not isinstance(m, cls):
                raise TypeError(f"metric {name!r} already registered as {type(m).__name__}")
            return m

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready dump of every metric's current state."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: m.to_dict() for name, m in sorted(items)}

    def reset(self) -> None:
        """Drop every metric (names included)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (what :func:`repro.obs.enable` feeds)."""
    return _REGISTRY
