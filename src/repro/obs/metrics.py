"""Process-global named counters, gauges and histograms.

Complements :mod:`repro.obs.tracer`: spans answer *where a particular
run spent its time*; the registry answers *how often and how expensive*
each operation is across runs, threads and engines.  All mutation is
lock-protected, so residue-channel workers on a thread executor can
bump the same counter concurrently.

Three metric kinds:

* :class:`Counter` — monotonic event count (``plan.cache.hit``).
* :class:`Gauge` — last-observed value of a sampled quantity
  (``henn.ct.scale_bits``); unlike a counter it can move both ways.
* :class:`Histogram` — raw float observations with exact summaries
  (``span.nt.ntt.forward.seconds``).

Metrics may carry **labels** (``registry.gauge("henn.ct.level",
labels={"layer": "HeConv2d"})``): each distinct label set is its own
time series, keyed in the registry by the Prometheus-style flattened
name ``henn.ct.level{layer="HeConv2d"}``.  Labels survive snapshots and
the JSON trace round-trip and become real Prometheus labels in
:func:`repro.obs.prometheus.render_prometheus`.

Cross-process aggregation: a worker process records into its own
registry, serialises it with :meth:`MetricsRegistry.to_delta`, and the
parent folds it back in with :meth:`MetricsRegistry.merge_delta` —
optionally tagged with a worker id, in which case the registry also
keeps a per-worker ledger (:meth:`MetricsRegistry.per_worker`) next to
the merged view.  :class:`~repro.parallel.ProcessExecutor` does this
automatically for every traced ``map``.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "metric_key",
]


def metric_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """Registry key of a metric: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared name/label plumbing of the three metric kinds."""

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: Mapping[str, Any] | None = None):
        self.name = name
        self.labels: dict[str, str] = {k: str(v) for k, v in (labels or {}).items()}
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        """Flattened registry key (name plus sorted labels)."""
        return metric_key(self.name, self.labels)

    def _base_dict(self, kind: str) -> dict[str, Any]:
        d: dict[str, Any] = {"type": kind}
        if self.labels:
            d["labels"] = dict(self.labels)
        return d


class Counter(_Metric):
    """Monotonic named counter."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: Mapping[str, Any] | None = None):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError("counters only move forward")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_dict(self) -> dict[str, Any]:
        d = self._base_dict("counter")
        d["value"] = self.value
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.key}={self.value})"


class Gauge(_Metric):
    """Last-value metric for sampled quantities (can move both ways).

    The serving-health gauges (`henn.ct.*`: ciphertext scale, level,
    modulus-chain depth remaining, noise-budget estimate) are of this
    kind: each sample overwrites the previous one, and ``min``/``max``
    track the extremes seen since the last reset — the level *floor* a
    run touched matters more than the last value sampled.
    """

    __slots__ = ("_value", "_min", "_max", "_samples")

    def __init__(self, name: str, labels: Mapping[str, Any] | None = None):
        super().__init__(name, labels)
        self._value = math.nan
        self._min = math.inf
        self._max = -math.inf
        self._samples = 0

    def set(self, v: float) -> None:
        """Record the current value of the tracked quantity."""
        v = float(v)
        with self._lock:
            self._value = v
            self._min = min(self._min, v)
            self._max = max(self._max, v)
            self._samples += 1

    def inc(self, delta: float = 1.0) -> None:
        """Adjust the gauge by *delta* (``nan`` start counts as 0)."""
        with self._lock:
            base = 0.0 if math.isnan(self._value) else self._value
            v = base + float(delta)
            self._value = v
            self._min = min(self._min, v)
            self._max = max(self._max, v)
            self._samples += 1

    def dec(self, delta: float = 1.0) -> None:
        """Adjust the gauge by ``-delta``."""
        self.inc(-delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            d = self._base_dict("gauge")
            d["value"] = None if math.isnan(self._value) else self._value
            d["min"] = None if self._samples == 0 else self._min
            d["max"] = None if self._samples == 0 else self._max
            d["samples"] = self._samples
            return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.key}={self.value})"


class Histogram(_Metric):
    """Accumulates float observations; exposes count/sum/min/max/mean.

    ``count``/``total``/``min``/``max``/``mean`` are exact for any
    observation count.  The samples backing :meth:`percentile` and the
    ``p50``/``p90``/``p95``/``p99`` summary live in a **bounded
    reservoir** (Algorithm R, ``reservoir_size`` slots, default 4096):
    below the cap every observation is kept and percentiles are exact;
    past it each new observation replaces a uniformly chosen slot, so
    the reservoir stays an unbiased sample of the full stream and the
    quantiles are statistically faithful while memory stays constant —
    what lets long-running serving processes keep latency histograms
    without unbounded growth.  The replacement RNG is seeded from the
    metric key, so runs are reproducible.
    """

    __slots__ = ("_reservoir", "_cap", "_count", "_total", "_min", "_max", "_rng")

    #: Default reservoir capacity; short profiling runs stay exact.
    RESERVOIR_SIZE = 4096

    def __init__(
        self,
        name: str,
        labels: Mapping[str, Any] | None = None,
        reservoir_size: int | None = None,
    ):
        super().__init__(name, labels)
        self._cap = int(reservoir_size or self.RESERVOIR_SIZE)
        if self._cap < 1:
            raise ValueError("reservoir_size must be >= 1")
        self._reservoir: list[float] = []
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._rng = random.Random(zlib.crc32(self.key.encode("utf-8")))

    def _insert(self, x: float) -> None:
        """One observation into scalars + reservoir (caller holds lock)."""
        self._count += 1
        self._total += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if len(self._reservoir) < self._cap:
            self._reservoir.append(x)
        else:
            j = self._rng.randrange(self._count)
            if j < self._cap:
                self._reservoir[j] = x

    def observe(self, x: float) -> None:
        """Record one observation."""
        x = float(x)
        with self._lock:
            self._insert(x)

    def observe_many(self, xs: Iterable[float]) -> None:
        """Record a batch of observations (one lock acquisition)."""
        xs = [float(x) for x in xs]
        with self._lock:
            for x in xs:
                self._insert(x)

    def samples(self) -> list[float]:
        """Copy of the retained reservoir (merge/serialisation hook)."""
        with self._lock:
            return list(self._reservoir)

    def absorb_delta(
        self,
        samples: Iterable[float],
        count: int | None = None,
        total: float | None = None,
        mn: float | None = None,
        mx: float | None = None,
    ) -> None:
        """Fold a shipped delta in: reservoir samples + exact scalars.

        *samples* feed the reservoir; *count*/*total*/*mn*/*mx* carry the
        shipper's exact scalars (which may exceed what its reservoir
        retained).  Omitted scalars are derived from *samples*, keeping
        old-format deltas (bare sample lists) mergeable.
        """
        xs = [float(x) for x in samples]
        n = len(xs) if count is None else int(count)
        t = sum(xs) if total is None else float(total)
        with self._lock:
            for x in xs:
                self._insert(x)
            # _insert counted the reservoir samples; correct the scalars
            # to the shipper's exact stream totals.
            self._count += n - len(xs)
            self._total += t - sum(xs)
            for bound in (mn, mx):
                if bound is not None:
                    b = float(bound)
                    self._min = min(self._min, b)
                    self._max = max(self._max, b)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else math.nan

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else math.nan

    def percentile(self, q: float) -> float:
        """*q*-th percentile (0 <= q <= 100) by nearest-rank.

        Exact while the stream fits the reservoir; an unbiased estimate
        beyond it.  Well-defined for every sample count: ``nan`` when
        empty, the sample itself for a single observation (every ``q``),
        otherwise the nearest-rank order statistic of the reservoir.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._reservoir:
                return math.nan
            ordered = sorted(self._reservoir)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict[str, Any]:
        """One consistent stats dict for any sample count.

        ``count``/``total`` are always (exact) numbers; the order
        statistics (``min``/``max``/``mean``/``p50``/``p90``/``p95``/
        ``p99``) are ``None`` for the empty histogram and all equal to
        the single sample when only one observation has been made — no
        ``nan`` leaks into JSON artifacts.
        """
        with self._lock:
            s = sorted(self._reservoir)
            count, total = self._count, self._total
            lo, hi = self._min, self._max
        if not count:
            return {
                "count": 0,
                "total": 0.0,
                "min": None,
                "max": None,
                "mean": None,
                "p50": None,
                "p90": None,
                "p95": None,
                "p99": None,
            }

        def rank(q: float) -> float:
            return s[max(0, math.ceil(q / 100 * len(s)) - 1)]

        return {
            "count": count,
            "total": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
            "p50": rank(50),
            "p90": rank(90),
            "p95": rank(95),
            "p99": rank(99),
        }

    def to_dict(self) -> dict[str, Any]:
        d = self._base_dict("histogram")
        d.update(self.summary())
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.key}, n={self.count}, mean={self.mean:.6f})"


class MetricsRegistry:
    """Key-keyed store of counters, gauges and histograms (get-or-create).

    The same ``(name, labels)`` pair always returns the same object;
    distinct label sets of one name are distinct series.  The registry
    lock only guards the map — each metric carries its own lock — so a
    :meth:`snapshot` taken while worker merges are in flight sees a
    consistent per-metric state (each ``to_dict`` is atomic under the
    metric's lock) without stalling the writers.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._workers: dict[str, dict[str, dict[str, Any]]] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, labels: Mapping[str, Any] | None = None) -> Counter:
        """The counter named *name* (with *labels*), creating it on first use."""
        return self._get(name, labels, Counter)  # type: ignore[return-value]

    def gauge(self, name: str, labels: Mapping[str, Any] | None = None) -> Gauge:
        """The gauge named *name* (with *labels*), creating it on first use."""
        return self._get(name, labels, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, labels: Mapping[str, Any] | None = None) -> Histogram:
        """The histogram named *name* (with *labels*), creating it on first use."""
        return self._get(name, labels, Histogram)  # type: ignore[return-value]

    def _get(self, name: str, labels: Mapping[str, Any] | None, cls: type):
        key = metric_key(name, {k: str(v) for k, v in (labels or {}).items()})
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = self._metrics[key] = cls(name, labels)
            elif not isinstance(m, cls):
                raise TypeError(f"metric {key!r} already registered as {type(m).__name__}")
            return m

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def _items(self) -> list[tuple[str, "Counter | Gauge | Histogram"]]:
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready dump of every metric's current state."""
        return {key: m.to_dict() for key, m in self._items()}

    # -- cross-process aggregation ----------------------------------------

    def to_delta(self) -> dict[str, dict[str, Any]]:
        """Serialise the registry as a mergeable delta.

        Unlike :meth:`snapshot` this keeps histograms as their retained
        reservoir samples *plus* the exact count/total/min/max scalars,
        so a parent-side :meth:`merge_delta` reconstructs faithful
        percentiles and exact stream totals rather than merging
        summaries.
        """
        out: dict[str, dict[str, Any]] = {}
        for key, m in self._items():
            entry: dict[str, Any] = {"name": m.name}
            if m.labels:
                entry["labels"] = dict(m.labels)
            if isinstance(m, Counter):
                entry.update(type="counter", value=m.value)
            elif isinstance(m, Gauge):
                d = m.to_dict()
                entry.update(type="gauge", value=d["value"], min=d["min"], max=d["max"])
            else:
                count = m.count
                entry.update(
                    type="histogram",
                    samples=m.samples(),
                    count=count,
                    total=m.total,
                    min=m.min if count else None,
                    max=m.max if count else None,
                )
            out[key] = entry
        return out

    def merge_delta(
        self, delta: Mapping[str, Mapping[str, Any]], worker: str | None = None
    ) -> None:
        """Fold a :meth:`to_delta` document into this registry.

        Counters add, histograms extend their samples, gauges adopt the
        delta's last value (and widen their min/max envelope).  With a
        *worker* id the raw delta is additionally accumulated into the
        per-worker ledger, so reports can show both the merged totals
        and each worker's contribution.
        """
        for entry in delta.values():
            name = str(entry["name"])
            labels = entry.get("labels") or None
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name, labels).inc(int(entry.get("value", 0)))
            elif kind == "gauge":
                value = entry.get("value")
                g = self.gauge(name, labels)
                if value is not None:
                    g.set(float(value))
                    for bound in (entry.get("min"), entry.get("max")):
                        if bound is not None:
                            with g._lock:
                                g._min = min(g._min, float(bound))
                                g._max = max(g._max, float(bound))
            elif kind == "histogram":
                self.histogram(name, labels).absorb_delta(
                    entry.get("samples", ()),
                    count=entry.get("count"),
                    total=entry.get("total"),
                    mn=entry.get("min"),
                    mx=entry.get("max"),
                )
        if worker is not None:
            self._note_worker(worker, delta)

    def _note_worker(self, worker: str, delta: Mapping[str, Mapping[str, Any]]) -> None:
        with self._lock:
            ledger = self._workers.setdefault(worker, {})
            for key, entry in delta.items():
                kind = entry.get("type")
                prev = ledger.get(key)
                if kind == "counter":
                    value = int(entry.get("value", 0))
                    if prev is None:
                        ledger[key] = {"type": "counter", "value": value}
                    else:
                        prev["value"] += value
                elif kind == "gauge":
                    ledger[key] = {"type": "gauge", "value": entry.get("value")}
                elif kind == "histogram":
                    samples = entry.get("samples", ())
                    if prev is None:
                        prev = ledger[key] = {"type": "histogram", "count": 0, "total": 0.0}
                    prev["count"] += int(entry.get("count", len(samples)))
                    prev["total"] += float(entry.get("total", sum(samples)))

    def per_worker(self) -> dict[str, dict[str, dict[str, Any]]]:
        """Per-worker metric ledgers accumulated by :meth:`merge_delta`."""
        with self._lock:
            return {w: {k: dict(v) for k, v in led.items()} for w, led in self._workers.items()}

    def reset(self) -> None:
        """Drop every metric (names included) and the per-worker ledgers."""
        with self._lock:
            self._metrics.clear()
            self._workers.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (what :func:`repro.obs.enable` feeds)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process-global registry and return it.

    Used by the metered executors: a pool worker redirects the global
    registry to a fresh one for the duration of an item, so the item's
    metrics arrive as an isolated, serialisable delta.
    """
    global _REGISTRY
    _REGISTRY = registry
    return _REGISTRY
