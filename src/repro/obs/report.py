"""Aggregate span collections into human-readable breakdown tables.

The per-primitive view is the one the paper's Fig. 5 motivates: group
spans by name, sum inclusive and *self* time (inclusive minus direct
children), and rank by where the wall-clock actually went — NTTs vs.
key switching vs. executor dispatch vs. layer overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "SpanAggregate",
    "aggregate_spans",
    "layer_rows",
    "serving_rows",
    "cluster_rows",
    "stage_rows",
    "render_report",
    "format_table",
]


@dataclass
class SpanAggregate:
    """Rolled-up statistics for all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _spans_of(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.finished()
    return list(source)


def aggregate_spans(source: Tracer | Iterable[Span]) -> dict[str, SpanAggregate]:
    """Group spans by name with inclusive and self (exclusive) totals.

    Self time of a span is its duration minus the summed durations of
    its *direct* children, so per-primitive rows do not double-count
    nested work (e.g. the NTTs inside a key switch).
    """
    spans = _spans_of(source)
    child_time: dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration
    out: dict[str, SpanAggregate] = {}
    for s in spans:
        agg = out.get(s.name)
        if agg is None:
            agg = out[s.name] = SpanAggregate(s.name)
        d = s.duration
        agg.count += 1
        agg.total += d
        agg.self_total += max(0.0, d - child_time.get(s.span_id, 0.0))
        agg.min = min(agg.min, d)
        agg.max = max(agg.max, d)
    return out


def layer_rows(source: Tracer | Iterable[Span]) -> list[tuple[str, float]]:
    """Per-layer ``(label, seconds)`` rows from ``henn.layer`` spans, in order."""
    rows = []
    for s in sorted(_spans_of(source), key=lambda s: s.start):
        if s.name == "henn.layer":
            label = str(s.tags.get("layer", "?"))
            rows.append((label, s.duration))
    return rows


def serving_rows(metrics: MetricsRegistry) -> list[list]:
    """Serving-gateway summary rows from the ``serving.*`` metrics.

    One row per series: histograms show count / mean / p50 / p99 (the
    batching trade-off in four numbers — how full batches get and what
    the coalescing wait costs), gauges and counters their value.
    Empty when no batching gateway ran.
    """
    return _prefixed_rows(metrics, "serving.")


def cluster_rows(metrics: MetricsRegistry) -> list[list]:
    """Worker-pool summary rows from the ``cluster.*`` metrics.

    The failover story in numbers: dispatches vs. failovers vs. worker
    deaths/respawns, per-worker health and in-flight gauges, batch and
    warm-up timings.  Empty when no cluster gateway ran.
    """
    return _prefixed_rows(metrics, "cluster.")


def stage_rows(metrics: MetricsRegistry) -> list[list]:
    """Serving-stage summary rows from the ``rtrace.*`` request tracing.

    Where a request's latency goes, stage by stage: one histogram row
    per ``rtrace.stage.<name>.seconds`` series (gateway admission,
    queue wait, pack, compute, split, failover retries) plus the
    end-to-end ``rtrace.request.seconds`` and the sampling counters.
    Empty when request tracing never ran.
    """
    return _prefixed_rows(metrics, "rtrace.")


def _prefixed_rows(metrics: MetricsRegistry, prefix: str) -> list[list]:
    rows: list[list] = []
    for key, m in sorted(metrics.snapshot().items()):
        if not key.startswith(prefix):
            continue
        if m["type"] == "histogram":
            if m["count"]:
                rows.append(
                    [
                        key,
                        m["count"],
                        f"{m['mean']:.6g}",
                        f"{m['p50']:.6g}",
                        f"{m['p95']:.6g}",
                        f"{m['p99']:.6g}",
                    ]
                )
            else:
                rows.append([key, 0, "-", "-", "-", "-"])
        elif m["type"] == "gauge":
            v = m["value"]
            rows.append(
                [key, m.get("samples", ""), f"{v:.6g}" if v is not None else "-", "", "", ""]
            )
        else:
            rows.append([key, "", str(m["value"]), "", "", ""])
    return rows


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Monospace table (same layout as the benchmark tables)."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4f}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title] if title else []
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_report(
    source: Tracer | Iterable[Span],
    metrics: MetricsRegistry | None = None,
    title: str = "repro.obs trace report",
) -> str:
    """Pretty per-primitive (and, when present, per-layer) breakdown.

    The primitive table is ranked by self time — the ordering that says
    which kernel to optimise next; ``share %`` is self time relative to
    the summed root spans (total traced wall-clock).
    """
    spans = _spans_of(source)
    aggs = aggregate_spans(spans)
    root_total = sum(s.duration for s in spans if s.parent_id is None)
    sections = [title]

    rows = [
        [
            a.name,
            a.count,
            a.total,
            a.self_total,
            a.mean * 1e3,
            (100.0 * a.self_total / root_total) if root_total else 0.0,
        ]
        for a in sorted(aggs.values(), key=lambda a: a.self_total, reverse=True)
    ]
    sections.append(
        format_table(
            ["span", "calls", "incl s", "self s", "mean ms", "share %"],
            rows,
            f"per-primitive breakdown (root wall-clock {root_total:.4f} s)",
        )
    )

    layers = layer_rows(spans)
    if layers:
        sections.append(
            format_table(
                ["layer", "seconds"],
                [[n, s] for n, s in layers],
                "per-layer breakdown (henn.layer spans)",
            )
        )

    srows = serving_rows(metrics) if metrics is not None else []
    if srows:
        sections.append(
            format_table(
                ["serving metric", "n", "value/mean", "p50", "p95", "p99"],
                srows,
                "serving gateway (batch coalescing)",
            )
        )

    crows = cluster_rows(metrics) if metrics is not None else []
    if crows:
        sections.append(
            format_table(
                ["cluster metric", "n", "value/mean", "p50", "p95", "p99"],
                crows,
                "worker pool (dispatch / failover / respawn)",
            )
        )

    trows = stage_rows(metrics) if metrics is not None else []
    if trows:
        sections.append(
            format_table(
                ["serving stage", "n", "value/mean", "p50", "p95", "p99"],
                trows,
                "request tracing (per-stage latency, rtrace.*)",
            )
        )

    if metrics is not None and metrics.names():
        mrows = []
        for name, m in metrics.snapshot().items():
            if m["type"] == "counter":
                mrows.append([name, m["value"], ""])
            elif m["type"] == "gauge":
                value = m["value"]
                detail = ""
                if m.get("min") is not None and m.get("min") != m.get("max"):
                    detail = f"min={m['min']:.6g} max={m['max']:.6g}"
                mrows.append(
                    [name, f"{value:.6g}" if value is not None else "-", detail]
                )
            else:
                mean = m["mean"]
                mrows.append([name, m["count"], f"mean={mean:.6f}" if mean is not None else ""])
        sections.append(format_table(["metric", "count/value", "detail"], mrows, "metrics"))

    workers = metrics.per_worker() if metrics is not None else {}
    if workers:
        # Merged totals above; this is each pool worker's contribution,
        # as shipped back by the metered ProcessExecutor maps.
        wrows = []
        for worker in sorted(workers):
            for name, m in sorted(workers[worker].items()):
                if m["type"] == "counter":
                    wrows.append([worker, name, m["value"], ""])
                elif m["type"] == "gauge":
                    v = m.get("value")
                    wrows.append([worker, name, f"{v:.6g}" if v is not None else "-", ""])
                else:
                    total = m.get("total", 0.0)
                    wrows.append([worker, name, m.get("count", 0), f"total={total:.6f}"])
        sections.append(
            format_table(
                ["worker", "metric", "count/value", "detail"],
                wrows,
                "per-worker metrics (merged into the totals above)",
            )
        )

    return "\n\n".join(sections)
