"""Nested-span tracer with a zero-overhead disabled mode.

A *span* is one timed region of the pipeline — a primitive op
(``ckksrns.mul``), a kernel (``nt.ntt.forward``), an executor dispatch
(``parallel.map``) or a network layer (``henn.layer``).  Spans nest:
each carries its parent's id (tracked per thread), so a full encrypted
classification unfolds into the Fig. 5 stage tree with per-primitive
attribution at the leaves.

The process-global *active tracer* is a :class:`NullTracer` by default:
``span()`` then hands back a shared no-op context manager, never reads
the clock and never allocates, so instrumented hot paths cost one
attribute lookup and an empty ``with`` when tracing is off.  Enable
collection with :func:`enable` (or the scoped :func:`tracing` context
manager) and read the results from :meth:`Tracer.finished`.

Spans opened inside :class:`~repro.parallel.ThreadExecutor` workers are
recorded with that worker's ``thread_id`` and no parent (each thread has
its own nesting stack).  :class:`~repro.parallel.ProcessExecutor`
workers run in child processes: for a traced ``map`` the executor
meters each item — worker-side spans and metric deltas are serialised
and merged back into the parent tracer/registry (tagged with the worker
pid).  On unmetered paths (``submit``, tracing enabled only inside the
worker) a fork-inherited tracer cannot propagate spans back; those are
counted in the worker-local ``obs.spans.dropped`` counter instead of
being recorded into memory the parent will never read.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "span",
    "traced",
    "tracing",
]

#: Span ids are unique per process (across tracers), so spans can be
#: merged between tracers without collisions.
_IDS = itertools.count(1)


@dataclass
class Span:
    """One finished timed region.

    Parameters
    ----------
    name:
        Dotted identifier of the instrumented region (``"ckksrns.mul"``).
    start, end:
        ``time.perf_counter()`` readings bracketing the region.
    span_id:
        Process-unique id.
    parent_id:
        Id of the enclosing span on the same thread, or ``None`` for a
        root span.
    thread_id:
        ``threading.get_ident()`` of the recording thread.
    tags:
        User key/value annotations supplied at ``span()`` time.
    """

    name: str
    start: float
    end: float
    span_id: int
    parent_id: int | None
    thread_id: int
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span (inclusive of children)."""
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            start=float(d["start"]),
            end=float(d["end"]),
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            thread_id=int(d.get("thread_id", 0)),
            tags=dict(d.get("tags", {})),
        )


class _SpanHandle:
    """Context manager for one in-flight span; exposes the result as ``record``."""

    __slots__ = ("_tracer", "name", "tags", "_start", "span_id", "parent_id", "record")

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.record: Span | None = None

    def __enter__(self) -> "_SpanHandle":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(_IDS)
        stack.append(self.span_id)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = perf_counter()
        self._tracer._stack().pop()
        self.record = Span(
            name=self.name,
            start=self._start,
            end=end,
            span_id=self.span_id,
            parent_id=self.parent_id,
            thread_id=threading.get_ident(),
            tags=self.tags,
        )
        self._tracer._record(self.record)


class _NullSpan:
    """Shared do-nothing context manager handed out by :class:`NullTracer`."""

    __slots__ = ()
    record = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; thread-safe.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When set,
        every finished span also increments the counter
        ``span.<name>.calls`` and feeds ``span.<name>.seconds`` — so the
        aggregate view survives :meth:`clear` and merges across runs.
    """

    enabled = True

    def __init__(self, metrics: "Any | None" = None):
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self.metrics = metrics
        #: Owning process: a fork-inherited copy of this tracer records
        #: into memory the parent will never read, so spans finished
        #: under a different pid are counted as dropped instead.
        self._pid = os.getpid()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **tags: Any) -> _SpanHandle:
        """Open a nested span: ``with tracer.span("ckksrns.mul"): ...``."""
        return _SpanHandle(self, name, tags)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, sp: Span) -> None:
        if os.getpid() != self._pid:
            # This tracer is a fork-inherited copy inside a pool worker:
            # whatever it stores, the parent process will never read it.
            # ProcessExecutor ships spans home for metered maps; on any
            # other path, at least leave a trace of the loss in the
            # worker-local registry (which a later metered map merges).
            from repro.obs.metrics import get_registry

            get_registry().counter("obs.spans.dropped").inc()
            return
        with self._lock:
            self._spans.append(sp)
        if self.metrics is not None:
            self.metrics.counter(f"span.{sp.name}.calls").inc()
            self.metrics.histogram(f"span.{sp.name}.seconds").observe(sp.duration)

    def absorb(self, spans: Iterable[Span]) -> None:
        """Append already-finished spans (e.g. from another tracer)."""
        with self._lock:
            self._spans.extend(spans)

    # -- reading -----------------------------------------------------------

    def finished(self) -> list[Span]:
        """Snapshot of all recorded spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop recorded spans (open spans and metrics are unaffected)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class NullTracer:
    """Disabled tracer: no clock reads, no allocation, nothing recorded."""

    enabled = False
    metrics = None

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def finished(self) -> list[Span]:
        return []

    def absorb(self, spans: Iterable[Span]) -> None:
        return None

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


_ACTIVE: Tracer | NullTracer = NullTracer()


def get_tracer() -> Tracer | NullTracer:
    """The process-global active tracer."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install *tracer* as the active tracer and return it."""
    global _ACTIVE
    _ACTIVE = tracer
    return _ACTIVE


def enable(metrics: "Any | None" = None) -> Tracer:
    """Install and return a fresh collecting :class:`Tracer`.

    Parameters
    ----------
    metrics:
        Registry fed by span completions; defaults to the process-global
        :func:`repro.obs.metrics.get_registry`.
    """
    if metrics is None:
        from repro.obs.metrics import get_registry

        metrics = get_registry()
    return set_tracer(Tracer(metrics=metrics))  # type: ignore[return-value]


def disable() -> None:
    """Restore the zero-overhead :class:`NullTracer`."""
    set_tracer(NullTracer())


def enabled() -> bool:
    """Whether spans are currently being collected."""
    return _ACTIVE.enabled


def span(name: str, **tags: Any) -> _SpanHandle | _NullSpan:
    """Open a span on the active tracer (no-op context when disabled)."""
    return _ACTIVE.span(name, **tags)


class tracing:
    """Scoped tracing: ``with tracing() as t: ... t.finished()``.

    Restores the previously active tracer on exit, so nested/temporary
    profiling cannot leak collection into steady-state code.
    """

    def __init__(self, metrics: "Any | None" = None):
        self._metrics = metrics
        self._prev: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer:
        self._prev = get_tracer()
        return enable(self._metrics)

    def __exit__(self, *exc: object) -> None:
        assert self._prev is not None
        set_tracer(self._prev)


def traced(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator wrapping a function in a span named *name*.

    The disabled fast path is a single global read and truth test before
    calling through — safe to put on per-channel kernels like the NTT.
    """

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _ACTIVE
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return deco
