"""Opt-in scrape endpoints: ``/metrics`` (Prometheus) and ``/healthz``.

:class:`ObservabilityServer` runs a stdlib ``ThreadingHTTPServer`` on a
daemon thread, so attaching it to a
:class:`~repro.henn.protocol.CloudService` costs nothing on the request
path — a scraper pulls whenever it wants:

* ``GET /metrics`` — the process registry rendered by
  :func:`repro.obs.prometheus.render_prometheus`;
* ``GET /healthz`` — a small JSON document from the owner's health
  callback (HTTP 200 when ``"ok": true``, 503 otherwise);
* ``GET /debug/traces`` — when the owner attached a
  :class:`~repro.obs.rtrace.TraceStore`: the per-request trace index
  (slowest-N exemplars with stage breakdowns plus the recent ring),
  ``GET /debug/traces/<trace_id>`` for one full record, and
  ``?format=chrome`` on the latter for a Chrome/Perfetto ``traceEvents``
  document spanning the gateway and worker processes.

Nothing is served unless the owner explicitly starts the server
(``port=0`` picks an ephemeral port, handy for tests), and the handler
only ever *reads* telemetry — it cannot reach ciphertexts or keys.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus

__all__ = ["ObservabilityServer"]


class _Handler(BaseHTTPRequestHandler):
    server: "_ObsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, query = self.path.partition("?")
        if path == "/metrics":
            body = render_prometheus(self.server.registry).encode("utf-8")
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/healthz":
            try:
                status = dict(self.server.health_fn())
            except Exception:
                status = {"ok": False, "error": "health callback failed"}
            code = 200 if status.get("ok", False) else 503
            body = json.dumps(status, separators=(",", ":")).encode("utf-8")
            self._reply(code, "application/json", body)
        elif path == "/debug/traces" or path.startswith("/debug/traces/"):
            self._traces(path, query)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _traces(self, path: str, query: str) -> None:
        """Serve the request-trace store (index, one record, chrome export)."""
        store = self.server.trace_store
        if store is None:
            self._reply(
                404, "text/plain; charset=utf-8", b"request tracing not enabled\n"
            )
            return
        trace_id = path[len("/debug/traces/"):] if path != "/debug/traces" else ""
        if not trace_id:
            body = json.dumps(store.snapshot(), indent=1).encode("utf-8")
            self._reply(200, "application/json", body)
            return
        trace = store.get(trace_id)
        if trace is None:
            self._reply(404, "text/plain; charset=utf-8", b"unknown trace id\n")
            return
        fmt = parse_qs(query).get("format", [""])[0]
        if fmt == "chrome":
            from repro.obs.export import to_chrome_trace

            doc = to_chrome_trace(trace.spans)
        else:
            doc = trace.to_dict()
        self._reply(200, "application/json", json.dumps(doc, indent=1).encode("utf-8"))

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:  # silence per-request stderr
        pass


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    registry: MetricsRegistry
    health_fn: Callable[[], dict[str, Any]]
    trace_store: Any | None


class ObservabilityServer:
    """Daemon-thread HTTP server exposing ``/metrics`` and ``/healthz``.

    Parameters
    ----------
    port:
        TCP port to bind on ``host``; ``0`` (the default) lets the OS
        pick a free one — read it back from :attr:`port` after
        :meth:`start`.
    registry:
        Metrics source; defaults to the process-global registry.
    health_fn:
        Zero-argument callable returning the ``/healthz`` JSON dict;
        the endpoint answers 200 when its ``"ok"`` key is true, 503
        otherwise.  Defaults to a static ``{"ok": True}``.
    trace_store:
        Optional :class:`~repro.obs.rtrace.TraceStore` backing the
        ``/debug/traces`` endpoints; without one those answer 404.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        health_fn: Callable[[], dict[str, Any]] | None = None,
        trace_store: Any | None = None,
    ):
        self.host = host
        self._requested_port = port
        self.registry = registry if registry is not None else get_registry()
        self.health_fn = health_fn or (lambda: {"ok": True})
        self.trace_store = trace_store
        self._httpd: _ObsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running server (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread; idempotent.  Returns self."""
        if self._httpd is not None:
            return self
        httpd = _ObsHTTPServer((self.host, self._requested_port), _Handler)
        httpd.registry = self.registry
        httpd.health_fn = self.health_fn
        httpd.trace_store = self.trace_store
        thread = threading.Thread(
            target=httpd.serve_forever, name="repro-obs-server", daemon=True
        )
        self._httpd = httpd
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the socket; idempotent."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
