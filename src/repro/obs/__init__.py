"""Unified observability for the HE stack: tracing + metrics + serving.

The paper's claims are latency claims; this package is how the repo
accounts for latency — and, since the telemetry refactor, how a
serving process exposes its health.  The pieces:

* :mod:`repro.obs.tracer` — nested spans with a zero-overhead disabled
  default.  The CKKS/CKKS-RNS primitives, the NTT/CRT kernels, the
  channel executors and the inference engines are all instrumented, so
  enabling the tracer turns one encrypted classification into a span
  tree from ``henn.stage.*`` down to individual NTTs.
* :mod:`repro.obs.metrics` — process-global counters/gauges/histograms
  fed by span completions (and usable directly), with labelled series
  and cross-process delta merging (``to_delta``/``merge_delta``) used
  by the :mod:`repro.parallel` executors to ship worker telemetry home.
* :mod:`repro.obs.health` — ciphertext-health gauges (scale, level,
  modulus-chain depth, noise margin) sampled at every ``henn`` layer
  boundary, plus the decrypt-side precision probe.
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSON and
  Chrome-trace serialisation, plus the per-primitive pretty-printer the
  benchmark harness writes next to each table.
* :mod:`repro.obs.prometheus` / :mod:`repro.obs.server` /
  :mod:`repro.obs.logs` — the scrape surface: text-exposition
  rendering, opt-in ``/metrics`` + ``/healthz`` + ``/debug/traces``
  endpoints, and structured JSON request-lifecycle logs.
* :mod:`repro.obs.rtrace` — request-scoped distributed tracing across
  the serving path: per-request trace contexts minted at gateway
  admission, stage spans (queue wait, pack, compute, split, failover),
  cross-process worker span shipping, head+tail sampling and the
  slowest-N trace store behind ``/debug/traces``.

Quick use::

    from repro import obs

    with obs.tracing() as tracer:
        engine.classify(images)
    print(obs.render_report(tracer))

See ``docs/OBSERVABILITY.md`` for the full worked example.
"""

from repro.obs.tracer import (
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    set_tracer,
    span,
    traced,
    tracing,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    set_registry,
)
from repro.obs.health import ciphertext_health, observe_layer, precision_probe
from repro.obs.export import (
    TraceDump,
    dump_chrome_trace,
    dump_json,
    load_json,
    to_chrome_trace,
    trace_to_json,
)
from repro.obs.report import aggregate_spans, layer_rows, render_report, stage_rows
from repro.obs.prometheus import render_prometheus
from repro.obs.logs import JsonLogger, capture_logs, get_logger
from repro.obs.server import ObservabilityServer
from repro.obs.rtrace import (
    RequestTrace,
    RequestTracer,
    SamplingPolicy,
    TraceContext,
    TraceStore,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "span",
    "traced",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "metric_key",
    "ciphertext_health",
    "observe_layer",
    "precision_probe",
    "TraceDump",
    "to_chrome_trace",
    "trace_to_json",
    "dump_json",
    "load_json",
    "dump_chrome_trace",
    "aggregate_spans",
    "layer_rows",
    "render_report",
    "stage_rows",
    "render_prometheus",
    "JsonLogger",
    "get_logger",
    "capture_logs",
    "ObservabilityServer",
    "RequestTrace",
    "RequestTracer",
    "SamplingPolicy",
    "TraceContext",
    "TraceStore",
]
