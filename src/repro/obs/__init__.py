"""Unified observability for the HE stack: tracing + metrics.

The paper's claims are latency claims; this package is how the repo
accounts for latency.  Three pieces:

* :mod:`repro.obs.tracer` — nested spans with a zero-overhead disabled
  default.  The CKKS/CKKS-RNS primitives, the NTT/CRT kernels, the
  channel executors and the inference engines are all instrumented, so
  enabling the tracer turns one encrypted classification into a span
  tree from ``henn.stage.*`` down to individual NTTs.
* :mod:`repro.obs.metrics` — process-global counters/histograms fed by
  span completions (and usable directly).
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSON and
  Chrome-trace serialisation, plus the per-primitive pretty-printer the
  benchmark harness writes next to each table.

Quick use::

    from repro import obs

    with obs.tracing() as tracer:
        engine.classify(images)
    print(obs.render_report(tracer))

See ``docs/OBSERVABILITY.md`` for the full worked example.
"""

from repro.obs.tracer import (
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    set_tracer,
    span,
    traced,
    tracing,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, get_registry
from repro.obs.export import (
    TraceDump,
    dump_chrome_trace,
    dump_json,
    load_json,
    to_chrome_trace,
    trace_to_json,
)
from repro.obs.report import aggregate_spans, layer_rows, render_report

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "enabled",
    "span",
    "traced",
    "tracing",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "TraceDump",
    "to_chrome_trace",
    "trace_to_json",
    "dump_json",
    "load_json",
    "dump_chrome_trace",
    "aggregate_spans",
    "layer_rows",
    "render_report",
]
