"""Structured JSON logging for request lifecycle events.

One record per line (``jsonl``), one event per record:

``{"ts": <unix seconds>, "event": "henn.request.ok", "pid": 1234,
"seconds": 0.81, ...}``

The logger is a no-op until a sink is configured — the serving default
stays silent, matching the tracer's zero-overhead philosophy.  Point it
at a stream (or a path) with :meth:`JsonLogger.configure`, or scoped,
with the :func:`capture_logs` context manager used by tests.

Records deliberately carry only operational fields (durations, batch
shapes, sanitised error codes).  Nothing derived from ciphertext *data*
(slot values, exact scales) is ever logged on the cloud side — the same
fixed-vocabulary rule :class:`repro.henn.protocol.ServiceError` follows.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, IO

__all__ = ["JsonLogger", "get_logger", "capture_logs"]


class JsonLogger:
    """Line-oriented JSON event writer (thread-safe, no-op by default)."""

    def __init__(self) -> None:
        self._sink: IO[str] | None = None
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._sink is not None

    def configure(self, sink: "IO[str] | str | Path | None") -> None:
        """Attach a sink (stream or file path); ``None`` disables logging."""
        if isinstance(sink, (str, Path)):
            sink = open(sink, "a", encoding="utf-8")
        with self._lock:
            self._sink = sink

    def event(self, name: str, **fields: Any) -> dict[str, Any] | None:
        """Emit one event record; returns it (or ``None`` when disabled).

        Non-JSON-serialisable field values are stringified rather than
        raised on — a telemetry write must never take down the request
        it is describing.
        """
        sink = self._sink
        if sink is None:
            return None
        record: dict[str, Any] = {"ts": time.time(), "event": name, "pid": os.getpid()}
        for k, v in fields.items():
            record[k] = v if _jsonable(v) else str(v)
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._sink is None:  # disabled concurrently
                return None
            self._sink.write(line + "\n")
            self._sink.flush()
        return record


def _jsonable(v: Any) -> bool:
    return isinstance(v, (str, int, float, bool, type(None), list, tuple, dict))


_LOGGER = JsonLogger()


def get_logger() -> JsonLogger:
    """The process-global request-lifecycle logger."""
    return _LOGGER


class capture_logs:
    """Scoped capture: ``with capture_logs() as buf: ...`` then read lines.

    Restores the previous sink on exit; the buffer's
    :meth:`records` parses every captured line back into dicts.
    """

    def __init__(self) -> None:
        self.buffer = io.StringIO()
        self._prev: IO[str] | None = None

    def __enter__(self) -> "capture_logs":
        self._prev = _LOGGER._sink
        _LOGGER.configure(self.buffer)
        return self

    def __exit__(self, *exc: object) -> None:
        _LOGGER.configure(self._prev)

    def records(self) -> list[dict[str, Any]]:
        """All captured events, parsed."""
        return [
            json.loads(line)
            for line in self.buffer.getvalue().splitlines()
            if line.strip()
        ]
