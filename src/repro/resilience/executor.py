"""Hardened executor: retries, timeouts, pool recreation, degradation.

:class:`ResilientExecutor` keeps the plain :class:`repro.parallel.Executor`
``map`` contract but survives the failures the raw pools surface:

* a raising work item → bounded retry with exponential backoff + jitter;
* a killed process worker (``BrokenProcessPool``) → pool recreated,
  item retried;
* an item exceeding the per-item timeout → future cancelled, pool reset,
  item retried;
* a stage whose retry budget is spent → degradation chain
  (e.g. process → thread → serial);
* full chain exhausted → typed
  :class:`~repro.resilience.errors.ExecutorExhaustedError`, or ``None``
  placeholders when the policy opts into erasure semantics (the shape
  RRNS channel recovery consumes).

Every event bumps a ``resilience.*`` counter in the process-global
:mod:`repro.obs` registry — these fire on faults only, so they are
always-on rather than tracer-gated.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import BrokenExecutor, CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Sequence

from repro.obs.metrics import get_registry
from repro.parallel.executor import Executor, _PoolExecutor, make_executor
from repro.resilience.errors import ExecutorExhaustedError, ItemTimeoutError
from repro.resilience.policy import ResiliencePolicy

__all__ = ["ResilientExecutor"]


class _Failure:
    """Sentinel wrapping the exception an item failed with this attempt."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


class ResilientExecutor(Executor):
    """Policy-driven wrapper around the plain executors.

    Parameters
    ----------
    primary:
        Kind of the stage-0 executor (``"serial" | "thread" | "process"``).
    workers:
        Worker count for pool-backed stages (``None`` → backend default).
    policy:
        The :class:`~repro.resilience.ResiliencePolicy`; defaults to the
        dataclass defaults.
    injector:
        Optional :class:`~repro.resilience.FaultInjector` whose
        ``wrap_worker`` hook sees every (item, attempt) dispatch.
    """

    name = "resilient"

    def __init__(
        self,
        primary: str = "thread",
        workers: int | None = None,
        policy: ResiliencePolicy | None = None,
        injector: "Any | None" = None,
    ):
        self.policy = policy or ResiliencePolicy()
        self.injector = injector
        chain: list[str] = []
        for kind in (primary, *self.policy.degrade):
            if kind not in chain:
                chain.append(kind)
        self.chain = tuple(chain)
        self.workers = workers
        self._rng = random.Random(self.policy.seed)
        self._stages: dict[str, Executor] = {}

    def _stage(self, kind: str) -> Executor:
        ex = self._stages.get(kind)
        if ex is None:
            ex = self._stages[kind] = make_executor(kind, self.workers)
        return ex

    # -- dispatch ----------------------------------------------------------

    def _run_once(
        self,
        ex: Executor,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        pending: list[int],
        results: list[Any],
        attempt: int,
    ) -> list[int]:
        """One attempt over the still-pending items; returns the survivors."""
        calls = []
        for idx in pending:
            call = fn
            if self.injector is not None:
                call = self.injector.wrap_worker(fn, idx, attempt)
            calls.append((idx, call))

        attempts: dict[int, Any] = {}
        if isinstance(ex, _PoolExecutor):
            timeout = self.policy.item_timeout
            futures = []
            try:
                futures = [(idx, ex.submit(call, items[idx])) for idx, call in calls]
            except BrokenExecutor as e:
                for idx, _ in calls:
                    attempts.setdefault(idx, _Failure(e))
                self._reset_pool(ex)
            broken = False
            for idx, fut in futures:
                try:
                    attempts[idx] = fut.result(timeout=timeout)
                except FutureTimeoutError:
                    fut.cancel()
                    attempts[idx] = _Failure(
                        ItemTimeoutError(f"item {idx} exceeded {timeout}s")
                    )
                    get_registry().counter("resilience.timeouts").inc()
                    broken = True  # stuck worker: pool must go
                except BrokenExecutor as e:
                    attempts[idx] = _Failure(e)
                    broken = True
                except CancelledError as e:
                    attempts[idx] = _Failure(e)
                except BaseException as e:
                    attempts[idx] = _Failure(e)
            if broken:
                self._reset_pool(ex)
        else:
            for idx, call in calls:
                try:
                    attempts[idx] = call(items[idx])
                except BaseException as e:
                    attempts[idx] = _Failure(e)

        still_failed: list[int] = []
        for idx in pending:
            out = attempts[idx]
            if isinstance(out, _Failure):
                still_failed.append(idx)
                results[idx] = out
            else:
                results[idx] = out
        return still_failed

    def _reset_pool(self, ex: Executor) -> None:
        if self.policy.recreate_broken_pool and isinstance(ex, _PoolExecutor):
            ex.reset()
            get_registry().counter("resilience.pool_recreations").inc()

    def _map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        reg = get_registry()
        results: list[Any] = [None] * len(items)
        pending = list(range(len(items)))
        attempt = 0  # global attempt counter fed to the injector
        last_error: BaseException | None = None

        for stage_no, kind in enumerate(self.chain):
            ex = self._stage(kind)
            if stage_no > 0:
                reg.counter("resilience.degradations").inc()
            stage_attempt = 0
            while pending:
                attempt += 1
                pending = self._run_once(ex, fn, items, pending, results, attempt)
                if not pending:
                    break
                reg.counter("resilience.faults_detected").inc(len(pending))
                last = results[pending[-1]]
                if isinstance(last, _Failure):
                    last_error = last.error
                if stage_attempt >= self.policy.max_retries:
                    break  # stage budget spent → degrade
                stage_attempt += 1
                reg.counter("resilience.retries").inc(len(pending))
                time.sleep(self.policy.backoff_delay(stage_attempt, self._rng))
            if not pending:
                break

        if pending:
            if self.policy.on_exhausted == "none":
                for idx in pending:
                    results[idx] = None
                return results
            raise ExecutorExhaustedError(
                f"{len(pending)} item(s) failed after exhausting "
                f"{'->'.join(self.chain)}",
                failed_items=tuple(pending),
                last_error=last_error,
            )
        return results

    def close(self) -> None:
        stages, self._stages = self._stages, {}
        for ex in stages.values():
            ex.close()
