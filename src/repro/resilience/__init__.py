"""Fault tolerance for parallel RNS inference.

Three cooperating pieces (see ``docs/RESILIENCE.md``):

* :class:`RedundantBasis` — RRNS channel recovery: ``r`` redundant
  moduli detect and correct a corrupted or dropped residue channel.
* :class:`ResilientExecutor` + :class:`ResiliencePolicy` — hardened
  dispatch: per-item timeouts, bounded retry with backoff, pool
  recreation on breakage, and a process → thread → serial degradation
  chain.
* :class:`FaultInjector` — seeded, deterministic fault source threaded
  through the stack's hooks so recovery can be proven end-to-end.
"""

from repro.resilience.errors import (
    ChannelIntegrityError,
    ExecutorExhaustedError,
    ItemTimeoutError,
    ProtocolError,
    ResilienceError,
)
from repro.resilience.executor import ResilientExecutor
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.rrns import RedundantBasis

__all__ = [
    "ResilienceError",
    "ChannelIntegrityError",
    "ItemTimeoutError",
    "ExecutorExhaustedError",
    "ProtocolError",
    "ResilientExecutor",
    "ResiliencePolicy",
    "FaultInjector",
    "InjectedFault",
    "RedundantBasis",
]
