"""Deterministic fault injection for the resilience test harness.

A :class:`FaultInjector` is *armed* with a finite number of faults
(``times`` counts) and then threaded through the hooks the inference
stack exposes:

* ``apply_channel_faults`` — corrupt one residue channel (or drop it to
  ``None``) after the parallel per-channel map, exercising RRNS
  detection/recovery in :class:`repro.resilience.RedundantBasis`.
* ``wrap_worker`` — wrap the per-item callable dispatched by
  :class:`repro.resilience.ResilientExecutor` so a chosen item raises,
  sleeps, or SIGKILLs its process worker.  The fault count is consumed
  at *wrap* time, in the parent, so a retry of the same item runs clean
  — which is exactly what makes recovery observable.
* ``next_scale`` / ``apply_ciphertext_faults`` — perturb a ciphertext's
  tracked scale or flip residue limbs inside backend ``encrypt`` /
  ``rescale``, exercising the bookkeeping checks and the protocol
  layer's structured error path.

Everything is seeded; two injectors built with the same seed and armed
the same way produce bitwise-identical corruption.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs.metrics import get_registry

__all__ = ["InjectedFault", "FaultInjector"]


class InjectedFault(RuntimeError):
    """Raised by a worker that was deliberately failed by the harness."""


class _RaisingCall:
    """Picklable wrapper that raises :class:`InjectedFault` instead of running."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        raise InjectedFault("injected worker exception")


class _KillCall:
    """Picklable wrapper that SIGKILLs its own process before running.

    In a thread pool (same PID as the parent) this degenerates to an
    :class:`InjectedFault` so the harness never kills the test process.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        if os.getpid() != _KillCall.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedFault("injected worker kill (thread/serial fallback)")


_KillCall.parent_pid = os.getpid()


class _DelayCall:
    """Picklable wrapper that sleeps before running (for timeout tests)."""

    __slots__ = ("fn", "seconds")

    def __init__(self, fn: Callable[[Any], Any], seconds: float):
        self.fn = fn
        self.seconds = seconds

    def __call__(self, item: Any) -> Any:
        time.sleep(self.seconds)
        return self.fn(item)


class FaultInjector:
    """Seeded, finite fault source threaded through the stack's hooks.

    Each ``arm*`` call schedules a fault to fire ``times`` times; hooks
    consume the budget as they fire and log every event into
    :attr:`events` (``(hook, detail)`` tuples) for assertions.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.events: list[tuple[str, Any]] = []
        self._channel_faults: list[dict] = []
        self._worker_faults: list[dict] = []
        self._scale_faults: list[dict] = []
        self._ct_faults: list[dict] = []
        self._cluster_faults: list[dict] = []

    # -- arming ------------------------------------------------------------

    def corrupt_channel(
        self, channel: int | None = None, times: int = 1, drop: bool = False
    ) -> "FaultInjector":
        """Corrupt (or, with ``drop=True``, erase) one residue channel.

        ``channel=None`` picks a seeded-random channel each firing.
        """
        self._channel_faults.append({"channel": channel, "times": times, "drop": drop})
        return self

    def fail_worker(
        self,
        item: int,
        mode: str = "exception",
        times: int = 1,
        delay: float = 0.5,
    ) -> "FaultInjector":
        """Fail work item *item* on its next ``times`` dispatches.

        ``mode`` is ``"exception"`` (raise :class:`InjectedFault`),
        ``"kill"`` (SIGKILL the process worker → ``BrokenProcessPool``),
        or ``"delay"`` (sleep ``delay`` seconds → per-item timeout).
        """
        if mode not in ("exception", "kill", "delay"):
            raise ValueError(f"unknown worker fault mode {mode!r}")
        self._worker_faults.append(
            {"item": item, "mode": mode, "times": times, "delay": delay}
        )
        return self

    def perturb_scale(self, factor: float = 1.5, times: int = 1) -> "FaultInjector":
        """Mis-track the next ``times`` ciphertext scales by ``factor``."""
        self._scale_faults.append({"factor": factor, "times": times})
        return self

    def corrupt_ciphertext(self, channel: int = 0, times: int = 1) -> "FaultInjector":
        """Flip limbs in residue channel *channel* of the next ciphertexts."""
        self._ct_faults.append({"channel": channel, "times": times})
        return self

    def kill_cluster_worker(
        self, worker: int | None = None, on_batch: int = 1, times: int = 1
    ) -> "FaultInjector":
        """SIGKILL cluster worker *worker* as it starts its ``on_batch``-th batch.

        ``worker=None`` matches any worker (the first one spawned claims
        the kill).  Following the :meth:`wrap_worker` idiom, the budget
        is consumed **parent-side** — the pool calls
        :meth:`take_cluster_kills` at spawn time and ships the child an
        explicit batch-number schedule — so a *respawned* worker comes
        back clean instead of re-inheriting the armed fault and dying
        forever.  ``times=2`` therefore means: the first spawn dies at
        ``on_batch``, its respawn dies once more, the next respawn runs
        clean.
        """
        self._cluster_faults.append(
            {"worker": worker, "on_batch": int(on_batch), "times": int(times)}
        )
        return self

    # -- hooks -------------------------------------------------------------

    def _fire(self, hook: str, detail: Any) -> None:
        self.events.append((hook, detail))
        get_registry().counter("resilience.faults_injected").inc()

    def apply_channel_faults(
        self, outs: list, moduli: Sequence[int]
    ) -> list:
        """Post-map hook: corrupt/erase armed channels in a residue stack.

        Returns a new list (never mutates in place); corrupted channels
        get a seeded non-zero additive offset mod their modulus, dropped
        channels become ``None``.
        """
        if not self._channel_faults:
            return outs
        outs = list(outs)
        for fault in self._channel_faults:
            if fault["times"] <= 0:
                continue
            fault["times"] -= 1
            ch = fault["channel"]
            if ch is None:
                ch = int(self.rng.integers(0, len(outs)))
            if fault["drop"]:
                outs[ch] = None
                self._fire("channel.drop", ch)
                continue
            m = int(moduli[ch])
            # Moduli may exceed 64 bits (multiprecision channels), so draw
            # a word-sized seed and fold it into [1, m-1].
            offset = 1 + int(self.rng.integers(0, 2**62)) % (m - 1)
            outs[ch] = (np.asarray(outs[ch]) + offset) % m
            self._fire("channel.corrupt", (ch, offset))
        return outs

    def wrap_worker(
        self, fn: Callable[[Any], Any], item_index: int, attempt: int
    ) -> Callable[[Any], Any]:
        """Dispatch hook: maybe replace ``fn`` for one (item, attempt).

        The fault budget is consumed here, parent-side, so the wrapper
        itself stays trivially picklable and retries run clean.
        """
        for fault in self._worker_faults:
            if fault["times"] <= 0 or fault["item"] != item_index:
                continue
            fault["times"] -= 1
            self._fire(f"worker.{fault['mode']}", (item_index, attempt))
            if fault["mode"] == "exception":
                return _RaisingCall(fn)
            if fault["mode"] == "kill":
                return _KillCall(fn)
            return _DelayCall(fn, fault["delay"])
        return fn

    def next_scale(self, scale: float) -> float:
        """Backend hook: perturb a freshly tracked ciphertext scale."""
        for fault in self._scale_faults:
            if fault["times"] <= 0:
                continue
            fault["times"] -= 1
            self._fire("scale.perturb", fault["factor"])
            return scale * fault["factor"]
        return scale

    def take_cluster_kills(self, worker: int) -> list[int]:
        """Spawn hook: consume armed kills for *worker*; returns batch numbers.

        Called parent-side by the worker pool each time it (re)spawns
        worker *worker*; every matching armed fault contributes one
        count to the returned schedule.  The child then SIGKILLs itself
        at the start of each scheduled batch (1-based, per process) —
        deterministically, with nothing left armed in the child.
        """
        schedule: list[int] = []
        for fault in self._cluster_faults:
            if fault["times"] <= 0:
                continue
            if fault["worker"] is not None and fault["worker"] != worker:
                continue
            fault["times"] -= 1
            self._fire("cluster.kill", (worker, fault["on_batch"]))
            schedule.append(fault["on_batch"])
        return schedule

    def apply_ciphertext_faults(self, ct: Any) -> Any:
        """Backend hook: corrupt one residue limb stack of a ciphertext."""
        for fault in self._ct_faults:
            if fault["times"] <= 0:
                continue
            fault["times"] -= 1
            ch = fault["channel"]
            ct.c0[ch] = np.bitwise_xor(ct.c0[ch], np.int64(1))
            self._fire("ciphertext.corrupt", ch)
        return ct

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Count of fired faults per hook name."""
        out: dict[str, int] = {}
        for hook, _ in self.events:
            out[hook] = out.get(hook, 0) + 1
        return out
