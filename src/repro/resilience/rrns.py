"""Redundant Residue Number System (RRNS) channel recovery.

The paper's parallelism source — independent residue channels combined
by CRT — is also a classic fault-tolerance substrate.  Extend a data
basis of ``k`` moduli (product ``Q_d``, the *legitimate range*) with
``r`` redundant moduli, each **larger than every data modulus**, and
every value ``|x| < Q_d/2`` becomes recoverable from any ``k`` of the
``k + r`` channels:

* **Detection.**  Compose all ``k + r`` residues over the full basis
  (product ``Q_f = Q_d · Q_r``).  An uncorrupted stack lands back inside
  the legitimate range; a corrupted channel throws the composition into
  the *illegitimate* region ``[Q_d/2, Q_f/2)`` with probability
  ``1 - Q_d/Q_f`` (≈ ``1 - 2^-52`` for two 26-bit redundant moduli).
* **Localisation & correction (projection test).**  Re-compose with one
  channel excluded at a time.  Excluding the corrupted channel restores
  a legitimate value (the remaining product still exceeds ``Q_d``
  because every redundant modulus dominates every data modulus);
  excluding a healthy channel leaves the corruption in place, so the
  projection stays illegitimate with overwhelming probability.  A unique
  legitimate projection identifies the faulty channel *and* is the
  corrected value.
* **Erasures.**  A dropped channel (a crashed worker) is the easy case:
  compose over the survivors directly — no search needed.

Fault budget: an erasure consumes **one** redundant modulus (its
position is known, so composing over the survivors is enough), while
correcting a corruption consumes **two** (one to detect, one of margin
so that excluding a *healthy* channel stays illegitimate instead of
producing an ambiguous second candidate).  ``r`` redundant moduli thus
tolerate ``e`` erasures plus ``c`` corruptions with ``e + 2c <= r``
(``c <= 1`` per recovery under the single-exclusion search); beyond
that :class:`~repro.resilience.errors.ChannelIntegrityError` is raised
rather than returning silently wrong values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nt.crt import CrtBasis
from repro.nt.primes import gen_primes
from repro.obs.metrics import get_registry
from repro.resilience.errors import ChannelIntegrityError

__all__ = ["RedundantBasis"]


class RedundantBasis:
    """A CRT basis split into ``k`` data moduli and ``r`` redundant moduli.

    Parameters
    ----------
    data_moduli:
        The working moduli; their product ``Q_d`` is the legitimate
        range — every protected value must satisfy ``|x| < Q_d/2``.
    redundant_moduli:
        Extra moduli, pairwise co-prime with everything and each at
        least as large as the largest data modulus (this is what makes
        any single exclusion still cover the legitimate range).
    """

    def __init__(self, data_moduli: Sequence[int], redundant_moduli: Sequence[int]):
        data_moduli = [int(m) for m in data_moduli]
        redundant_moduli = [int(m) for m in redundant_moduli]
        if not redundant_moduli:
            raise ValueError("need at least one redundant modulus")
        max_data = max(data_moduli)
        for m in redundant_moduli:
            if m < max_data:
                raise ValueError(
                    f"redundant modulus {m} is smaller than data modulus {max_data}; "
                    "exclusion projections would not cover the legitimate range"
                )
        self.data = CrtBasis(data_moduli)
        self.full = CrtBasis(data_moduli + redundant_moduli)
        self.k_data = len(data_moduli)
        self.r = len(redundant_moduli)
        # Legitimate signed range: exactly what compose_centered over the
        # data basis can produce, [-(Q_d - Q_d//2), Q_d//2).
        self._hi = self.data.modulus // 2
        self._lo = -(self.data.modulus - self._hi)
        #: Sub-basis cache keyed by the included channel indices.
        self._sub: dict[tuple[int, ...], CrtBasis] = {}

    @classmethod
    def extend(cls, base: CrtBasis, r: int) -> "RedundantBasis":
        """Grow *base* with *r* fresh redundant primes.

        Each redundant prime is one bit wider than the widest data
        modulus, guaranteeing dominance and co-primality (all moduli are
        prime and pairwise distinct).
        """
        if r < 1:
            raise ValueError("redundancy must be >= 1")
        bits = max(m.bit_length() for m in base.moduli) + 1
        extra = gen_primes([bits] * r, exclude=set(base.moduli))
        return cls(base.moduli, extra)

    @property
    def k(self) -> int:
        """Total channel count ``k + r``."""
        return self.full.k

    @property
    def moduli(self) -> list[int]:
        """All moduli, data first then redundant."""
        return self.full.moduli

    def decompose(self, x: np.ndarray | int) -> list[np.ndarray]:
        """Residues of *x* over the full (data + redundant) basis."""
        return self.full.decompose(x)

    # -- recovery ----------------------------------------------------------

    def _legitimate(self, v: np.ndarray) -> bool:
        return bool(np.all(v >= self._lo) and np.all(v < self._hi))

    def _compose_subset(self, idx: tuple[int, ...], channels: Sequence[np.ndarray]) -> np.ndarray:
        basis = self._sub.get(idx)
        if basis is None:
            basis = self._sub[idx] = CrtBasis([self.full.moduli[i] for i in idx])
        return basis.compose_centered([np.asarray(channels[i]) for i in idx])

    def check(self, channels: Sequence[np.ndarray]) -> bool:
        """Consistency test only: does the full stack compose legitimately?"""
        if len(channels) != self.k:
            raise ValueError(f"expected {self.k} channels, got {len(channels)}")
        return self._legitimate(self.full.compose_centered(list(channels)))

    def recover(
        self, channels: Sequence["np.ndarray | None"]
    ) -> tuple[np.ndarray, list[int]]:
        """Reconstruct the protected value, surviving one fault per call.

        Parameters
        ----------
        channels:
            ``k + r`` residue arrays in basis order.  ``None`` marks an
            *erasure* — a channel whose worker crashed or was dropped.

        Returns
        -------
        ``(value, faults)`` where ``value`` is the signed CRT
        recomposition (same array shape as the channels) and ``faults``
        lists the erased/corrected channel indices (empty on the clean
        path).

        Raises
        ------
        ChannelIntegrityError
            When more channels failed than the redundancy can absorb, or
            the projection test cannot localise the corruption.
        """
        if len(channels) != self.k:
            raise ValueError(f"expected {self.k} channels, got {len(channels)}")
        erased = tuple(i for i, c in enumerate(channels) if c is None)
        if len(erased) > self.r:
            raise ChannelIntegrityError(
                f"{len(erased)} channels dropped but only {self.r} redundant moduli",
                suspects=erased,
            )
        survivors = tuple(i for i in range(self.k) if i not in erased)
        v = self._compose_subset(survivors, channels)
        if self._legitimate(v):
            if erased:
                self._record(erased, recovered=True)
            return v, list(erased)
        # Illegitimate: some surviving channel is corrupted.  Correcting it
        # needs two redundant moduli of slack beyond the erasures — one for
        # the exclusion itself and one of margin so projections that keep
        # the corrupted channel remain illegitimate (unambiguous search).
        if len(erased) + 2 > self.r:
            self._record(erased + (-1,), recovered=False)
            raise ChannelIntegrityError(
                "corrupted channel detected but redundancy is exhausted "
                f"({len(erased)} erasures, r={self.r}; correction needs "
                "erasures + 2 <= r)",
                suspects=erased,
            )
        candidates: list[tuple[int, np.ndarray]] = []
        for j in survivors:
            sub = tuple(i for i in survivors if i != j)
            vj = self._compose_subset(sub, channels)
            if self._legitimate(vj):
                candidates.append((j, vj))
        if len(candidates) == 1:
            j, vj = candidates[0]
            faults = tuple(sorted(erased + (j,)))
            self._record(faults, recovered=True)
            return vj, list(faults)
        self._record(erased + (-1,), recovered=False)
        raise ChannelIntegrityError(
            "projection test found "
            + ("no" if not candidates else f"{len(candidates)} ambiguous")
            + " legitimate reconstruction (more than one corrupted channel?)",
            suspects=tuple(j for j, _ in candidates),
        )

    def _record(self, faults: tuple[int, ...], recovered: bool) -> None:
        reg = get_registry()
        reg.counter("resilience.faults_detected").inc(len(faults))
        if recovered:
            reg.counter("resilience.channel_recoveries").inc(len(faults))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RedundantBasis(k={self.k_data}, r={self.r}, "
            f"log2(Qd)~{self.data.modulus.bit_length()})"
        )
