"""Typed failures of the fault-tolerant inference stack.

Every recoverable condition gets its own exception class so callers —
the protocol layer above all — can classify failures without parsing
messages (and without leaking payload data into error strings).
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "ChannelIntegrityError",
    "ItemTimeoutError",
    "ExecutorExhaustedError",
    "ProtocolError",
]


class ResilienceError(RuntimeError):
    """Base class of all resilience-subsystem failures."""


class ChannelIntegrityError(ResilienceError):
    """Residue channels fail the RRNS consistency check and cannot be
    reconstructed from the surviving channels.

    Parameters
    ----------
    message:
        Human-readable diagnosis (channel indices only — never data).
    suspects:
        Channel indices implicated by the projection test (empty when the
        corruption could not be localised at all).
    """

    def __init__(self, message: str, suspects: tuple[int, ...] = ()):
        super().__init__(message)
        self.suspects = tuple(suspects)


class ItemTimeoutError(ResilienceError):
    """One work item exceeded the policy's per-item timeout."""


class ExecutorExhaustedError(ResilienceError):
    """Every retry and every fallback executor failed for some items.

    Parameters
    ----------
    message:
        Summary of the exhausted chain.
    failed_items:
        Indices (into the original ``map`` item list) still failing.
    last_error:
        The most recent underlying exception, for diagnosis.
    """

    def __init__(
        self,
        message: str,
        failed_items: tuple[int, ...] = (),
        last_error: BaseException | None = None,
    ):
        super().__init__(message)
        self.failed_items = tuple(failed_items)
        self.last_error = last_error


class ProtocolError(ResilienceError):
    """A cloud classification request failed after client-side retries.

    Carries the cloud's *structured* (sanitised) error — see
    :class:`repro.henn.protocol.ServiceError` — never the raw exception.
    """

    def __init__(self, error: object, attempts: int):
        super().__init__(f"classification failed after {attempts} attempt(s): {error}")
        self.error = error
        self.attempts = attempts
