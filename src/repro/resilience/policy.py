"""Declarative knobs for the hardened executor.

All retry/timeout/degradation behaviour of
:class:`repro.resilience.ResilientExecutor` is driven by one frozen
dataclass so experiments (and the fault-injection suite) can state their
tolerance exactly and reproducibly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["ResiliencePolicy"]

_VALID_STAGES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to try before giving up, and where to fall back to.

    Attributes
    ----------
    max_retries:
        Retry budget *per degradation stage*: after the initial attempt,
        up to ``max_retries`` more attempts run on the same executor
        before the chain degrades to the next stage.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff between attempts: attempt ``a`` sleeps
        ``min(backoff_max, backoff_base * backoff_factor**(a-1))``
        seconds (before jitter).
    jitter:
        Relative jitter amplitude in ``[0, 1]``; the delay is scaled by
        a seeded ``1 + uniform(-jitter, +jitter)``, deterministic under
        ``seed``.
    item_timeout:
        Per-item wall-clock budget in seconds (``None`` disables).  A
        timed-out item counts as failed and, on a process pool, forces a
        pool reset so the stuck worker cannot wedge later maps.
    degrade:
        Fallback executor kinds tried, in order, once a stage's retry
        budget is spent.  The primary executor is stage 0.
    recreate_broken_pool:
        Discard and lazily recreate a pool that reports itself broken
        (killed worker) instead of failing the whole stage immediately.
    on_exhausted:
        ``"raise"`` (default) raises
        :class:`~repro.resilience.errors.ExecutorExhaustedError` when the
        full chain fails; ``"none"`` returns ``None`` for the failed
        items instead — the shape RRNS erasure recovery consumes.
    seed:
        Seed for the jitter RNG (keeps fault-injection runs bitwise
        reproducible).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    item_timeout: float | None = None
    degrade: tuple[str, ...] = ("thread", "serial")
    recreate_broken_pool: bool = True
    on_exhausted: str = "raise"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.item_timeout is not None and self.item_timeout <= 0:
            raise ValueError("item_timeout must be positive (or None)")
        for kind in self.degrade:
            if kind not in _VALID_STAGES:
                raise ValueError(f"unknown degrade stage {kind!r} {_VALID_STAGES}")
        if self.on_exhausted not in ("raise", "none"):
            raise ValueError("on_exhausted must be 'raise' or 'none'")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry *attempt* (1-based), jittered deterministically."""
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))
        return base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))
