"""Number-theory substrate.

Everything the CKKS / CKKS-RNS schemes need and nothing more:

* :mod:`repro.nt.modarith` — vectorised modular arithmetic on ``int64``
  arrays, with a direct path for moduli below 2**31 and a float-Barrett
  path for moduli up to 2**50 (the paper's SEAL tool caps primes at 60
  bits; we cap at 50 — see DESIGN.md §5.2).
* :mod:`repro.nt.primes` — Miller-Rabin primality and generation of
  NTT-friendly primes ``p ≡ 1 (mod 2N)`` (the "co-prime generation tool"
  of §VI.A).
* :mod:`repro.nt.ntt` — iterative negacyclic Number Theoretic Transform.
* :mod:`repro.nt.crt` — Chinese Remainder Theorem compose/decompose.
* :mod:`repro.nt.polynomial` — multiprecision negacyclic polynomial ring
  used by the non-RNS CKKS baseline (Kronecker-substitution multiply).
"""

from repro.nt.modarith import (
    MAX_MODULUS_BITS,
    addmod,
    invmod,
    mulmod,
    negmod,
    powmod,
    submod,
)
from repro.nt.primes import gen_coprime_chain, gen_ntt_primes, gen_primes, is_prime, next_prime, prev_prime
from repro.nt.ntt import NttPlan
from repro.nt.crt import CrtBasis
from repro.nt.polynomial import PolyRing

__all__ = [
    "MAX_MODULUS_BITS",
    "addmod",
    "submod",
    "mulmod",
    "negmod",
    "powmod",
    "invmod",
    "is_prime",
    "next_prime",
    "prev_prime",
    "gen_ntt_primes",
    "gen_primes",
    "gen_coprime_chain",
    "NttPlan",
    "CrtBasis",
    "PolyRing",
]
