"""Vectorised modular arithmetic over ``int64`` arrays.

Two multiplication paths are provided:

* **narrow** (modulus < 2**31): ``(a * b) % m`` directly in ``int64`` —
  products are below 2**62 so they never overflow.
* **wide** (modulus < 2**50): a float-Barrett reduction.  The quotient
  ``q = floor(a*b/m)`` is estimated in ``float64``; the remainder
  ``a*b - q*m`` is computed in wrap-around ``uint64`` arithmetic (exact
  modulo 2**64) and corrected by at most a few conditional ±m steps.
  With ``m < 2**50`` the quotient estimate is off by at most 2, so the
  correction always lands (see ``tests/nt/test_modarith.py`` for the
  exhaustive randomized check against Python big-int arithmetic).

The wide path costs roughly 4x the narrow path — this *real* cost
difference is what makes "more, smaller RNS moduli" genuinely cheaper
per channel in the moduli-sweep experiments (Tables IV/VI).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_MODULUS_BITS",
    "NARROW_MODULUS_BITS",
    "addmod",
    "submod",
    "negmod",
    "mulmod",
    "powmod",
    "invmod",
    "barrett_ratio",
]

#: Largest supported modulus bit-width (float-Barrett correctness bound).
MAX_MODULUS_BITS = 50
#: Moduli strictly below 2**NARROW_MODULUS_BITS take the direct int64 path.
NARROW_MODULUS_BITS = 31

_U64 = np.uint64
_I64 = np.int64


def _check_modulus(m: int) -> int:
    m = int(m)
    if m < 2:
        raise ValueError(f"modulus must be >= 2, got {m}")
    if m.bit_length() > MAX_MODULUS_BITS:
        raise ValueError(
            f"modulus {m} has {m.bit_length()} bits; vectorised arithmetic "
            f"supports at most {MAX_MODULUS_BITS} bits (use repro.nt.polynomial "
            f"for multiprecision)"
        )
    return m


def addmod(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    """Elementwise ``(a + b) mod m`` for arrays already reduced mod *m*."""
    m = _check_modulus(m)
    s = np.add(a, b, dtype=_I64)
    return np.where(s >= m, s - m, s)


def submod(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    """Elementwise ``(a - b) mod m`` for arrays already reduced mod *m*."""
    m = _check_modulus(m)
    d = np.subtract(a, b, dtype=_I64)
    return np.where(d < 0, d + m, d)


def negmod(a: np.ndarray, m: int) -> np.ndarray:
    """Elementwise ``(-a) mod m`` for an array already reduced mod *m*."""
    m = _check_modulus(m)
    a = np.asarray(a, dtype=_I64)
    return np.where(a == 0, a, m - a)


def mulmod(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    """Elementwise ``(a * b) mod m``.

    Inputs must be reduced to ``[0, m)``.  Dispatches on the modulus
    width; see module docstring.
    """
    m = _check_modulus(m)
    if m.bit_length() < NARROW_MODULUS_BITS:
        return (np.multiply(a, b, dtype=_I64)) % m
    return _mulmod_wide(np.asarray(a, dtype=_I64), np.asarray(b, dtype=_I64), m)


def _mulmod_wide(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    """Float-Barrett ``(a*b) mod m`` for ``m < 2**50``."""
    au = a.astype(_U64)
    bu = b.astype(_U64)
    # Quotient estimate in double precision; error <= 2 for m < 2**50.
    q = np.floor(a.astype(np.float64) * b.astype(np.float64) / m).astype(_U64)
    mu = _U64(m)
    with np.errstate(over="ignore"):
        r = (au * bu - q * mu).astype(_I64)  # exact mod 2**64, reinterpret signed
    # r is the true remainder plus e*m for e in {-2,-1,0,1,2}.
    r = np.where(r < 0, r + m, r)
    r = np.where(r < 0, r + m, r)
    r = np.where(r >= m, r - m, r)
    r = np.where(r >= m, r - m, r)
    return r


def powmod(base: int, exp: int, m: int) -> int:
    """Scalar modular exponentiation (thin wrapper, for symmetry)."""
    if m < 1:
        raise ValueError("modulus must be positive")
    return pow(int(base), int(exp), int(m))


def invmod(a: int, m: int) -> int:
    """Scalar modular inverse; raises ``ValueError`` when gcd(a, m) != 1."""
    a = int(a) % int(m)
    try:
        return pow(a, -1, int(m))
    except ValueError as exc:  # non-invertible
        raise ValueError(f"{a} is not invertible modulo {m}") from exc


def barrett_ratio(m: int) -> float:
    """Precomputed ``1/m`` as float64 (kept for API symmetry / plans)."""
    return 1.0 / float(_check_modulus(m))
