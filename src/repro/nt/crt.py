"""Chinese Remainder Theorem over pairwise co-prime moduli.

This is the mathematical heart of the paper's Fig. 2: a large integer
``x`` is represented by its residues ``(x mod q_1, ..., x mod q_k)``;
addition and multiplication act componentwise; :meth:`CrtBasis.compose`
recovers ``x mod Q`` with ``Q = prod(q_i)``.

Recomposition is **Garner's mixed-radix lifting**, fully vectorised over
NumPy ``int64`` arrays (see ``docs/KERNELS.md`` for the derivation):

1. the mixed-radix digits ``v_i in [0, q_i)`` with
   ``x = v_1 + v_2 q_1 + v_3 q_1 q_2 + ...`` are extracted with
   O(k^2) word-sized modular vector ops — no Python big integers;
2. the leading digits whose positional weights fit ``int64`` fold into
   one exact int64 Horner pass; only the (few) remaining digits touch
   Python-integer arithmetic, one multiply-add per digit, and **no**
   final ``mod Q`` is needed (mixed-radix values are canonical);
3. the signed variant decides ``x >= Q/2`` by comparing digit vectors
   against the precomputed digits of ``Q // 2`` — int64 comparisons,
   never big-int ones.

Bases whose moduli exceed the vectorised-arithmetic bound
(:data:`repro.nt.modarith.MAX_MODULUS_BITS`) fall back to the classical
big-integer formula ``x = sum_i r_i * e_i mod Q``, kept as
:meth:`CrtBasis.compose_bigint` — which is also the oracle the property
tests check the Garner path against.
"""

from __future__ import annotations

import math
from functools import reduce

import numpy as np

from repro.nt.modarith import MAX_MODULUS_BITS, addmod, mulmod, submod
from repro.obs.tracer import traced

__all__ = ["CrtBasis"]

#: Largest bit-width the exact int64 Horner fold of leading digits allows.
_INT64_SAFE_BITS = 62


class _GarnerTables:
    """Per-basis lift constants, built once and cached on the basis.

    ``weights[j] = q_1 * ... * q_j`` (with ``weights[0] = 1``) are the
    mixed-radix positional weights; ``prefix_mod[i][j] = weights[j] mod
    q_i`` and ``inv[i] = weights[i]^{-1} mod q_i`` drive the digit
    recurrence; ``split`` is the number of leading digits whose Horner
    fold provably stays below ``2**62``; ``half_digits`` are the
    mixed-radix digits of ``Q // 2`` used for signed centering.
    """

    __slots__ = (
        "moduli",
        "k",
        "modulus",
        "half",
        "vector_ok",
        "weights",
        "prefix_mod",
        "inv",
        "fused_ok",
        "split",
        "half_digits",
    )

    def __init__(self, moduli: list[int]):
        self.moduli = [int(m) for m in moduli]
        self.k = len(self.moduli)
        self.weights = [1]
        for m in self.moduli[:-1]:
            self.weights.append(self.weights[-1] * m)
        self.modulus = self.weights[-1] * self.moduli[-1]
        self.half = self.modulus // 2
        self.vector_ok = all(m.bit_length() <= MAX_MODULUS_BITS for m in self.moduli)
        if not self.vector_ok:
            return
        self.prefix_mod = [
            np.array([w % q for w in self.weights[: i + 1]], dtype=np.int64)
            for i, q in enumerate(self.moduli)
        ]
        self.inv = [1] + [
            pow(self.weights[i] % q, -1, q)
            for i, q in enumerate(self.moduli)
            if i > 0
        ]
        # fused_ok[i]: the whole Garner step for digit i fits raw int64
        # accumulation with a single trailing %, avoiding per-op where()
        # corrections.  Needs sum_j (q_j-1)(q_i-1) and (2q_i-1)*inv_i to
        # stay below 2**63 — always true for the paper's narrow chains.
        self.fused_ok = [False] + [
            q.bit_length() < 31
            and sum((qj - 1) * (q - 1) for qj in self.moduli[:i]).bit_length()
            <= _INT64_SAFE_BITS
            for i, q in enumerate(self.moduli)
            if i > 0
        ]
        split = 1
        while (
            split < self.k
            and (self.weights[split] * self.moduli[split]).bit_length()
            <= _INT64_SAFE_BITS
        ):
            split += 1
        self.split = split
        self.half_digits = [
            int((self.half // w) % q) for w, q in zip(self.weights, self.moduli)
        ]

    # -- digit extraction --------------------------------------------------

    def digits(self, residues: list[np.ndarray]) -> list[np.ndarray]:
        """Mixed-radix digits ``v_i in [0, q_i)`` of the encoded value.

        Garner's recurrence: ``v_i = (r_i - (v_1 + v_2 q_1 + ... )) *
        (q_1 ... q_{i-1})^{-1} mod q_i`` — every step an ``int64``
        vector op over the whole tensor.  Inputs are reduced mod
        ``q_i`` on entry, so unreduced or ``object``-dtype residues are
        accepted.
        """
        v: list[np.ndarray] = []
        for i, q in enumerate(self.moduli):
            r = np.asarray(residues[i])
            if r.dtype == object:
                r = np.mod(r, q).astype(np.int64)
            else:
                r = np.mod(r.astype(np.int64, copy=False), np.int64(q))
            if i == 0:
                v.append(r)
                continue
            pm = self.prefix_mod[i]
            if self.fused_ok[i]:
                # Raw int64 accumulation; the precomputed bound on
                # sum_j (q_j-1)(q_i-1) guarantees no overflow, so one
                # trailing % replaces per-op reduction entirely.
                acc = v[0].astype(np.int64, copy=True)
                for j in range(1, i):
                    acc += v[j] * np.int64(pm[j])
                t = acc % np.int64(q)
                v.append((r - t + np.int64(q)) * np.int64(self.inv[i]) % np.int64(q))
                continue
            t = np.mod(v[0], np.int64(q))
            for j in range(1, i):
                vj = np.mod(v[j], np.int64(q))
                t = addmod(t, mulmod(vj, np.int64(pm[j]), q), q)
            v.append(mulmod(submod(r, t, q), np.int64(self.inv[i]), q))
        return v

    # -- lifting -----------------------------------------------------------

    def _horner(self, digits: list[np.ndarray]) -> np.ndarray:
        """Exact int64 positional fold of the leading ``split`` digits."""
        acc = digits[-1].astype(np.int64, copy=True)
        for j in range(len(digits) - 2, -1, -1):
            acc *= np.int64(self.moduli[j])
            acc += digits[j]
        return acc

    def lift(self, v: list[np.ndarray], centered: bool) -> np.ndarray:
        """Positional sum of the digits: the exact value (optionally signed).

        The first ``split`` digits fold with an exact ``int64`` Horner
        pass.  For the signed variant the *magnitude* digits (mixed-radix
        complement for values above ``Q//2``) are folded instead, so any
        value with ``|x| < q_1 ... q_split`` — in practice every real
        CNN-RNS tensor, whose entries are tiny compared to ``Q`` — stays
        entirely in int64.  Only elements with nonzero tail digits touch
        Python-integer arithmetic, one multiply-add per tail digit, and
        no final ``mod Q`` is needed (mixed-radix values are canonical).
        """
        s = self.split
        if not centered:
            acc = self._horner(v[:s])
            if s == self.k:
                return acc
            big = np.zeros(np.asarray(v[0]).shape, dtype=bool)
            for j in range(s, self.k):
                big |= v[j] != 0
            if not big.any():
                return acc
            out = acc.astype(object)
            for j in range(s, self.k):
                out = out + v[j].astype(object) * self.weights[j]
            return out
        if s == self.k:
            acc = self._horner(v)
            return np.where(
                acc >= np.int64(self.half), acc - np.int64(self.modulus), acc
            )
        # low = x mod W_s.  Tail digits all zero  =>  x = low (positive,
        # < W_s <= Q/2).  Tail digits all maximal =>  x = low + Q - W_s
        # (negative), so x - Q = low - W_s — still exact int64.  Every
        # real CNN-RNS tensor (entries tiny vs Q) hits one of these.
        low = self._horner(v[:s])
        w_s = self.weights[s]
        pos_small = np.ones(low.shape, dtype=bool)
        neg_small = np.ones(low.shape, dtype=bool)
        for j in range(s, self.k):
            pos_small &= v[j] == 0
            neg_small &= v[j] == np.int64(self.moduli[j] - 1)
        if (pos_small | neg_small).all():
            return np.where(neg_small, low - np.int64(w_s), low)
        neg = self.ge_half(v)
        out = low.astype(object)
        for j in range(s, self.k):
            out = out + v[j].astype(object) * self.weights[j]
        return np.where(neg, out - self.modulus, out)

    def ge_half(self, v: list[np.ndarray]) -> np.ndarray:
        """``x >= Q//2`` decided digit-wise, most-significant first."""
        gt = np.zeros(np.asarray(v[0]).shape, dtype=bool)
        eq = np.ones_like(gt)
        for j in range(self.k - 1, -1, -1):
            h = np.int64(self.half_digits[j])
            gt |= eq & (v[j] > h)
            eq &= v[j] == h
        return gt | eq


class CrtBasis:
    """Precomputed CRT data for a fixed list of pairwise co-prime moduli."""

    def __init__(self, moduli: list[int]):
        moduli = [int(m) for m in moduli]
        if not moduli:
            raise ValueError("need at least one modulus")
        if any(m < 2 for m in moduli):
            raise ValueError("moduli must be >= 2")
        for i in range(len(moduli)):
            for j in range(i + 1, len(moduli)):
                if math.gcd(moduli[i], moduli[j]) != 1:
                    raise ValueError(
                        f"moduli {moduli[i]} and {moduli[j]} are not co-prime"
                    )
        self.moduli = moduli
        self.k = len(moduli)
        #: Dynamic range Q = prod(q_i).
        self.modulus = reduce(lambda a, b: a * b, moduli, 1)
        #: Q / q_i ("hat" values).
        self.hats = [self.modulus // m for m in moduli]
        #: (Q/q_i)^{-1} mod q_i.
        self.hat_invs = [pow(h, -1, m) for h, m in zip(self.hats, moduli)]
        #: Garner-free reconstruction coefficients e_i = hat_i * hat_inv_i mod Q.
        self.recomb = [h * hi % self.modulus for h, hi in zip(self.hats, self.hat_invs)]
        self._garner: _GarnerTables | None = None

    @property
    def garner(self) -> _GarnerTables:
        """Cached mixed-radix lift tables (built on first recomposition)."""
        if self._garner is None:
            self._garner = _GarnerTables(self.moduli)
        return self._garner

    # -- scalar / array decomposition -------------------------------------

    @traced("nt.crt.decompose")
    def decompose(self, x: np.ndarray | int) -> list[np.ndarray]:
        """Residues of *x* (array of arbitrary Python/NumPy ints) per modulus.

        Negative inputs are mapped to the canonical representative in
        ``[0, q_i)``; recomposition restores them via :meth:`compose_centered`.
        """
        arr = np.asarray(x, dtype=object)
        out = []
        for m in self.moduli:
            res = np.mod(arr, m)
            out.append(res.astype(np.int64) if m.bit_length() <= 62 else res)
        return out

    @traced("nt.crt.compose")
    def compose(self, residues: list[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`decompose`: canonical value in ``[0, Q)``.

        Vectorised Garner lifting (see module docstring): ``O(k^2)``
        int64 vector ops for digit extraction, one exact int64 Horner
        fold, and one Python-int multiply-add per digit whose positional
        weight exceeds ``int64``.  Returns ``int64`` when ``Q`` fits 62
        bits, ``object`` (Python ints) otherwise.
        """
        self._check_channels(residues)
        g = self.garner
        if not g.vector_ok:
            return self.compose_bigint(residues)
        return g.lift(g.digits(residues), centered=False)

    def compose_centered(self, residues: list[np.ndarray]) -> np.ndarray:
        """Like :meth:`compose` but returns values in ``[-Q/2, Q/2)``.

        This is the representation needed to recover *signed* integers —
        e.g. negative convolution outputs in the paper's CNN-RNS layers.
        The sign decision compares mixed-radix digits against the digits
        of ``Q//2`` in int64, avoiding big-integer comparisons.
        """
        self._check_channels(residues)
        g = self.garner
        if not g.vector_ok:
            v = self.compose_bigint(residues)
            half = self.modulus // 2
            return np.where(v >= half, v - self.modulus, v)
        return g.lift(g.digits(residues), centered=True)

    def compose_bigint(self, residues: list[np.ndarray]) -> np.ndarray:
        """Classical big-integer CRT: ``sum_i r_i e_i mod Q`` (object dtype).

        Reference implementation: exact for any modulus width.  Used as
        the fallback for bases beyond the vectorised bound
        (:data:`repro.nt.modarith.MAX_MODULUS_BITS`) and as the oracle
        in ``tests/nt/test_crt.py`` property tests.
        """
        self._check_channels(residues)
        acc = np.zeros(np.asarray(residues[0]).shape, dtype=object)
        for res, e in zip(residues, self.recomb):
            acc = acc + np.asarray(res, dtype=object) * e
        return np.mod(acc, self.modulus)

    def _check_channels(self, residues: list[np.ndarray]) -> None:
        if len(residues) != self.k:
            raise ValueError(f"expected {self.k} residue channels, got {len(residues)}")

    # -- componentwise ring operations ------------------------------------

    def add(self, a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
        """Componentwise residue addition (Fig. 2 semantics)."""
        self._check_channels(a)
        self._check_channels(b)
        return [(np.asarray(x) + np.asarray(y)) % m for x, y, m in zip(a, b, self.moduli)]

    def mul(self, a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
        """Componentwise residue multiplication (Fig. 2 semantics)."""
        self._check_channels(a)
        self._check_channels(b)
        out = []
        for x, y, m in zip(a, b, self.moduli):
            xo = np.asarray(x, dtype=object)
            yo = np.asarray(y, dtype=object)
            r = np.mod(xo * yo, m)
            out.append(r.astype(np.int64) if m.bit_length() <= 62 else r)
        return out

    def __len__(self) -> int:
        return self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrtBasis(k={self.k}, log2(Q)~{self.modulus.bit_length()})"
