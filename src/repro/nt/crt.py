"""Chinese Remainder Theorem over pairwise co-prime moduli.

This is the mathematical heart of the paper's Fig. 2: a large integer
``x`` is represented by its residues ``(x mod q_1, ..., x mod q_k)``;
addition and multiplication act componentwise; :meth:`CrtBasis.compose`
recovers ``x mod Q`` with ``Q = prod(q_i)``.
"""

from __future__ import annotations

import math
from functools import reduce

import numpy as np

from repro.obs.tracer import traced

__all__ = ["CrtBasis"]


class CrtBasis:
    """Precomputed CRT data for a fixed list of pairwise co-prime moduli."""

    def __init__(self, moduli: list[int]):
        moduli = [int(m) for m in moduli]
        if not moduli:
            raise ValueError("need at least one modulus")
        if any(m < 2 for m in moduli):
            raise ValueError("moduli must be >= 2")
        for i in range(len(moduli)):
            for j in range(i + 1, len(moduli)):
                if math.gcd(moduli[i], moduli[j]) != 1:
                    raise ValueError(
                        f"moduli {moduli[i]} and {moduli[j]} are not co-prime"
                    )
        self.moduli = moduli
        self.k = len(moduli)
        #: Dynamic range Q = prod(q_i).
        self.modulus = reduce(lambda a, b: a * b, moduli, 1)
        #: Q / q_i ("hat" values).
        self.hats = [self.modulus // m for m in moduli]
        #: (Q/q_i)^{-1} mod q_i.
        self.hat_invs = [pow(h, -1, m) for h, m in zip(self.hats, moduli)]
        #: Garner-free reconstruction coefficients e_i = hat_i * hat_inv_i mod Q.
        self.recomb = [h * hi % self.modulus for h, hi in zip(self.hats, self.hat_invs)]

    # -- scalar / array decomposition -------------------------------------

    @traced("nt.crt.decompose")
    def decompose(self, x: np.ndarray | int) -> list[np.ndarray]:
        """Residues of *x* (array of arbitrary Python/NumPy ints) per modulus.

        Negative inputs are mapped to the canonical representative in
        ``[0, q_i)``; recomposition restores them via :meth:`compose_centered`.
        """
        arr = np.asarray(x, dtype=object)
        out = []
        for m in self.moduli:
            res = np.mod(arr, m)
            out.append(res.astype(np.int64) if m.bit_length() <= 62 else res)
        return out

    @traced("nt.crt.compose")
    def compose(self, residues: list[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`decompose`: canonical value in ``[0, Q)``."""
        self._check_channels(residues)
        acc = np.zeros(np.asarray(residues[0]).shape, dtype=object)
        for res, e in zip(residues, self.recomb):
            acc = acc + np.asarray(res, dtype=object) * e
        return np.mod(acc, self.modulus)

    def compose_centered(self, residues: list[np.ndarray]) -> np.ndarray:
        """Like :meth:`compose` but returns values in ``[-Q/2, Q/2)``.

        This is the representation needed to recover *signed* integers —
        e.g. negative convolution outputs in the paper's CNN-RNS layers.
        """
        v = self.compose(residues)
        half = self.modulus // 2
        return np.where(v >= half, v - self.modulus, v)

    def _check_channels(self, residues: list[np.ndarray]) -> None:
        if len(residues) != self.k:
            raise ValueError(f"expected {self.k} residue channels, got {len(residues)}")

    # -- componentwise ring operations ------------------------------------

    def add(self, a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
        """Componentwise residue addition (Fig. 2 semantics)."""
        self._check_channels(a)
        self._check_channels(b)
        return [(np.asarray(x) + np.asarray(y)) % m for x, y, m in zip(a, b, self.moduli)]

    def mul(self, a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
        """Componentwise residue multiplication (Fig. 2 semantics)."""
        self._check_channels(a)
        self._check_channels(b)
        out = []
        for x, y, m in zip(a, b, self.moduli):
            xo = np.asarray(x, dtype=object)
            yo = np.asarray(y, dtype=object)
            r = np.mod(xo * yo, m)
            out.append(r.astype(np.int64) if m.bit_length() <= 62 else r)
        return out

    def __len__(self) -> int:
        return self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CrtBasis(k={self.k}, log2(Q)~{self.modulus.bit_length()})"
