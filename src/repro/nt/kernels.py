"""Fused residue-channel kernels shared by the HE weighted sums.

These are the hot inner loops of encrypted convolution: a neuron is a
plaintext-weighted sum of tap ciphertexts, which in RNS form is

    ``out[i, :] = (sum_t stack[t, i, :] * w[t, i]) mod m_i``

for residue channels ``i`` with pairwise moduli ``m_i``.  The kernels
here evaluate that whole expression in a handful of NumPy calls over the
stacked ``(taps, k, n)`` block instead of a per-tap ``mul_plain`` +
``add`` chain — the fusion the inference-plan layer
(:mod:`repro.henn.plan`) relies on, also routed through by
:class:`repro.henn.rnscnn.RnsIntegerConv` for its word-sized channels.

Exactness contract (same as :func:`repro.nt.modarith.mulmod`): inputs
reduced to ``[0, m)``, per-tap products reduced before summation, and
``taps * m < 2**62`` so int64 partial sums cannot overflow.  Channels
with narrow moduli (< 2**31) additionally fuse *across channels*: one
``(taps, k, n)`` multiply + one modulo, with the modulus broadcast per
channel — numerically identical to the per-channel path because both
reduce to ``(a * b) % m`` in int64.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.nt.modarith import NARROW_MODULUS_BITS, mulmod

__all__ = [
    "weighted_accumulate",
    "fused_weighted_sum",
    "scale_channels",
    "scale_positions",
    "PolyProgram",
    "compile_poly_program",
    "MAX_POLY_DEGREE",
]

#: Highest polynomial degree the BSGS evaluator compiles programs for.
MAX_POLY_DEGREE = 8


def _check_tap_budget(taps: int, m: int) -> None:
    if taps * m > 2**62:  # pragma: no cover - parameter guard
        raise ValueError("too many taps for exact int64 accumulation")


def weighted_accumulate(stack: np.ndarray, w_mod: np.ndarray, m: int) -> np.ndarray:
    """``(sum_t stack[t] * w_mod[t]) mod m`` along the leading tap axis.

    Parameters
    ----------
    stack:
        ``(taps, ...)`` int64 residues reduced mod *m*.
    w_mod:
        ``(taps,)`` weight residues reduced mod *m* (broadcast over the
        trailing axes).
    m:
        The channel modulus.
    """
    _check_tap_budget(stack.shape[0], m)
    w = np.asarray(w_mod, dtype=np.int64).reshape((-1,) + (1,) * (stack.ndim - 1))
    return mulmod(stack, w, m).sum(axis=0) % m


def fused_weighted_sum(stack: np.ndarray, w_res: np.ndarray, moduli: list[int]) -> np.ndarray:
    """All residue channels of a weighted sum in one sweep.

    Parameters
    ----------
    stack:
        ``(taps, k, ..., n)`` int64 ciphertext-component residues,
        channel ``i`` reduced mod ``moduli[i]``.  Extra axes between the
        channel and coefficient axes (e.g. a slot-packed lane axis) ride
        through untouched.
    w_res:
        ``(taps, k)`` int64 weight residues, column ``i`` reduced mod
        ``moduli[i]`` (broadcast over any trailing batch axes).
    moduli:
        The ``k`` channel moduli.

    Returns
    -------
    ``(k, ..., n)`` int64 stack of the accumulated channels.

    Notes
    -----
    Narrow channels (moduli below ``2**31``) are evaluated together with
    the modulus broadcast along the channel axis; wide channels fall
    back to the float-Barrett path one at a time.  Both produce the
    exact ints of :func:`weighted_accumulate` per channel.
    """
    taps, k = stack.shape[:2]
    if w_res.shape != (taps, k):
        raise ValueError(f"weight residues must be ({taps}, {k}), got {w_res.shape}")
    if len(moduli) != k:
        raise ValueError(f"expected {k} moduli, got {len(moduli)}")
    out = np.empty(stack.shape[1:], dtype=np.int64)
    mods = np.asarray(moduli, dtype=np.int64)
    narrow = mods < (1 << NARROW_MODULUS_BITS)
    tail = (1,) * (stack.ndim - 2)  # broadcast over lane/coefficient axes
    if narrow.any():
        for m in mods[narrow]:
            _check_tap_budget(taps, int(m))
        sub = stack[:, narrow]
        w = w_res[:, narrow].reshape(w_res[:, narrow].shape + tail)
        mb = mods[narrow].reshape((1, -1) + tail)
        prod = np.multiply(sub, w, dtype=np.int64) % mb
        out[narrow] = prod.sum(axis=0) % mb[0]
    for i in np.nonzero(~narrow)[0]:
        out[i] = weighted_accumulate(stack[:, i], w_res[:, i], int(mods[i]))
    return out


def scale_channels(stack: np.ndarray, residues: np.ndarray, moduli: list[int]) -> np.ndarray:
    """Per-channel scalar multiply: ``out[i] = (stack[i] * residues[i]) mod m_i``.

    The broadcast form of :meth:`CkksRnsContext.mul_plain_scalar`: the
    scalar's residues are computed once by the caller and applied to all
    channels here — narrow channels in one fused multiply, wide ones via
    float-Barrett.
    """
    k = stack.shape[0]
    if residues.shape[0] != k or len(moduli) != k:
        raise ValueError("stack/residues/moduli channel counts differ")
    out = np.empty_like(stack)
    mods = np.asarray(moduli, dtype=np.int64)
    narrow = mods < (1 << NARROW_MODULUS_BITS)
    if narrow.any():
        shape = (-1,) + (1,) * (stack.ndim - 1)
        mb = mods[narrow].reshape(shape)
        rb = residues[narrow].reshape(shape)
        out[narrow] = np.multiply(stack[narrow], rb, dtype=np.int64) % mb
    for i in np.nonzero(~narrow)[0]:
        out[i] = mulmod(stack[i], np.int64(residues[i]), int(mods[i]))
    return out


def scale_positions(stack: np.ndarray, residues: np.ndarray, moduli: list[int]) -> np.ndarray:
    """Position-wise scalar multiply over a batched component stack.

    The batched sibling of :func:`scale_channels`: position *b* of the
    stack is multiplied by *its own* scalar's residues — the kernel the
    BSGS activation path uses to apply per-channel SLAF coefficients to
    every feature-map position in one sweep.

    Parameters
    ----------
    stack:
        ``(k, B, ..., n)`` int64 component stack, channel *i* reduced
        mod ``moduli[i]``.  Extra axes between the position and
        coefficient axes (e.g. a slot-packed lane axis) broadcast the
        position's scalar across every lane.
    residues:
        ``(k, B)`` int64 scalar residues: column *b* holds the residues
        of position *b*'s scalar across the chain.
    moduli:
        The ``k`` channel moduli.

    Returns
    -------
    ``(k, B, ..., n)`` int64 stack, bit-identical per position to
    :func:`scale_channels` with that position's scalar.
    """
    k = stack.shape[0]
    if residues.shape[:2] != stack.shape[:2] or len(moduli) != k:
        raise ValueError("stack/residues/moduli shapes differ")
    out = np.empty_like(stack)
    mods = np.asarray(moduli, dtype=np.int64)
    narrow = mods < (1 << NARROW_MODULUS_BITS)
    tail = (1,) * (stack.ndim - 2)  # broadcast over lane/coefficient axes
    if narrow.any():
        mb = mods[narrow].reshape((-1, 1) + tail)
        rb = residues[narrow].reshape(residues[narrow].shape + tail)
        out[narrow] = np.multiply(stack[narrow], rb, dtype=np.int64) % mb
    for i in np.nonzero(~narrow)[0]:
        out[i] = mulmod(stack[i], residues[i].reshape((-1,) + tail), int(mods[i]))
    return out


# --------------------------------------------------------------------- BSGS programs


@dataclass(frozen=True)
class PolyProgram:
    """Compiled baby-step/giant-step plan for one polynomial degree.

    A degree-*d* polynomial splits into ``giants`` blocks of width
    ``baby_m``: ``p(x) = sum_g B_g(x) * y^g`` with ``y = x^baby_m`` and
    ``deg B_g < baby_m``.  Baby powers ``x^2 .. x^baby_top`` are built
    once (ciphertext–ciphertext multiplications) and every block is then
    a *plaintext*-weighted combination of them; the giant dimension
    folds by Horner in ``y``.  Backends interpret the program via
    ``HeBackend.poly_eval_bsgs`` — see ``docs/KERNELS.md`` for the
    mult/depth accounting table.

    Attributes
    ----------
    degree:
        Polynomial degree *d* (coefficient count ``d + 1``).
    baby_m:
        Block width *m* (the giant step is ``y = x^m``).
    giants:
        Number of blocks *G*; 1 means plain power-basis evaluation.
    baby_top:
        Highest baby power actually built (``m`` when ``G > 1``, else *d*).
    block_degrees:
        Degree of each block, low block first; the top block may be
        degree 0 (a constant), which costs no ciphertext multiply.
    ct_mults:
        Ciphertext–ciphertext multiplications consumed
        (``baby_top - 1`` baby steps plus the non-trivial Horner folds).
    depth:
        Rescaling levels consumed (always ``<= degree``; equality holds
        for ``degree <= 4``).
    relins:
        Relinearisations (key-switch sweeps) performed by the *lazy*
        interpreter, ``~ ceil(degree / baby_m)``.  The eager interpreter
        relinearises after every product, i.e. exactly ``ct_mults``
        times.  Lazy keeps the giant power ``y = x^m`` raw (degree 2),
        folds blocks in extended space and relinearises each accumulator
        once, post-rescale, with a single merged degree-3 sweep.
    """

    degree: int
    baby_m: int
    giants: int
    baby_top: int
    block_degrees: tuple[int, ...]
    ct_mults: int
    depth: int
    relins: int = 0


@lru_cache(maxsize=None)
def compile_poly_program(degree: int) -> PolyProgram:
    """Compile the BSGS evaluation plan for a polynomial degree.

    Parameters
    ----------
    degree:
        Polynomial degree, ``1 <= degree <= MAX_POLY_DEGREE``.

    Returns
    -------
    The (cached, immutable) :class:`PolyProgram`.  Complexity of the
    compiled plan: ``ct_mults ~ 2*sqrt(degree)`` ciphertext multiplies
    and ``depth <= degree`` levels, versus ``degree - 1`` multiplies and
    ``degree`` levels for power-basis/Horner evaluation.
    """
    if degree < 1 or degree > MAX_POLY_DEGREE:
        raise ValueError(
            f"poly programs support degrees 1..{MAX_POLY_DEGREE}, got {degree}"
        )
    m = math.isqrt(degree)
    if m * m < degree + 1:
        m += 1  # ceil(sqrt(degree + 1))
    giants = -(-(degree + 1) // m)
    if giants <= 1:
        block_degrees = (degree,)
        baby_top = max(degree, 1)
        horner_mults = 0
    else:
        block_degrees = tuple(
            min(m - 1, degree - g * m) for g in range(giants)
        )
        baby_top = m
        # A constant-only top block folds into the first Horner step as a
        # plaintext multiply, saving one ciphertext multiplication.
        horner_mults = giants - 1 - (1 if block_degrees[-1] == 0 else 0)
    ct_mults = (baby_top - 1) + horner_mults
    depth = (baby_top - 1) + horner_mults + 1
    if giants <= 1:
        # Power basis: every baby product must be relinearised.
        relins = max(baby_top - 1, 0)
    else:
        # Lazy BSGS: y = x^m stays raw, so one baby relin is saved; each
        # Horner fold (plus the constant-top-block plaintext product)
        # costs exactly one merged sweep of its degree-3 accumulator.
        relins = (baby_top - 2) + horner_mults + (
            1 if block_degrees[-1] == 0 else 0
        )
    return PolyProgram(
        degree=degree,
        baby_m=m,
        giants=giants,
        baby_top=baby_top,
        block_degrees=block_degrees,
        ct_mults=ct_mults,
        depth=depth,
        relins=relins,
    )
