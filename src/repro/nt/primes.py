"""Primality testing and NTT-friendly prime generation.

This plays the role of the "co-prime generation tool provided by SEAL"
cited in §VI.A of the paper: *given a list of bit-lengths, a set of
pairwise-distinct primes of those lengths is generated*, each satisfying
``p ≡ 1 (mod 2N)`` so that the negacyclic NTT of length ``N`` exists
modulo ``p``.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime", "prev_prime", "gen_ntt_primes", "gen_coprime_chain"]

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_MR_WITNESSES_64 = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for ``n < 3.3e24`` (covers all our sizes)."""
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES_64:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than *n*."""
    n = int(n) + 1
    if n <= 2:
        return 2
    if n % 2 == 0:
        n += 1
    while not is_prime(n):
        n += 2
    return n


def prev_prime(n: int) -> int:
    """Largest prime strictly smaller than *n*; raises below 3."""
    n = int(n) - 1
    if n < 2:
        raise ValueError("no prime below 2")
    if n == 2:
        return 2
    if n % 2 == 0:
        n -= 1
    while n >= 3 and not is_prime(n):
        n -= 2
    if n < 2:
        raise ValueError("no prime found")
    return n


def gen_ntt_primes(bit_sizes: list[int], n: int, exclude: set[int] | None = None) -> list[int]:
    """Generate distinct primes ``p ≡ 1 (mod 2n)`` with the given bit lengths.

    Parameters
    ----------
    bit_sizes:
        Desired bit length of each prime (the paper's "moduli chain", e.g.
        ``[40, 26, 26, ..., 40]``).  Each must be in ``[max(18, log2(4n)), 50]``.
    n:
        NTT length (power of two).  Primes satisfy ``p ≡ 1 (mod 2n)``.
    exclude:
        Primes to skip (ensures pairwise distinctness across calls).

    The search walks downward from ``2**bits`` in steps of ``2n`` (as SEAL
    does), so repeated requests for the same bit size yield consecutive
    distinct primes.
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    taken: set[int] = set(exclude or ())
    out: list[int] = []
    step = 2 * n
    for bits in bit_sizes:
        bits = int(bits)
        if bits > 50:
            raise ValueError(f"prime bit size {bits} exceeds the supported 50 bits")
        if (1 << bits) <= 2 * step:
            raise ValueError(f"prime bit size {bits} too small for NTT length n={n}")
        # Largest candidate of the form k*2n + 1 strictly below 2**bits.
        cand = ((1 << bits) - 2) // step * step + 1
        while cand > (1 << (bits - 1)):
            if cand not in taken and is_prime(cand):
                taken.add(cand)
                out.append(cand)
                break
            cand -= step
        else:
            raise RuntimeError(f"no {bits}-bit NTT prime found for n={n}")
    return out


def gen_primes(bit_sizes: list[int], exclude: set[int] | None = None) -> list[int]:
    """Distinct primes of the given bit lengths (no NTT constraint).

    Used by the integer-RNS pipeline (Fig. 2/5), where moduli only need
    to be pairwise co-prime — they can be arbitrarily wide, unlike the
    NTT primes of the ciphertext chain.  Each prime is the largest below
    ``2**bits`` not yet taken.
    """
    taken: set[int] = set(exclude or ())
    out: list[int] = []
    for bits in bit_sizes:
        bits = int(bits)
        if bits < 3:
            raise ValueError(f"prime bit size must be >= 3, got {bits}")
        cand = (1 << bits) - 1
        while cand > (1 << (bits - 1)):
            if cand not in taken and is_prime(cand):
                taken.add(cand)
                out.append(cand)
                break
            cand -= 2 if cand % 2 else 1
        else:  # pragma: no cover - unreachable for bits >= 3
            raise RuntimeError(f"no {bits}-bit prime found")
    return out


def gen_coprime_chain(k: int, bits: int, n: int) -> list[int]:
    """Convenience: *k* distinct NTT primes, all of the same bit length."""
    if k < 1:
        raise ValueError("need at least one modulus")
    return gen_ntt_primes([bits] * k, n)
