"""Negacyclic Number Theoretic Transform (NTT).

Implements the merged-twiddle iterative transforms of Longa & Naehrig:
the forward transform is decimation-in-time Cooley-Tukey (natural input,
bit-reversed output) and the inverse is decimation-in-frequency
Gentleman-Sande (bit-reversed input, natural output).  Multiplication in
the transformed domain is elementwise, which — together with ``p ≡ 1
(mod 2N)`` primes — gives O(N log N) negacyclic polynomial products per
RNS channel.

Each stage is fully vectorised over NumPy views (see the hpc guide on
vectorising loops): a length-``n`` transform is ``log2 n`` reshaped
butterfly sweeps, with optional leading batch axes transformed together.

Narrow channels run the stage loops with *lazy reduction*: twiddle
products are reduced by a direct int64 ``%``, but the butterfly add/sub
reductions are deferred (magnitudes grow by at most ``+m`` per stage,
within an int64 budget checked at plan build), replacing two
compare-and-select sweeps per stage with one final modulo.  Wide
channels use *Shoup multiplication*: every multiplier in a transform
(twiddles, ``n^-1``) is a plan constant, so the quotient
``q = floor(a*w/m)`` is recovered from a precomputed float64 ratio
``w/m`` with one multiply instead of a float division per element —
``r = a*w - q*m`` is exact in wrap-around uint64 and needs at most two
conditional ``±m`` corrections.  Both paths produce the exact integers
of plain ``(a*w) % m`` arithmetic, so outputs are bit-identical.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.nt.modarith import NARROW_MODULUS_BITS, mulmod
from repro.nt.primes import is_prime
from repro.obs.tracer import traced

__all__ = [
    "BatchedNttPlan",
    "NttPlan",
    "bit_reverse_permutation",
    "plan_registry_stats",
]

_I64 = np.int64
_U64 = np.uint64


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing ``log2 n`` bits (n must be a power of 2)."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    logn = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(logn):
        rev |= ((idx >> b) & 1) << (logn - 1 - b)
    return rev


def _find_primitive_2n_root(p: int, n: int) -> int:
    """Smallest-witness primitive 2n-th root of unity modulo prime *p*.

    Requires ``p ≡ 1 (mod 2n)`` with ``n`` a power of two: then any
    ``c^((p-1)/2n)`` with ``psi^n ≡ -1`` has order exactly 2n.
    """
    if (p - 1) % (2 * n) != 0:
        raise ValueError(f"prime {p} is not ≡ 1 (mod {2 * n}); NTT of length {n} unavailable")
    exp = (p - 1) // (2 * n)
    for c in range(2, 10_000):
        psi = pow(c, exp, p)
        if pow(psi, n, p) == p - 1:
            return psi
    raise RuntimeError(f"no primitive 2n-th root found modulo {p}")  # pragma: no cover


class NttPlan:
    """Precomputed negacyclic NTT for one ``(n, prime)`` pair.

    Parameters
    ----------
    n:
        Transform length (ring degree), a power of two.
    p:
        NTT-friendly prime, ``p ≡ 1 (mod 2n)``.

    Notes
    -----
    The "evaluation domain" used throughout :mod:`repro.ckksrns` is the
    bit-reversed output order of :meth:`forward`; :meth:`inverse` undoes
    it.  ``forward(inverse(x)) == x`` and dyadic products in that domain
    equal negacyclic convolution in the coefficient domain.
    """

    def __init__(self, n: int, p: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.n = int(n)
        self.p = int(p)
        psi = _find_primitive_2n_root(self.p, self.n)
        self.psi = psi
        psi_inv = pow(psi, -1, self.p)
        rev = bit_reverse_permutation(self.n)
        pow_psi = self._power_table(psi)
        pow_psi_inv = self._power_table(psi_inv)
        # Twiddles indexed as table[m + i] at stage with m groups.
        self._tw = pow_psi[rev]
        self._tw_inv = pow_psi_inv[rev]
        self.n_inv = pow(self.n, -1, self.p)
        # Shoup ratio tables: w/p in float64 recovers q = floor(a*w/p)
        # to within ±1 with a single multiply (see module docstring).
        self._tw_f = self._tw / self.p
        self._tw_inv_f = self._tw_inv / self.p
        self._n_inv_f = self.n_inv / self.p
        stages = self.n.bit_length() - 1
        self._narrow = self.p.bit_length() < NARROW_MODULUS_BITS
        # Lazy forward reduction defers the butterfly reductions.
        # Narrow: twiddle products are fully reduced, magnitudes grow by
        # at most +p per stage, so the stage-s product is bounded by
        # (s+2) * p**2 — eligible when that fits int64.  Wide: Shoup
        # products are reduced only to [0, 2p), growing +2p per stage;
        # the quotient estimate stays within ±1 as long as the largest
        # ratio value (2*stages+1) * p keeps the 3-ulp float error
        # below 1 — conservatively, below 2**51.
        if self._narrow:
            self._lazy = (stages + 2) * self.p * self.p < 2**63
        else:
            self._lazy = (2 * stages + 1) * self.p < 2**51

    def _power_table(self, base: int) -> np.ndarray:
        """``[base^0, base^1, ..., base^(n-1)] mod p`` by vectorised doubling.

        ``log2 n`` array multiplications instead of an O(n) Python loop:
        given the first ``m`` powers, the next ``m`` are those times
        ``base^m``.  Noticeable at ``n = 4096`` with 10+ moduli, where
        the scalar loop dominated context construction.
        """
        out = np.empty(self.n, dtype=np.int64)
        out[0] = 1
        m = 1
        while m < self.n:
            step = np.int64(pow(base, m, self.p))
            out[m : 2 * m] = mulmod(out[:m], step, self.p)
            m *= 2
        return out

    # -- transforms ------------------------------------------------------

    def _mul_const(
        self, a: np.ndarray, w: np.ndarray, wf: np.ndarray, full: bool = True
    ) -> np.ndarray:
        """``(a * w) mod p`` with *w* a plan constant (Shoup ratio *wf*).

        Narrow moduli take a direct int64 multiply-and-remainder (always
        fully reduced).  Wide moduli recover ``q = floor(a*w/p)`` from
        the float64 ratio (off by at most 1), compute the remainder
        exactly in wrap-around uint64, and correct into ``[0, 2p)`` with
        one conditional ``+p``; ``full`` adds the ``-p`` step to
        ``[0, p)``.  Inputs may exceed ``p`` (lazy butterflies); the
        eligibility bounds keep both the int64 products and the float
        quotient estimate exact.
        """
        p = self.p
        if self._narrow:
            return (a * w) % p
        q = (a * wf).astype(_U64)
        with np.errstate(over="ignore"):
            r = (
                a.astype(_U64) * np.asarray(w, dtype=_I64).astype(_U64)
                - q * _U64(p)
            ).astype(_I64)
        r = np.where(r < 0, r + p, r)
        if full:
            r = np.where(r >= p, r - p, r)
        return r

    @traced("nt.ntt.forward")
    def forward(self, a: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT along the last axis (returns a new array)."""
        a, out_shape = self._prepare(a)
        p = self.p
        batch = a.shape[0]
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(batch, m, 2 * t)
            left = view[:, :, :t]
            right = view[:, :, t:]
            w = self._tw[m : 2 * m].reshape(1, m, 1)
            wf = self._tw_f[m : 2 * m].reshape(1, m, 1)
            if self._lazy:
                # Partially-reduced v (< p narrow, < 2p wide) keeps
                # (left + v) and (left - v + bound) non-negative with
                # +bound growth per stage — within the budgets checked
                # at plan build.  Right half is written first so the
                # in-place add still reads the original left half.
                v = self._mul_const(right, w, wf, full=False)
                view[:, :, t:] = left - v + (p if self._narrow else 2 * p)
                left += v
            else:
                v = self._mul_const(right, w, wf)
                s = left + v
                d = left - v
                view[:, :, :t] = np.where(s >= p, s - p, s)
                view[:, :, t:] = np.where(d < 0, d + p, d)
            m *= 2
        if self._lazy:
            a %= p
        return a.reshape(out_shape)

    @traced("nt.ntt.inverse")
    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT along the last axis (returns a new array)."""
        a, out_shape = self._prepare(a)
        p = self.p
        batch = a.shape[0]
        t = 1
        m = self.n // 2
        while m >= 1:
            view = a.reshape(batch, m, 2 * t)
            left = view[:, :, :t]
            right = view[:, :, t:]
            w = self._tw_inv[m : 2 * m].reshape(1, m, 1)
            wf = self._tw_inv_f[m : 2 * m].reshape(1, m, 1)
            s = left + right
            # d = left - right + p stays in [0, 2p): the twiddle product
            # 2p**2 fits int64 for every narrow modulus and wraps
            # exactly in uint64 for wide ones — one unconditional add
            # instead of a compare-and-select sweep.
            d = left - right + p
            v = self._mul_const(d, w, wf)
            view[:, :, :t] = np.where(s >= p, s - p, s)
            view[:, :, t:] = v
            t *= 2
            m //= 2
        a = self._mul_const(a, np.int64(self.n_inv), self._n_inv_f)
        return a.reshape(out_shape)

    def _prepare(self, a: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        # Stateless on purpose: registry plans are shared across contexts
        # and executor threads, so per-call state must stay on the stack.
        a = np.asarray(a, dtype=np.int64)
        if a.shape[-1] != self.n:
            raise ValueError(f"last axis must have length {self.n}, got {a.shape[-1]}")
        return a.reshape(-1, self.n).copy(), a.shape

    # -- convenience -----------------------------------------------------

    def negacyclic_convolve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a * b mod (X^n + 1, p)`` via forward/dyadic/inverse."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(mulmod(fa, fb, self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NttPlan(n={self.n}, p={self.p})"

    # -- shared registry -------------------------------------------------

    @classmethod
    def get(cls, n: int, p: int) -> "NttPlan":
        """The process-shared plan for ``(n, p)``, built at most once.

        Contexts, engines and resilience executors all transform under
        the same ``(n, prime)`` pairs; the registry means the twiddle
        tables are computed once per process instead of once per
        consumer.  Fork-started worker processes inherit the registry
        populated so far for free.  Thread-safe; a rare duplicate build
        under contention is discarded, never observed.
        """
        key = (int(n), int(p))
        plan = _PLAN_REGISTRY.get(key)
        if plan is not None:
            return plan
        plan = cls(n, p)
        with _PLAN_LOCK:
            return _PLAN_REGISTRY.setdefault(key, plan)


#: Process-global ``(n, p) -> NttPlan`` store behind :meth:`NttPlan.get`.
_PLAN_REGISTRY: dict[tuple[int, int], NttPlan] = {}
_PLAN_LOCK = threading.Lock()


def plan_registry_stats() -> dict[str, int]:
    """Size of the shared plan registries (for tests and obs reports)."""
    return {"plans": len(_PLAN_REGISTRY), "batched_plans": len(_BATCHED_REGISTRY)}


class _ChannelGroup:
    """Channels of one width class batched through a shared stage loop."""

    __slots__ = (
        "idx", "wide", "mi", "mu", "mf",
        "tw", "tw_inv", "n_inv", "tw_f", "tw_inv_f", "n_inv_f", "lazy",
    )

    def __init__(self, idx: list[int], plans: list[NttPlan], moduli: tuple[int, ...]):
        self.idx = idx
        self.wide = any(moduli[i].bit_length() >= NARROW_MODULUS_BITS for i in idx)
        m = np.array([moduli[i] for i in idx], dtype=np.int64)
        self.mi = m
        self.mu = m.astype(np.uint64)
        self.mf = m.astype(np.float64)
        self.tw = np.stack([plans[i]._tw for i in idx])
        self.tw_inv = np.stack([plans[i]._tw_inv for i in idx])
        self.n_inv = np.array([plans[i].n_inv for i in idx], dtype=np.int64)
        # Per-channel Shoup ratio tables (w / m in float64) — same
        # quotient-recovery trick as NttPlan._shoup, broadcast over the
        # channel axis.
        self.tw_f = self.tw / self.mf.reshape(-1, 1)
        self.tw_inv_f = self.tw_inv / self.mf.reshape(-1, 1)
        self.n_inv_f = self.n_inv / self.mf
        # Lazy-reduction eligibility for the forward stage loop (same
        # bounds as NttPlan: +m growth with fully-reduced narrow
        # products, +2m growth with partially-reduced wide Shoup
        # products and a ±1 float quotient estimate).
        n = plans[idx[0]].n
        stages = n.bit_length() - 1
        if self.wide:
            self.lazy = all(
                (2 * stages + 1) * int(mm) < 2**51 for mm in m.tolist()
            )
        else:
            self.lazy = all(
                (stages + 2) * int(mm) * int(mm) < 2**63 for mm in m.tolist()
            )

    def mul(
        self,
        a: np.ndarray,
        w: np.ndarray,
        wf: np.ndarray,
        shape: tuple,
        full: bool = True,
    ) -> np.ndarray:
        """``(a * w) mod m_i`` per channel, *w* a plan constant.

        Narrow groups use a direct int64 multiply-and-remainder with the
        modulus broadcast per channel (always fully reduced).  Wide
        groups recover the quotient from the precomputed float64 Shoup
        ratio *wf* (off by at most 1), take the remainder exactly in
        wrap-around uint64, and correct into ``[0, 2m)`` with one
        conditional ``+m``; ``full`` adds the ``-m`` step to ``[0, m)``
        — elementwise identical to ``modarith.mulmod`` with each
        channel's scalar modulus.
        """
        mi = self.mi.reshape(shape)
        if not self.wide:
            return np.multiply(a, w, dtype=np.int64) % mi
        q = (a * wf).astype(np.uint64)
        with np.errstate(over="ignore"):
            r = (
                a.astype(np.uint64) * w.astype(np.uint64)
                - q * self.mu.reshape(shape)
            ).astype(np.int64)
        r = np.where(r < 0, r + mi, r)
        if full:
            r = np.where(r >= mi, r - mi, r)
        return r


class BatchedNttPlan:
    """Cross-channel NTT: one stage loop over a whole residue stack.

    A CKKS-RNS polynomial is a ``(k, n)`` stack of channels whose
    transforms share every index computation — only the twiddles and the
    modulus differ per channel.  Running the ``log2 n`` butterfly sweeps
    once per channel *group* (modulus vector broadcast along the channel
    axis) instead of once per channel removes ``k``-fold Python and
    NumPy call overhead, which dominates at the small-to-medium ring
    degrees of the sweep experiments.

    Channels batch in three groups: narrow moduli (< 2**31, direct int64
    products, lazy butterflies), lazy-eligible wide moduli (Shoup
    ratio-multiply, deferred butterfly reductions — e.g. a 40-bit
    ``q_0``), and heavy wide moduli whose magnitude forces per-stage
    reduction (the 49-bit special prime).  Splitting wide channels this
    way keeps one heavy prime from dragging a whole stack onto the eager
    path.  Per channel the arithmetic is **identical** to
    :class:`NttPlan`'s scalar-modulus path — same Shoup quotient
    recovery, same conditional ``±m`` corrections — so results are
    bit-identical.  A group of one falls back to its plain per-channel
    plan (batching it would only add reshapes).

    Accepts stacks of shape ``(k, n)`` or ``(k, B, n)`` (extra batch
    axes between channel and coefficient axes transform together).
    """

    def __init__(self, n: int, moduli: tuple[int, ...]):
        self.n = int(n)
        self.moduli = tuple(int(m) for m in moduli)
        self.plans = [NttPlan.get(self.n, m) for m in self.moduli]
        narrow = [
            i for i, m in enumerate(self.moduli) if m.bit_length() < NARROW_MODULUS_BITS
        ]
        wide = [i for i in range(len(self.moduli)) if i not in set(narrow)]
        # Wide channels split by lazy-reduction eligibility so a
        # moderate modulus (e.g. a 40-bit q0) is not forced onto the
        # eager path by a heavy one (e.g. a 49-bit special prime).
        wide_lazy = [i for i in wide if self.plans[i]._lazy]
        wide_heavy = [i for i in wide if not self.plans[i]._lazy]
        self.groups: list[_ChannelGroup] = []
        self.single: list[int] = []
        for idx in (narrow, wide_lazy, wide_heavy):
            if len(idx) > 1:
                self.groups.append(_ChannelGroup(idx, self.plans, self.moduli))
            else:
                self.single.extend(idx)

    def _check(self, stack: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        stack = np.asarray(stack, dtype=np.int64)
        if stack.shape[0] != len(self.moduli) or stack.shape[-1] != self.n:
            raise ValueError(
                f"expected ({len(self.moduli)}, ..., {self.n}) stack, got {stack.shape}"
            )
        return stack, stack.shape

    @traced("nt.ntt.batched.forward")
    def forward(self, stack: np.ndarray) -> np.ndarray:
        """Forward NTT of every channel (new array, input untouched)."""
        stack, shape = self._check(stack)
        out = np.empty(shape, dtype=np.int64)
        for i in self.single:
            out[i] = self.plans[i].forward(stack[i])
        for grp in self.groups:
            g = len(grp.idx)
            a = stack[grp.idx].reshape(g, -1, self.n).copy()
            b = a.shape[1]
            mvec = grp.mi.reshape(g, 1, 1, 1)
            t = self.n
            m = 1
            while m < self.n:
                t //= 2
                view = a.reshape(g, b, m, 2 * t)
                left = view[:, :, :, :t]
                right = view[:, :, :, t:]
                w = grp.tw[:, m : 2 * m].reshape(g, 1, m, 1)
                wf = grp.tw_f[:, m : 2 * m].reshape(g, 1, m, 1)
                if grp.lazy:
                    # Deferred reduction: v is partially reduced (< m
                    # narrow, < 2m wide), so (left + v) and
                    # (left - v + bound) stay non-negative and grow the
                    # magnitude by +bound per stage — within the
                    # budgets checked at plan build.  The right half is
                    # written first so the in-place add still reads the
                    # original left half.
                    v = grp.mul(right, w, wf, (g, 1, 1, 1), full=False)
                    view[:, :, :, t:] = left - v + (2 * mvec if grp.wide else mvec)
                    left += v
                else:
                    v = grp.mul(right, w, wf, (g, 1, 1, 1))
                    s = left + v
                    d = left - v
                    view[:, :, :, :t] = np.where(s >= mvec, s - mvec, s)
                    view[:, :, :, t:] = np.where(d < 0, d + mvec, d)
                m *= 2
            if grp.lazy:
                a %= mvec.reshape(g, 1, 1)
            out[grp.idx] = a.reshape((g,) + shape[1:])
        return out

    @traced("nt.ntt.batched.inverse")
    def inverse(self, stack: np.ndarray) -> np.ndarray:
        """Inverse NTT of every channel (new array, input untouched)."""
        stack, shape = self._check(stack)
        out = np.empty(shape, dtype=np.int64)
        for i in self.single:
            out[i] = self.plans[i].inverse(stack[i])
        for grp in self.groups:
            g = len(grp.idx)
            a = stack[grp.idx].reshape(g, -1, self.n).copy()
            b = a.shape[1]
            mvec = grp.mi.reshape(g, 1, 1, 1)
            t = 1
            m = self.n // 2
            while m >= 1:
                view = a.reshape(g, b, m, 2 * t)
                left = view[:, :, :, :t]
                right = view[:, :, :, t:]
                w = grp.tw_inv[:, m : 2 * m].reshape(g, 1, m, 1)
                wf = grp.tw_inv_f[:, m : 2 * m].reshape(g, 1, m, 1)
                s = left + right
                # d = left - right + m stays in [0, 2m); the twiddle
                # product 2m^2 fits int64 for every narrow modulus and
                # wraps exactly in uint64 for wide ones — one
                # unconditional add instead of a compare-and-select
                # sweep.
                d = left - right + mvec
                view[:, :, :, :t] = np.where(s >= mvec, s - mvec, s)
                view[:, :, :, t:] = grp.mul(d, w, wf, (g, 1, 1, 1))
                t *= 2
                m //= 2
            ninv = grp.n_inv.reshape(g, 1, 1)
            a = grp.mul(a, ninv, grp.n_inv_f.reshape(g, 1, 1), (g, 1, 1))
            out[grp.idx] = a.reshape((g,) + shape[1:])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedNttPlan(n={self.n}, k={len(self.moduli)})"

    @classmethod
    def get(cls, n: int, moduli: tuple[int, ...]) -> "BatchedNttPlan":
        """The process-shared plan for ``(n, moduli)``, built at most once."""
        key = (int(n), tuple(int(m) for m in moduli))
        plan = _BATCHED_REGISTRY.get(key)
        if plan is not None:
            return plan
        plan = cls(n, key[1])
        with _PLAN_LOCK:
            return _BATCHED_REGISTRY.setdefault(key, plan)


#: Process-global ``(n, moduli) -> BatchedNttPlan`` store.
_BATCHED_REGISTRY: dict[tuple[int, tuple[int, ...]], BatchedNttPlan] = {}
