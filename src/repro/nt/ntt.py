"""Negacyclic Number Theoretic Transform (NTT).

Implements the merged-twiddle iterative transforms of Longa & Naehrig:
the forward transform is decimation-in-time Cooley-Tukey (natural input,
bit-reversed output) and the inverse is decimation-in-frequency
Gentleman-Sande (bit-reversed input, natural output).  Multiplication in
the transformed domain is elementwise, which — together with ``p ≡ 1
(mod 2N)`` primes — gives O(N log N) negacyclic polynomial products per
RNS channel.

Each stage is fully vectorised over NumPy views (see the hpc guide on
vectorising loops): a length-``n`` transform is ``log2 n`` reshaped
butterfly sweeps, with optional leading batch axes transformed together.
"""

from __future__ import annotations

import numpy as np

from repro.nt.modarith import addmod, mulmod, submod
from repro.nt.primes import is_prime
from repro.obs.tracer import traced

__all__ = ["NttPlan", "bit_reverse_permutation"]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing ``log2 n`` bits (n must be a power of 2)."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    logn = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(logn):
        rev |= ((idx >> b) & 1) << (logn - 1 - b)
    return rev


def _find_primitive_2n_root(p: int, n: int) -> int:
    """Smallest-witness primitive 2n-th root of unity modulo prime *p*.

    Requires ``p ≡ 1 (mod 2n)`` with ``n`` a power of two: then any
    ``c^((p-1)/2n)`` with ``psi^n ≡ -1`` has order exactly 2n.
    """
    if (p - 1) % (2 * n) != 0:
        raise ValueError(f"prime {p} is not ≡ 1 (mod {2 * n}); NTT of length {n} unavailable")
    exp = (p - 1) // (2 * n)
    for c in range(2, 10_000):
        psi = pow(c, exp, p)
        if pow(psi, n, p) == p - 1:
            return psi
    raise RuntimeError(f"no primitive 2n-th root found modulo {p}")  # pragma: no cover


class NttPlan:
    """Precomputed negacyclic NTT for one ``(n, prime)`` pair.

    Parameters
    ----------
    n:
        Transform length (ring degree), a power of two.
    p:
        NTT-friendly prime, ``p ≡ 1 (mod 2n)``.

    Notes
    -----
    The "evaluation domain" used throughout :mod:`repro.ckksrns` is the
    bit-reversed output order of :meth:`forward`; :meth:`inverse` undoes
    it.  ``forward(inverse(x)) == x`` and dyadic products in that domain
    equal negacyclic convolution in the coefficient domain.
    """

    def __init__(self, n: int, p: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.n = int(n)
        self.p = int(p)
        psi = _find_primitive_2n_root(self.p, self.n)
        self.psi = psi
        psi_inv = pow(psi, -1, self.p)
        rev = bit_reverse_permutation(self.n)
        pow_psi = self._power_table(psi)
        pow_psi_inv = self._power_table(psi_inv)
        # Twiddles indexed as table[m + i] at stage with m groups.
        self._tw = pow_psi[rev]
        self._tw_inv = pow_psi_inv[rev]
        self.n_inv = pow(self.n, -1, self.p)

    def _power_table(self, base: int) -> np.ndarray:
        out = np.empty(self.n, dtype=np.int64)
        acc = 1
        for i in range(self.n):
            out[i] = acc
            acc = acc * base % self.p
        return out

    # -- transforms ------------------------------------------------------

    @traced("nt.ntt.forward")
    def forward(self, a: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT along the last axis (returns a new array)."""
        a = self._prepare(a)
        p = self.p
        batch = a.shape[0]
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(batch, m, 2 * t)
            left = view[:, :, :t]
            right = view[:, :, t:]
            w = self._tw[m : 2 * m].reshape(1, m, 1)
            v = mulmod(right, w, p)
            new_left = addmod(left, v, p)
            new_right = submod(left, v, p)
            view[:, :, :t] = new_left
            view[:, :, t:] = new_right
            m *= 2
        return a.reshape(self._out_shape)

    @traced("nt.ntt.inverse")
    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT along the last axis (returns a new array)."""
        a = self._prepare(a)
        p = self.p
        batch = a.shape[0]
        t = 1
        m = self.n // 2
        while m >= 1:
            view = a.reshape(batch, m, 2 * t)
            left = view[:, :, :t]
            right = view[:, :, t:]
            w = self._tw_inv[m : 2 * m].reshape(1, m, 1)
            s = addmod(left, right, p)
            d = mulmod(submod(left, right, p), w, p)
            view[:, :, :t] = s
            view[:, :, t:] = d
            t *= 2
            m //= 2
        a = mulmod(a, np.int64(self.n_inv), p)
        return a.reshape(self._out_shape)

    def _prepare(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        if a.shape[-1] != self.n:
            raise ValueError(f"last axis must have length {self.n}, got {a.shape[-1]}")
        self._out_shape = a.shape
        return a.reshape(-1, self.n).copy()

    # -- convenience -----------------------------------------------------

    def negacyclic_convolve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a * b mod (X^n + 1, p)`` via forward/dyadic/inverse."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(mulmod(fa, fb, self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NttPlan(n={self.n}, p={self.p})"
