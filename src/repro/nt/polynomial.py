"""Multiprecision negacyclic polynomial ring ``R_q = Z_q[X]/(X^n + 1)``.

This is the coefficient representation used by the **non-RNS** CKKS
baseline (the paper's "CNN-HE" models).  Coefficients are Python big
integers held in ``object`` ndarrays, exactly as a multi-precision
library would store them — the very representation whose cost the RNS
variant removes (§II: "the original implementation relies on a
multi-precision library, which leads to higher computational
complexity").

Polynomial multiplication uses **Kronecker substitution**: coefficients
are packed into one huge integer, multiplied with CPython's subquadratic
big-int multiplication, and unpacked by byte slicing.  This keeps the
baseline honest (genuinely multiprecision) while staying subquadratic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PolyRing"]


def _as_object_array(coeffs: np.ndarray | list[int], n: int) -> np.ndarray:
    arr = np.asarray(coeffs, dtype=object)
    if arr.ndim < 1 or arr.shape[-1] != n:
        raise ValueError(f"expected {n} coefficients, got shape {arr.shape}")
    return arr


class PolyRing:
    """Arithmetic in ``Z_q[X]/(X^n + 1)`` with big-integer coefficients.

    Polynomials are ``object`` ndarrays whose trailing axis has length
    ``n`` and whose entries are canonically reduced to ``[0, q)``; the
    ring object carries the parameters and the packed-multiplication
    plan.  The coefficientwise operations (add/sub/neg, scalar multiply,
    centered lift, rounded division, modulus switch) accept stacks of
    polynomials — leading axes, e.g. a slot-packed lane axis, broadcast
    through — while Kronecker multiplication and automorphisms remain
    single-polynomial.
    """

    def __init__(self, n: int, q: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        if q < 2:
            raise ValueError(f"q must be >= 2, got {q}")
        self.n = int(n)
        self.q = int(q)
        # Slot width for Kronecker packing: coefficients of the 2n-1 term
        # product are sums of <= n products < q^2, so they fit in
        # 2*bits(q) + bits(n) bits; round up to whole bytes for slicing.
        slot_bits = 2 * self.q.bit_length() + self.n.bit_length() + 1
        self._slot_bytes = (slot_bits + 7) // 8

    # -- constructors ------------------------------------------------------

    def zero(self) -> np.ndarray:
        return np.zeros(self.n, dtype=object)

    def from_coeffs(self, coeffs: np.ndarray | list[int]) -> np.ndarray:
        """Reduce arbitrary integer coefficients into canonical ``[0, q)``."""
        arr = np.asarray(coeffs, dtype=object)
        if arr.ndim < 1 or arr.shape[-1] != self.n:
            raise ValueError(f"expected {self.n} coefficients, got shape {arr.shape}")
        return np.mod(arr, self.q)

    def constant(self, c: int) -> np.ndarray:
        p = self.zero()
        p[0] = int(c) % self.q
        return p

    def random_uniform(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform element of ``R_q`` (used for public/evaluation keys)."""
        nbytes = (self.q.bit_length() + 7) // 8 + 8  # extra bytes: negligible bias
        raw = rng.bytes(self.n * nbytes)
        out = np.empty(self.n, dtype=object)
        for i in range(self.n):
            out[i] = int.from_bytes(raw[i * nbytes : (i + 1) * nbytes], "little") % self.q
        return out

    # -- linear operations ---------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(_as_object_array(a, self.n) + _as_object_array(b, self.n), self.q)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(_as_object_array(a, self.n) - _as_object_array(b, self.n), self.q)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return np.mod(-_as_object_array(a, self.n), self.q)

    def scalar_mul(self, a: np.ndarray, c: int) -> np.ndarray:
        return np.mod(_as_object_array(a, self.n) * (int(c) % self.q), self.q)

    # -- multiplication ------------------------------------------------------

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product via Kronecker substitution.

        ``O(M(n * log q))`` where ``M`` is big-int multiplication — the
        genuine multiprecision cost profile of a non-RNS implementation.
        """
        a = _as_object_array(a, self.n)
        b = _as_object_array(b, self.n)
        if a.ndim != 1 or b.ndim != 1:
            raise ValueError("Kronecker multiplication is single-polynomial (1-D) only")
        sb = self._slot_bytes
        pa = self._pack(a, sb)
        pb = self._pack(b, sb)
        prod = pa * pb
        coeffs = self._unpack(prod, sb)
        # Negacyclic fold: X^n = -1 => r_k = c_k - c_{k+n}.
        low = coeffs[: self.n]
        high = np.zeros(self.n, dtype=object)
        high[: self.n - 1] = coeffs[self.n : 2 * self.n - 1]
        return np.mod(low - high, self.q)

    @staticmethod
    def _pack(coeffs: np.ndarray, slot_bytes: int) -> int:
        buf = bytearray(len(coeffs) * slot_bytes)
        for i, c in enumerate(coeffs):
            buf[i * slot_bytes : i * slot_bytes + slot_bytes] = int(c).to_bytes(
                slot_bytes, "little"
            )
        return int.from_bytes(bytes(buf), "little")

    def _unpack(self, big: int, slot_bytes: int) -> np.ndarray:
        total = 2 * self.n - 1
        raw = big.to_bytes(total * slot_bytes + slot_bytes, "little")
        out = np.empty(total, dtype=object)
        for k in range(total):
            out[k] = int.from_bytes(raw[k * slot_bytes : (k + 1) * slot_bytes], "little")
        return out

    # -- CKKS-specific helpers -------------------------------------------------

    def to_centered(self, a: np.ndarray) -> np.ndarray:
        """Map ``[0, q)`` representatives to ``[-q/2, q/2)`` (signed lift)."""
        a = _as_object_array(a, self.n)
        half = self.q // 2
        return np.where(a > half, a - self.q, a)

    def round_div(self, a: np.ndarray, divisor: int, new_q: int) -> np.ndarray:
        """Rounded division of the *centered* lift — the CKKS rescale core.

        Computes ``round(centered(a) / divisor) mod new_q`` coefficientwise
        (round half away from zero, matching ``[.]`` of §II).
        """
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        c = self.to_centered(a)
        d = int(divisor)
        # Object-array floordiv keeps exact big-int semantics; the two
        # branches are the same round-half-away-from-zero formula as the
        # per-coefficient loop this replaced, evaluated lane-generically.
        rounded = np.where(c >= 0, (2 * c + d) // (2 * d), -((-2 * c + d) // (2 * d)))
        return np.mod(rounded, int(new_q))

    def mod_switch(self, a: np.ndarray, new_q: int) -> np.ndarray:
        """Reduce the centered lift into a (smaller) modulus ``new_q``."""
        return np.mod(self.to_centered(a), int(new_q))

    def automorphism(self, a: np.ndarray, g: int) -> np.ndarray:
        """Galois map ``m(X) -> m(X^g)`` for odd *g* (negacyclic sign rule).

        Coefficient ``a_k`` moves to index ``g*k mod 2n``; indices >= n wrap
        with a sign flip because ``X^n = -1``.
        """
        g = int(g) % (2 * self.n)
        if g % 2 == 0:
            raise ValueError("Galois element must be odd")
        a = _as_object_array(a, self.n)
        if a.ndim != 1:
            raise ValueError("automorphism is single-polynomial (1-D) only")
        out = self.zero()
        for k in range(self.n):
            idx = (g * k) % (2 * self.n)
            if idx < self.n:
                out[idx] = (out[idx] + a[k]) % self.q
            else:
                out[idx - self.n] = (out[idx - self.n] - a[k]) % self.q
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolyRing(n={self.n}, log2(q)~{self.q.bit_length()})"
