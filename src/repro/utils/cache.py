"""Keyed object cache with observability counters.

:class:`PlaintextCache` is the compile-once / run-many store behind the
inference-plan layer (``docs/PERFORMANCE.md``): encoded plaintexts —
NTT-domain residue stacks for CKKS-RNS, big-int coefficient vectors for
multiprecision CKKS — are deterministic functions of ``(value, scale,
level, n)``, so the first encode of a key is authoritative and every
later lookup returns the *same object*, bit-identical to a fresh
encode.

Keys are plain hashable tuples built by the caller; by convention they
start with a kind tag and include every parameter the encoding depends
on, e.g. ``("scalar", n, level, scale, value)``.  Changing the level,
the scale or the ring degree therefore changes the key — a warm cache
can never leak a plaintext across parameter sets.

Hit/miss totals are pushed to the process-global metrics registry
(:mod:`repro.obs.metrics`) as ``plan.cache.hit`` / ``plan.cache.miss``
so engines and the CI smoke job can assert "zero re-encodes" by
counting, not timing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = ["PlaintextCache"]


class PlaintextCache:
    """Thread-safe LRU map from encoding keys to encoded plaintexts.

    Parameters
    ----------
    max_entries:
        Upper bound on stored plaintexts; the least recently used entry
        is evicted beyond it.  The default comfortably holds every
        weight, bias and activation constant of CNN1/CNN2.
    metric_prefix:
        Name prefix of the exported counters (``<prefix>.hit`` /
        ``<prefix>.miss`` / ``<prefix>.evict``).
    """

    def __init__(self, max_entries: int = 65536, metric_prefix: str = "plan.cache"):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.metric_prefix = metric_prefix
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def _count(self, event: str) -> None:
        # Imported lazily so repro.utils stays dependency-free at import
        # time; the registry lookup is a dict get under a lock.
        from repro.obs.metrics import get_registry

        get_registry().counter(f"{self.metric_prefix}.{event}").inc()

    def get_or_encode(self, key: Hashable, encode: Callable[[], Any]) -> Any:
        """Return the cached plaintext for *key*, encoding it on first use.

        ``encode`` runs outside the lock (it may be expensive); if two
        threads race on the same cold key, one result wins and both
        callers observe an identical encoding (encoders are
        deterministic).
        """
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                hit = self._store[key]
            else:
                hit = _MISS
        if hit is not _MISS:
            self._count("hit")
            return hit
        self._count("miss")
        value = encode()
        with self._lock:
            self._store.setdefault(key, value)
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self._count("evict")
            return self._store[key]

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def clear(self) -> None:
        """Drop every cached plaintext (counters are left untouched)."""
        with self._lock:
            self._store.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlaintextCache(entries={len(self._store)}, max={self.max_entries})"


_MISS = object()
