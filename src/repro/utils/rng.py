"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (key generation, noise sampling,
weight init, dataset synthesis) takes either an ``int`` seed or a
``numpy.random.Generator``.  These helpers normalise that convention so
results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_rng", "spawn_rngs"]


def derive_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``Generator`` from a seed, an existing generator, or ``None``.

    ``None`` yields a fresh, OS-entropy-seeded generator;  an existing
    generator is returned as-is (shared state), so callers that need
    independence should use :func:`spawn_rngs`.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split one RNG into *n* statistically independent child generators.

    Used to give each RNS residue channel its own stream so that parallel
    and serial execution sample identical noise.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    rng = derive_rng(seed_or_rng)
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
