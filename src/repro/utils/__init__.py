"""Small shared utilities: RNG handling, timing, and the plaintext cache."""

from repro.utils.cache import PlaintextCache
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.timing import LatencyStats, Timer, time_call

__all__ = ["derive_rng", "spawn_rngs", "LatencyStats", "Timer", "time_call", "PlaintextCache"]
