"""Wall-clock timing helpers used by the benchmark harness.

The paper reports latency as (min, max, avg) over repeated single-image
classification requests (Tables III-VI); :class:`LatencyStats` carries
exactly those statistics.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Timer", "LatencyStats", "time_call"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class LatencyStats:
    """Accumulates per-run latencies and exposes min/max/avg like the paper."""

    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else math.nan

    @property
    def avg(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.avg
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        out = LatencyStats()
        out.samples = self.samples + other.samples
        return out

    def row(self) -> dict[str, float]:
        """Dictionary shaped like one row of the paper's latency tables."""
        return {"min": self.min, "max": self.max, "avg": self.avg}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyStats(n={self.count}, min={self.min:.4f}, "
            f"max={self.max:.4f}, avg={self.avg:.4f})"
        )


def time_call(fn: Callable[..., Any], *args: Any, repeats: int = 1, **kwargs: Any) -> tuple[Any, LatencyStats]:
    """Call ``fn`` *repeats* times, returning the last result and its stats."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    stats = LatencyStats()
    result = None
    for _ in range(repeats):
        with Timer() as t:
            result = fn(*args, **kwargs)
        stats.add(t.elapsed)
    return result, stats
