"""Benchmark size presets.

The preset controls dataset size, training length, architecture variant
and HE parameters.  Select with ``REPRO_BENCH_PRESET`` (``tiny`` |
``reduced`` | ``paper``); the default keeps a full benchmark sweep
inside CI time on a single core.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams

__all__ = ["BenchPreset", "get_preset", "PRESETS"]


@dataclass(frozen=True)
class BenchPreset:
    """All knobs one benchmark run depends on."""

    name: str
    variant: str  # architecture size: tiny | reduced | full
    n_train: int
    n_test: int
    epochs: int
    slaf_epochs: int
    n_ring: int  # ring degree for both schemes
    accuracy_samples: int  # test images scored via the mock backend
    latency_repeats: int  # timed encrypted classifications per row
    sweep_total_bits: int = 232  # Table IV/VI precision budget
    sweep_batch: int = 256  # images per conv-stage sweep measurement

    def rns_params(self, depth: int) -> CkksRnsParams:
        """CKKS-RNS chain long enough for *depth* rescales."""
        return CkksRnsParams(
            n=self.n_ring,
            moduli_bits=(40,) + (26,) * depth,
            scale_bits=26,
            special_bits=49,
        )

    def mp_params(self, depth: int) -> CkksParams:
        """Multiprecision CKKS parameters for the same depth."""
        return CkksParams(n=self.n_ring, scale_bits=26, q0_bits=40, levels=depth)


PRESETS: dict[str, BenchPreset] = {
    "tiny": BenchPreset(
        name="tiny",
        variant="tiny",
        n_train=6000,
        n_test=1200,
        epochs=15,
        slaf_epochs=5,
        n_ring=512,
        accuracy_samples=512,
        latency_repeats=2,
    ),
    "reduced": BenchPreset(
        name="reduced",
        variant="reduced",
        n_train=10_000,
        n_test=2000,
        epochs=12,
        slaf_epochs=4,
        n_ring=1024,
        accuracy_samples=1024,
        latency_repeats=3,
    ),
    "paper": BenchPreset(
        name="paper",
        variant="full",
        n_train=50_000,
        n_test=10_000,
        epochs=30,
        slaf_epochs=5,
        n_ring=2**14,
        accuracy_samples=8192,
        latency_repeats=3,
        sweep_total_bits=366,
    ),
}


def get_preset(name: str | None = None) -> BenchPreset:
    """Resolve a preset by name or the ``REPRO_BENCH_PRESET`` env var."""
    name = name or os.environ.get("REPRO_BENCH_PRESET", "tiny")
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    return PRESETS[name]
