"""Trained-model and engine construction for the benchmark tables.

Training runs once per (architecture, preset) pair and is cached on
disk; every benchmark then loads the same weights, so latency rows are
measured on identical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.presets import BenchPreset
from repro.data import load_synth_mnist, normalize_unit, to_nchw
from repro.data.mnist_synth import _cache_dir
from repro.henn import (
    CkksBackend,
    CkksRnsBackend,
    MockBackend,
    build_cnn1,
    build_cnn2,
    compile_model,
    slafify,
)
from repro.henn.architectures import input_shape_for
from repro.henn.compiler import model_depth
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeLayer
from repro.nn import Sequential, TrainConfig, Trainer
from repro.nn.serialize import load_model, save_model

__all__ = ["TrainedModels", "prepare_models", "make_engine"]

_BUILDERS = {"cnn1": build_cnn1, "cnn2": build_cnn2}


@dataclass
class TrainedModels:
    """Everything a table generator needs for one architecture."""

    arch: str
    preset: BenchPreset
    relu_model: Sequential
    slaf_model: Sequential
    he_layers: list[HeLayer]
    depth: int
    input_shape: tuple[int, int, int]
    x_test: np.ndarray
    y_test: np.ndarray
    relu_acc: float
    slaf_acc: float


def _data_for(preset: BenchPreset):
    size = input_shape_for(preset.variant)[1]
    xtr, ytr, xte, yte = load_synth_mnist(
        n_train=preset.n_train, n_test=preset.n_test, seed=2025, image_size=size
    )
    return (
        to_nchw(normalize_unit(xtr)),
        ytr,
        to_nchw(normalize_unit(xte)),
        yte,
    )


def prepare_models(arch: str, preset: BenchPreset, cache: bool = True) -> TrainedModels:
    """Train (or load) the ReLU model, derive its SLAF twin, compile to HE."""
    if arch not in _BUILDERS:
        raise ValueError(f"arch must be one of {sorted(_BUILDERS)}")
    x, y, xv, yv = _data_for(preset)
    relu_model = _BUILDERS[arch](variant=preset.variant, seed=0)
    slaf_model_path = Path(_cache_dir()) / f"{arch}_{preset.name}_slaf_v4.npz"
    relu_model_path = Path(_cache_dir()) / f"{arch}_{preset.name}_relu_v4.npz"

    if cache and relu_model_path.exists():
        load_model(relu_model, relu_model_path)
        relu_model.eval()
    else:
        trainer = Trainer(
            relu_model,
            TrainConfig(epochs=preset.epochs, batch_size=64, max_lr=0.08, seed=0),
        )
        trainer.fit(x, y)
        if cache:
            save_model(relu_model, relu_model_path)

    # Phase 2: SLAF substitution + coefficient retraining.
    slaf_model = slafify(
        relu_model, x[: min(len(x), 4096)], y[: min(len(y), 4096)],
        degree=3, init="relu", epochs=preset.slaf_epochs, per_channel=True, seed=0,
    )
    if cache and slaf_model_path.exists():
        load_model(slaf_model, slaf_model_path)
        slaf_model.eval()
    elif cache:
        save_model(slaf_model, slaf_model_path)

    relu_model.eval()
    relu_acc = Trainer(relu_model).evaluate(xv, yv)
    slaf_acc = Trainer(slaf_model).evaluate(xv, yv)
    he_layers = compile_model(slaf_model)
    return TrainedModels(
        arch=arch,
        preset=preset,
        relu_model=relu_model,
        slaf_model=slaf_model,
        he_layers=he_layers,
        depth=model_depth(he_layers),
        input_shape=input_shape_for(preset.variant),
        x_test=xv,
        y_test=yv,
        relu_acc=relu_acc,
        slaf_acc=slaf_acc,
    )


def make_engine(models: TrainedModels, backend_kind: str, executor=None) -> HeInferenceEngine:
    """Engine factory: ``mock`` | ``ckks`` (CNN-HE) | ``ckks-rns`` (CNN-HE-RNS)."""
    preset = models.preset
    if backend_kind == "mock":
        backend = MockBackend(batch=preset.accuracy_samples, levels=models.depth + 1)
    elif backend_kind == "ckks":
        backend = CkksBackend(preset.mp_params(models.depth), seed=0)
    elif backend_kind == "ckks-rns":
        backend = CkksRnsBackend(preset.rns_params(models.depth), seed=0, executor=executor)
    else:
        raise ValueError(f"unknown backend kind {backend_kind!r}")
    return HeInferenceEngine(backend, models.he_layers, models.input_shape)
