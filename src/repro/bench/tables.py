"""Generators for every table of the paper's evaluation section.

Each ``run_tableN`` returns ``(headers, rows)`` ready for
:func:`format_table`; the ``benchmarks/`` suite prints them and
EXPERIMENTS.md records measured-vs-paper.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.presets import BenchPreset
from repro.bench.workloads import TrainedModels, make_engine
from repro.henn.hybrid import HybridRnsEngine
from repro.henn.layers import HeConv2d
from repro.henn.rnscnn import QuantizedConvSpec, RnsIntegerConv, basis_for_budget
from repro.henn.security import validate_security
from repro.utils.timing import LatencyStats

__all__ = [
    "format_table",
    "table1_rows",
    "table2_rows",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "measure_engine_latency",
    "mock_accuracy",
]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain-text table (the paper's layout, monospace)."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ------------------------------------------------------------------ Table I

#: Reference values transcribed from the paper's Table I.
TABLE1_REFERENCE: list[tuple] = [
    (2016, "CryptoNets", "MNIST", 250.0, 98.95),
    (2017, "Chabanne-NN", "MNIST", None, 97.95),
    (2018, "F-CryptoNets", "MNIST", 39.1, 98.70),
    (2018, "F-CryptoNets", "CIFAR-10", 22372.0, 76.72),
    (2018, "FHE-DiNN100", "MNIST", 1.65, 96.35),
    (2018, "TAPAS", "MNIST", 133200.0, 98.60),  # 37 hours
    (2019, "SEALion", "MNIST", 60.0, 98.91),
    (2019, "CryptoDL", "MNIST", 148.97, 98.52),
    (2019, "Lo-La", "MNIST", 2.20, 98.95),
    (2019, "Lo-La", "CIFAR-10", 730.0, 74.10),
    (2019, "nGraph-HE", "MNIST", 16.72, 98.95),
    (2019, "E2DM", "MNIST", 1.69, 98.10),
    (2021, "HCNN", "MNIST", 5.16, 99.00),
    (2022, "LeNet-HE", "MNIST", 138.0, 98.18),
    (2022, "RNS-CKKS-NN", "CIFAR-10", 10602.0, 92.43),
    (2024, "CNN-HE-SLAF (CNN1)", "MNIST", 3.13, 98.22),
    (2024, "CNN-HE-SLAF (CNN2)", "MNIST", 39.84, 99.21),
]


def table1_rows(measured: list[tuple] | None = None) -> tuple[list[str], list[list]]:
    """Table I: literature summary + our measured rows (appended)."""
    headers = ["Year", "Model", "Dataset", "Lat (s)", "Acc (%)"]
    rows: list[list] = [
        [y, m, d, ("NR" if l is None else l), a] for (y, m, d, l, a) in TABLE1_REFERENCE
    ]
    for name, lat, acc in measured or []:
        rows.append([2026, name, "synth-MNIST", lat, acc])
    return headers, rows


# ------------------------------------------------------------------ Table II


def table2_rows(params) -> tuple[list[str], list[list]]:
    """Table II: CKKS-RNS security settings + HE-standard validation."""
    from repro.ckksrns import CkksRnsContext

    ctx = CkksRnsContext(params)
    log_qp = sum(m.bit_length() for m in ctx.ext_moduli)
    report = validate_security(params.n, log_qp, 128)
    headers = ["Parameter", "Value"]
    rows = [
        ["lambda", 128 if report.secure else f"<128 (toy: margin {report.margin_bits})"],
        ["N", params.n],
        ["Delta", f"2^{params.scale_bits}"],
        ["log q", params.log_q],
        ["log qP", log_qp],
        ["L", params.levels],
        ["q", list(params.moduli_bits)],
        ["HE-standard OK", report.secure],
    ]
    return headers, rows


# -------------------------------------------------------- Tables III and V


def measure_engine_latency(engine, images: np.ndarray, repeats: int) -> LatencyStats:
    """Timed encrypted classifications (the paper's Lat column)."""
    stats = LatencyStats()
    for _ in range(repeats):
        engine.latency = LatencyStats()
        engine.classify(images)
        stats.add(engine.latency.samples[-1])
    return stats


def mock_accuracy(models: TrainedModels) -> float:
    """Full-pipeline accuracy via the plaintext-simulation backend."""
    n = min(models.preset.accuracy_samples, len(models.y_test))
    engine = make_engine(models, "mock")
    return engine.accuracy(models.x_test[:n], models.y_test[:n])


def _run_he_vs_rns(models: TrainedModels, repeats: int) -> tuple[list[str], list[list]]:
    acc = mock_accuracy(models) * 100.0
    img = models.x_test[:1]
    mp_engine = make_engine(models, "ckks")
    rns_engine = make_engine(models, "ckks-rns")
    mp = measure_engine_latency(mp_engine, img, repeats)
    rns = measure_engine_latency(rns_engine, img, repeats)
    name = models.arch.upper()
    headers = ["Model", "Training Acc (%)", "Lat min", "Lat max", "Lat avg", "Acc (%)"]
    train_acc = models.slaf_acc * 100.0
    rows = [
        [f"{name}-HE", train_acc, mp.min, mp.max, mp.avg, acc],
        [f"{name}-HE-RNS", train_acc, rns.min, rns.max, rns.avg, acc],
        ["speed-up (%)", "", "", "", 100.0 * (1 - rns.avg / mp.avg), ""],
    ]
    return headers, rows


def run_table3(models: TrainedModels, repeats: int | None = None) -> tuple[list[str], list[list]]:
    """Table III: CNN1-HE vs CNN1-HE-RNS (latency + accuracy)."""
    if models.arch != "cnn1":
        raise ValueError("run_table3 expects CNN1 models")
    return _run_he_vs_rns(models, repeats or models.preset.latency_repeats)


def run_table5(models: TrainedModels, repeats: int | None = None) -> tuple[list[str], list[list]]:
    """Table V: CNN2-HE vs CNN2-HE-RNS (latency + accuracy)."""
    if models.arch != "cnn2":
        raise ValueError("run_table5 expects CNN2 models")
    return _run_he_vs_rns(models, repeats or models.preset.latency_repeats)


# -------------------------------------------------------- Tables IV and VI


def _run_moduli_sweep(
    models: TrainedModels,
    ks: list[int],
    include_he_tail: bool = True,
) -> tuple[list[str], list[list]]:
    """Latency vs moduli-chain length for the Fig. 5 hybrid pipeline.

    The homomorphic tail is independent of *k*, so it is measured once
    and reported as a constant column; the conv-stage column carries the
    sweep signal (k = 1 is the non-decomposed multiprecision baseline —
    ``forward_direct``).
    """
    preset = models.preset
    conv = models.he_layers[0]
    assert isinstance(conv, HeConv2d)
    total_bits = preset.sweep_total_bits
    half = total_bits // 2
    spec = QuantizedConvSpec(input_bits=half, weight_bits=total_bits - half - 12)
    # The sweep measures the decomposed-convolution arithmetic, so it
    # always runs the paper-shape conv workload (5 maps, 5x5, stride 2 on
    # 28x28) — at the "paper" preset these are the trained CNN weights,
    # otherwise a fixed random instance of the same geometry.
    if models.input_shape[1] == 28:
        weight, stride, padding = conv.weight, conv.stride, conv.padding
        imgs = models.x_test[: preset.sweep_batch, 0]
    else:
        w_rng = np.random.default_rng(0)
        weight, stride, padding = w_rng.normal(0, 0.3, (5, 1, 5, 5)), 2, 1
        imgs = w_rng.random((preset.sweep_batch, 28, 28))

    he_tail = 0.0
    if include_he_tail:
        engine = HybridRnsEngine(
            make_engine(models, "ckks-rns").backend,
            models.he_layers,
            models.input_shape,
            k_moduli=max(ks),
            total_bits=total_bits,
            spec=spec,
        )
        engine.classify(models.x_test[:1])
        he_tail = engine.stages.he_stage

    headers = ["Moduli chain length", "conv stage (ms)", "HE tail (s)", "Lat (s)"]
    rows: list[list] = []
    for k in ks:
        base = basis_for_budget(k, total_bits)
        rconv = RnsIntegerConv(weight, base, stride=stride, padding=padding, spec=spec)
        samples = []
        for _ in range(3):
            t0 = time.perf_counter()
            if k == 1:
                rconv.forward_direct(imgs)
            else:
                rconv.forward(imgs)
            samples.append(time.perf_counter() - t0)
        dt = min(samples)
        rows.append([k, dt * 1e3, he_tail, dt + he_tail])
    return headers, rows


def run_table4(models: TrainedModels, ks: list[int] | None = None, include_he_tail: bool = True):
    """Table IV: CNN1-HE-RNS latency across moduli configurations."""
    if models.arch != "cnn1":
        raise ValueError("run_table4 expects CNN1 models")
    return _run_moduli_sweep(models, ks or list(range(3, 11)), include_he_tail)


def run_table6(models: TrainedModels, ks: list[int] | None = None, include_he_tail: bool = True):
    """Table VI: CNN2-HE-RNS latency across moduli configurations
    (row k = 1 is the non-decomposed baseline, as in the paper)."""
    if models.arch != "cnn2":
        raise ValueError("run_table6 expects CNN2 models")
    return _run_moduli_sweep(models, ks or [1] + list(range(3, 11)), include_he_tail)
