"""Benchmark harness: presets, trained-model cache, and table generators.

Every table and figure of the paper's evaluation section has a
generator here, wired to the ``benchmarks/`` pytest-benchmark suite.
Size presets keep default runs CI-friendly:

* ``tiny`` (default) — 8x8 inputs, narrow nets, toy ring degrees; the
  whole suite completes in minutes.
* ``reduced`` — 14x14 inputs, the architecture shapes of Figs. 3/4 at
  half resolution.
* ``paper`` — 28x28 and the Table II parameter set (N = 2^14); hours of
  pure-Python HE, run explicitly via ``REPRO_BENCH_PRESET=paper``.
"""

from repro.bench.presets import BenchPreset, get_preset
from repro.bench.workloads import TrainedModels, prepare_models
from repro.bench.record import (
    SCHEMA,
    compare_records,
    env_fingerprint,
    load_record,
    make_record,
    validate_record,
    write_record,
)
from repro.bench.tables import (
    format_table,
    table1_rows,
    table2_rows,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

__all__ = [
    "BenchPreset",
    "get_preset",
    "TrainedModels",
    "prepare_models",
    "SCHEMA",
    "env_fingerprint",
    "make_record",
    "write_record",
    "load_record",
    "validate_record",
    "compare_records",
    "format_table",
    "table1_rows",
    "table2_rows",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
]
