"""Schema-versioned benchmark records and regression comparison.

Every benchmark table the suite prints is also persisted as a
``BENCH_<name>.json`` record (schema :data:`SCHEMA`) carrying:

* the table itself (headers + rows, exactly what the ``.txt`` shows);
* ``results`` — the flat ``{op: seconds-like value}`` map regressions
  are judged on, auto-derived from the table's time-like columns
  (headers mentioning ms / sec / latency) unless passed explicitly;
* an environment fingerprint (python / numpy / platform / cores /
  preset), so a diff across machines is visibly apples-to-oranges;
* an optional snapshot of the :mod:`repro.obs` metrics registry.

:func:`compare_records` diffs two records' ``results`` and flags any
key that got more than ``threshold`` slower (all result keys are
lower-is-better by construction — only time-like columns are
auto-derived).  ``tools/bench_compare.py`` is the CLI around it; the CI
``bench-smoke`` job runs it warn-only against the committed baselines
under ``bench_artifacts/baselines/``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "SCHEMA",
    "env_fingerprint",
    "derive_results",
    "make_record",
    "write_record",
    "load_record",
    "validate_record",
    "compare_records",
]

#: Record schema identifier; bump the suffix on breaking layout changes.
SCHEMA = "repro.bench/1"

#: Header fragments marking a column as a (lower-is-better) timing.
_TIME_HINTS = ("ms", "sec", "seconds", "time", "lat", "(s)")

_REQUIRED_KEYS = ("schema", "name", "created", "env", "results", "table")
_ENV_KEYS = ("python", "numpy", "platform", "machine", "cpus", "preset")


def env_fingerprint() -> dict[str, Any]:
    """Where this record was measured (compare apples to apples)."""
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "preset": os.environ.get("REPRO_BENCH_PRESET", "tiny"),
    }


def _is_time_header(header: str) -> bool:
    h = header.lower()
    return any(hint in h for hint in _TIME_HINTS)


def derive_results(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> dict[str, float]:
    """Flat ``{"<row label>.<column>": value}`` map of the timing columns.

    The first column labels the row; every later column whose header
    looks time-like (see :data:`_TIME_HINTS`) and whose cell is numeric
    contributes one comparable result.  Non-timing columns (accuracy,
    counts, parameter settings) are deliberately excluded — regression
    comparison only makes sense where lower is better.
    """
    results: dict[str, float] = {}
    for row in rows:
        if not row:
            continue
        label = str(row[0]).strip()
        for header, cell in zip(headers[1:], list(row)[1:]):
            if not _is_time_header(str(header)):
                continue
            if isinstance(cell, bool) or not isinstance(cell, (int, float, np.number)):
                continue
            value = float(cell)
            if value != value:  # NaN rows (e.g. skipped configs) are not comparable
                continue
            results[f"{label}.{header}"] = value
    return results


def make_record(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    results: Mapping[str, float] | None = None,
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build one schema-valid record from a benchmark's table.

    Parameters
    ----------
    name:
        Artifact stem (``fig2`` → ``BENCH_fig2.json``).
    headers, rows, title:
        The table as passed to :func:`repro.bench.tables.format_table`.
    results:
        Explicit comparison map; by default derived from the table's
        time-like columns via :func:`derive_results`.
    metrics:
        Optional :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.
    """
    rows = [list(r) for r in rows]
    record: dict[str, Any] = {
        "schema": SCHEMA,
        "name": str(name),
        "title": title,
        "created": time.time(),
        "env": env_fingerprint(),
        "results": {
            k: float(v)
            for k, v in (results or derive_results(headers, rows)).items()
        },
        "table": {"headers": [str(h) for h in headers], "rows": rows},
    }
    if metrics:
        record["metrics"] = dict(metrics)
    return record


def record_path(directory: "str | Path", name: str) -> Path:
    return Path(directory) / f"BENCH_{name}.json"


def write_record(record: Mapping[str, Any], directory: "str | Path") -> Path:
    """Persist as ``<directory>/BENCH_<name>.json``; returns the path."""
    problems = validate_record(record)
    if problems:
        raise ValueError(f"refusing to write invalid record: {problems}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = record_path(directory, record["name"])
    path.write_text(json.dumps(_plain(record), indent=2, sort_keys=True) + "\n")
    return path


def load_record(path: "str | Path") -> dict[str, Any]:
    """Load and schema-validate one record; raises ``ValueError`` if bad."""
    record = json.loads(Path(path).read_text())
    problems = validate_record(record)
    if problems:
        raise ValueError(f"{path}: {problems}")
    return record


def validate_record(record: Any) -> list[str]:
    """Problems with *record* against :data:`SCHEMA`; empty means valid."""
    if not isinstance(record, dict):
        return ["record is not an object"]
    problems = [f"missing key {k!r}" for k in _REQUIRED_KEYS if k not in record]
    if record.get("schema") != SCHEMA:
        problems.append(f"schema is {record.get('schema')!r}, expected {SCHEMA!r}")
    env = record.get("env")
    if not isinstance(env, dict):
        problems.append("env is not an object")
    else:
        problems += [f"env missing {k!r}" for k in _ENV_KEYS if k not in env]
    results = record.get("results")
    if not isinstance(results, dict):
        problems.append("results is not an object")
    else:
        problems += [
            f"results[{k!r}] is not a number"
            for k, v in results.items()
            if isinstance(v, bool) or not isinstance(v, (int, float))
        ]
    table = record.get("table")
    if not isinstance(table, dict) or "headers" not in table or "rows" not in table:
        problems.append("table must carry 'headers' and 'rows'")
    return problems


def compare_records(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = 0.25,
) -> dict[str, Any]:
    """Diff two records' ``results``; flag >``threshold`` slowdowns.

    Returns ``{"name", "env_match", "rows", "regressions", "missing"}``
    where each row is ``{key, baseline, current, ratio, regression}``
    (``ratio`` = current / baseline, so 1.5 means 50% slower).  Keys
    present only in the baseline are listed under ``missing`` — a
    benchmark silently dropping an op is itself a reportable change.
    """
    base_res: Mapping[str, float] = baseline.get("results", {})
    cur_res: Mapping[str, float] = current.get("results", {})
    rows = []
    for key in sorted(base_res):
        if key not in cur_res:
            continue
        b, c = float(base_res[key]), float(cur_res[key])
        ratio = c / b if b > 0 else (1.0 if c == 0 else float("inf"))
        rows.append(
            {
                "key": key,
                "baseline": b,
                "current": c,
                "ratio": ratio,
                "regression": ratio > 1.0 + threshold,
            }
        )
    env_match = all(
        baseline.get("env", {}).get(k) == current.get("env", {}).get(k)
        for k in _ENV_KEYS
    )
    return {
        "name": current.get("name", baseline.get("name", "?")),
        "env_match": env_match,
        "rows": rows,
        "regressions": [r for r in rows if r["regression"]],
        "missing": sorted(set(base_res) - set(cur_res)),
    }


def _plain(obj: Any) -> Any:
    """JSON-serialisable copy (numpy scalars → python scalars)."""
    if isinstance(obj, Mapping):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    return obj
