"""repro — reproduction of "Efficient Privacy-Preserving Convolutional Neural
Networks with CKKS-RNS for Encrypted Image Classification" (Tchernykh et al.,
IPDPS-W 2025).

The package is organised bottom-up:

``repro.nt``
    Number-theory substrate: modular arithmetic, NTT-friendly prime
    generation, negacyclic NTT, CRT, and multiprecision polynomial rings.
``repro.rns``
    Residue Number System: bases, decomposition/recomposition of integer
    tensors (paper Fig. 2), per-channel arithmetic and base conversion.
``repro.ckks``
    Textbook (multiprecision) CKKS scheme of Cheon-Kim-Kim-Song 2017 —
    the non-RNS "CNN-HE" baseline.
``repro.ckksrns``
    Full-RNS CKKS variant of Cheon-Han-Kim-Kim-Song 2019 — the scheme the
    paper's CNN-HE-RNS models run on.
``repro.parallel``
    Executors used to dispatch independent RNS residue channels.
``repro.obs``
    Observability: nested-span tracer, metrics registry, Chrome-trace/
    JSON export and the per-primitive report (see docs/OBSERVABILITY.md).
``repro.nn``
    From-scratch NumPy neural-network training framework (Conv2d, Linear,
    BatchNorm2d, ReLU, SLAF polynomial activations, SGD + momentum,
    OneCycle LR).
``repro.data``
    Synthetic MNIST-like dataset (offline substitute for MNIST).
``repro.henn``
    The paper's core contribution: homomorphic CNN inference engines
    (CNN1/CNN2 and their RNS variants), model compiler (BN folding,
    SLAF substitution), packing strategies, and error analysis.
``repro.bench``
    Benchmark harness regenerating every table and figure in the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
