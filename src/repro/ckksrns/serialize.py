"""Ciphertext wire format.

The Fig. 1 protocol ships ciphertexts between client and cloud; this
module gives :class:`~repro.ckksrns.ciphertext.RnsCiphertext` a compact,
self-describing byte encoding (little-endian int64 channels plus a
small header).  Keys deliberately have no serialiser here — shipping
secret keys is a protocol error, and evaluation keys are generated
per-session in the examples.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.ckksrns.ciphertext import RnsCiphertext

__all__ = ["ciphertext_to_bytes", "ciphertext_from_bytes"]

_MAGIC = b"RNSC"
_VERSION = 1


def ciphertext_to_bytes(ct: RnsCiphertext) -> bytes:
    """Serialise a ciphertext (header + raw int64 channel data)."""
    header = json.dumps(
        {"v": _VERSION, "level": ct.level, "scale": ct.scale, "k": ct.k, "n": ct.n}
    ).encode()
    body0 = np.ascontiguousarray(ct.c0, dtype=np.int64).tobytes()
    body1 = np.ascontiguousarray(ct.c1, dtype=np.int64).tobytes()
    return _MAGIC + struct.pack("<I", len(header)) + header + body0 + body1


def ciphertext_from_bytes(data: bytes) -> RnsCiphertext:
    """Inverse of :func:`ciphertext_to_bytes` (validates the envelope)."""
    if data[:4] != _MAGIC:
        raise ValueError("not a serialised RNS ciphertext")
    (hlen,) = struct.unpack("<I", data[4:8])
    header = json.loads(data[8 : 8 + hlen].decode())
    if header.get("v") != _VERSION:
        raise ValueError(f"unsupported ciphertext version {header.get('v')}")
    k, n = int(header["k"]), int(header["n"])
    expect = 8 + hlen + 2 * k * n * 8
    if len(data) != expect:
        raise ValueError(f"ciphertext payload truncated: {len(data)} != {expect}")
    body = np.frombuffer(data, dtype=np.int64, offset=8 + hlen)
    c0 = body[: k * n].reshape(k, n).copy()
    c1 = body[k * n :].reshape(k, n).copy()
    return RnsCiphertext(c0, c1, level=int(header["level"]), scale=float(header["scale"]))
