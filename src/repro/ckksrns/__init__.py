"""Full-RNS CKKS — Cheon-Han-Kim-Kim-Song 2019 [9].

The scheme the paper's CNN-HE-RNS models run on.  Every ring element is
a stack of ``k`` independent residue channels (int64, NTT/evaluation
domain), so

* addition / multiplication are componentwise single-word operations,
* rescaling is the exact RNS division by the dropped prime,
* key switching uses the RNS-digit gadget (one digit per channel), and
* channels can be dispatched to :mod:`repro.parallel` executors — the
  "decomposed into several parts and propagated homomorphically and
  independently in parallel" of the paper's abstract.
"""

from repro.ckksrns.params import CkksRnsParams
from repro.ckksrns.ciphertext import RnsCiphertext, RnsCiphertextExt
from repro.ckksrns.keys import RnsGaloisKey, RnsKeyPair, RnsPublicKey, RnsRelinKey, RnsSecretKey
from repro.ckksrns.context import CkksRnsContext

__all__ = [
    "CkksRnsParams",
    "CkksRnsContext",
    "RnsCiphertext",
    "RnsCiphertextExt",
    "RnsKeyPair",
    "RnsSecretKey",
    "RnsPublicKey",
    "RnsRelinKey",
    "RnsGaloisKey",
]
