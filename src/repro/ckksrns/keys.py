"""Key material for the full-RNS scheme.

All public material is stored channelwise in the NTT domain over the
*extended* basis ``{q_0..q_L, P}`` (ciphertext chain plus the special
prime), shape ``(k_top + 1, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RnsSecretKey", "RnsPublicKey", "RnsRelinKey", "RnsGaloisKey", "RnsKeyPair"]


@dataclass
class RnsSecretKey:
    """Secret ``s`` as residue channels over the extended basis (NTT domain)."""

    s: np.ndarray  # (k_top + 1, n)
    s_coeff: np.ndarray  # signed ternary coefficients, shape (n,), for Galois keygen


@dataclass
class RnsPublicKey:
    """``pk = (b, a)`` over the ciphertext basis only (NTT domain)."""

    b: np.ndarray  # (k_top, n)
    a: np.ndarray


@dataclass
class RnsRelinKey:
    """RNS-digit relinearisation key.

    ``b[j], a[j]`` (each ``(k_top + 1, n)``, NTT domain) encode
    ``P * q̂_j * s^2`` for digit *j* — one digit per ciphertext modulus.
    """

    b: np.ndarray  # (digits, k_top + 1, n)
    a: np.ndarray


@dataclass
class RnsGaloisKey:
    """Digit key switching ``s(X^g) -> s`` (same layout as the relin key)."""

    g: int
    b: np.ndarray
    a: np.ndarray


@dataclass
class RnsKeyPair:
    """Full key material from one keygen: secret, public, relin, Galois keys.

    ``relin3`` switches ``s³`` back to ``s`` — it lets a degree-3
    extended ciphertext (from a lazy BSGS giant-step fold) relinearise
    in one merged digit sweep together with its ``s²`` component.
    """

    sk: RnsSecretKey
    pk: RnsPublicKey
    relin: RnsRelinKey
    galois: dict[int, RnsGaloisKey] = field(default_factory=dict)
    relin3: RnsRelinKey | None = None

    def public_part(self) -> "RnsKeyPair":
        """Evaluator view without the secret key."""
        return RnsKeyPair(
            sk=None,  # type: ignore[arg-type]
            pk=self.pk,
            relin=self.relin,
            galois=self.galois,
            relin3=self.relin3,
        )
