"""RNS ciphertexts: residue-channel stacks in the NTT (evaluation) domain."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RnsCiphertext"]


@dataclass
class RnsCiphertext:
    """``c = (c0, c1)`` with each component an ``(k, n)`` int64 channel stack.

    ``level`` indexes the active prefix of the moduli chain: the stack has
    ``k = level + 1`` channels.  Both components are kept in the NTT
    ("evaluation") domain so multiplications are dyadic.
    """

    c0: np.ndarray
    c1: np.ndarray
    level: int
    scale: float

    def __post_init__(self) -> None:
        if self.c0.shape != self.c1.shape:
            raise ValueError("component shape mismatch")
        if self.c0.shape[0] != self.level + 1:
            raise ValueError(
                f"level {self.level} requires {self.level + 1} channels, got {self.c0.shape[0]}"
            )

    @property
    def k(self) -> int:
        """Number of active residue channels."""
        return self.level + 1

    @property
    def n(self) -> int:
        return self.c0.shape[1]

    def copy(self) -> "RnsCiphertext":
        return RnsCiphertext(self.c0.copy(), self.c1.copy(), self.level, self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RnsCiphertext(n={self.n}, level={self.level}, k={self.k}, "
            f"scale=2^{np.log2(self.scale):.2f})"
        )
