"""RNS ciphertexts: residue-channel stacks in the NTT (evaluation) domain."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RnsCiphertext", "RnsCiphertextExt"]


@dataclass
class RnsCiphertext:
    """``c = (c0, c1)`` with each component an ``(k, n)`` int64 channel stack.

    ``level`` indexes the active prefix of the moduli chain: the stack has
    ``k = level + 1`` channels.  Both components are kept in the NTT
    ("evaluation") domain so multiplications are dyadic.
    """

    c0: np.ndarray
    c1: np.ndarray
    level: int
    scale: float

    def __post_init__(self) -> None:
        if self.c0.shape != self.c1.shape:
            raise ValueError("component shape mismatch")
        if self.c0.shape[0] != self.level + 1:
            raise ValueError(
                f"level {self.level} requires {self.level + 1} channels, got {self.c0.shape[0]}"
            )

    @property
    def k(self) -> int:
        """Number of active residue channels."""
        return self.level + 1

    @property
    def n(self) -> int:
        return self.c0.shape[1]

    def copy(self) -> "RnsCiphertext":
        return RnsCiphertext(self.c0.copy(), self.c1.copy(), self.level, self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RnsCiphertext(n={self.n}, level={self.level}, k={self.k}, "
            f"scale=2^{np.log2(self.scale):.2f})"
        )


@dataclass
class RnsCiphertextExt:
    """Extended (degree ≥ 2) ciphertext awaiting relinearisation.

    ``c = (c0, c1, c2[, c3])`` decrypts under ``(1, s, s², s³)``.  Raw
    tensor products (:meth:`~repro.ckksrns.context.CkksRnsContext.mul_raw`,
    ``square_raw``) produce degree 2; multiplying a degree-1 ciphertext by
    a raw degree-2 one (a BSGS giant-step fold) produces degree 3.
    ``deferred`` is True once a rescale has been applied while extended
    (the relinearisation will run at the lower level — the lazy win).

    Components ``c0``/``c1`` always stay in the NTT domain.  When
    ``coeff_high`` is True the high components (``c2``/``c3``) are held
    in *coefficient* domain instead: they are only ever consumed by
    relinearisation, which needs them there anyway, so a deferring
    rescale inverse-transforms them once and then divides channel-wise
    without any further forward lifts.
    """

    c0: np.ndarray
    c1: np.ndarray
    c2: np.ndarray
    level: int
    scale: float
    c3: np.ndarray | None = None
    deferred: bool = False
    coeff_high: bool = False

    def __post_init__(self) -> None:
        comps = [self.c0, self.c1, self.c2] + ([self.c3] if self.c3 is not None else [])
        if any(c.shape != self.c0.shape for c in comps[1:]):
            raise ValueError("component shape mismatch")
        if self.c0.shape[0] != self.level + 1:
            raise ValueError(
                f"level {self.level} requires {self.level + 1} channels, got {self.c0.shape[0]}"
            )

    @property
    def degree(self) -> int:
        """Highest secret-key power the ciphertext decrypts under."""
        return 2 if self.c3 is None else 3

    @property
    def k(self) -> int:
        return self.level + 1

    @property
    def n(self) -> int:
        return self.c0.shape[1]

    def components(self) -> list[np.ndarray]:
        out = [self.c0, self.c1, self.c2]
        if self.c3 is not None:
            out.append(self.c3)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RnsCiphertextExt(n={self.n}, degree={self.degree}, level={self.level}, "
            f"scale=2^{np.log2(self.scale):.2f}, deferred={self.deferred})"
        )
