"""The full-RNS CKKS context: keygen and all homomorphic primitives.

Representation invariants
-------------------------
* Every polynomial is a stack of residue channels, shape ``(k, n)``
  ``int64``, canonically reduced per channel, held in the **NTT domain**
  unless a function says otherwise.
* A ciphertext at ``level`` uses the chain prefix ``q_0 .. q_level``.
* Key switching uses the RNS-digit gadget with **one digit per channel**
  and a single special prime ``P``:  digit *j* of ``x`` is
  ``D_j(x) = [x * (Q_top/q_j)^{-1}]_{q_j}`` and the key for digit *j*
  encodes ``P * (Q_top/q_j) * s'``.  Reconstruction
  ``sum_j D_j(x) * (Q_top/q_j) ≡ x (mod q_i)`` holds for every active
  channel *i*, at every level, because each omitted factor contains
  ``q_i``.  After accumulation the special channel is divided out
  exactly (rescale-by-P), leaving noise ``≈ k * q_max * e / P``.

Channel independence is exposed through an :class:`repro.parallel`
executor: NTT batches and key-switch digits fan out per channel — this
is the parallelism Tables IV/VI sweep.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.ckks.encoder import CkksEncoder
from repro.ckks.sampling import DEFAULT_SIGMA, sample_gaussian, sample_hwt, sample_zo
from repro.ckksrns.ciphertext import RnsCiphertext, RnsCiphertextExt
from repro.ckksrns.keys import (
    RnsGaloisKey,
    RnsKeyPair,
    RnsPublicKey,
    RnsRelinKey,
    RnsSecretKey,
)
from repro.ckksrns.params import CkksRnsParams
from repro.nt.kernels import (
    fused_weighted_sum,
    scale_channels,
    scale_positions,
    weighted_accumulate,
)
from repro.nt.modarith import addmod, mulmod, negmod, submod
from repro.nt.ntt import BatchedNttPlan, NttPlan
from repro.nt.primes import gen_ntt_primes
from repro.obs.metrics import get_registry
from repro.obs.tracer import traced
from repro.rns.base import RnsBase
from repro.parallel import Executor, SerialExecutor, make_executor
from repro.parallel.shm import dispatch_channels
from repro.utils.cache import PlaintextCache
from repro.utils.rng import derive_rng

__all__ = ["CkksRnsContext", "RnsPlaintext"]

#: Batch-axis chunk budget for the digit key switch, in elements of the
#: ``(k+1, k, B_chunk, ..., n)`` lifted-digit tensor (int64).  1 << 21
#: elements = 16 MB keeps the decomposition temporaries cache-friendly;
#: lane-packed serving batches otherwise scale super-linearly (measured
#: ~2x worse than linear at 16 lanes unchunked).  Default only — override
#: per context via the ``keyswitch_chunk_elems`` kwarg or the
#: ``REPRO_KEYSWITCH_CHUNK_ELEMS`` environment variable.
KEYSWITCH_CHUNK_ELEMS = 1 << 21

#: Default byte budget for the hoisted digit-decomposition cache
#: (``keyswitch.hoist.*``).  Override via the ``hoist_cache_bytes``
#: kwarg or ``REPRO_HOIST_CACHE_BYTES``; 0 disables hoisting.
HOIST_CACHE_BYTES = 64 << 20


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


class _NttChannel:
    """Picklable per-channel NTT worker for zero-copy dispatch.

    Workers re-resolve their :class:`~repro.nt.ntt.NttPlan` through the
    shared registry, so fork-started processes reuse the parent's
    twiddle tables and spawn-started ones build each table once.
    """

    __slots__ = ("n", "moduli", "forward")

    def __init__(self, n: int, moduli: list[int], forward: bool):
        self.n = n
        self.moduli = moduli
        self.forward = forward

    def __call__(self, arrays, i: int) -> np.ndarray:
        plan = NttPlan.get(self.n, self.moduli[i])
        row = arrays["stack"][i]
        return plan.forward(row) if self.forward else plan.inverse(row)


class _WeightedSumChannel:
    """Picklable per-channel fused weighted sum (both components)."""

    __slots__ = ("moduli",)

    def __init__(self, moduli: list[int]):
        self.moduli = moduli

    def __call__(self, arrays, i: int) -> tuple[np.ndarray, np.ndarray]:
        m = self.moduli[i]
        w = arrays["w"][:, i]
        return (
            weighted_accumulate(arrays["c0"][:, i, :], w, m),
            weighted_accumulate(arrays["c1"][:, i, :], w, m),
        )


class _KeySwitchChannel:
    """Picklable per-target-modulus digit inner product.

    All *k* digits are lifted into target modulus ``ext[i]``, batched
    through one NTT, then inner-multiplied with the digit keys.  Sums of
    *k* products < 2**50 stay exact in int64 for k <= 8192.
    """

    __slots__ = ("n", "ext", "k", "k_top")

    def __init__(self, n: int, ext: list[int], k: int, k_top: int):
        self.n = n
        self.ext = ext
        self.k = k
        self.k_top = k_top

    def __call__(self, arrays, i: int) -> tuple[np.ndarray, np.ndarray]:
        m = self.ext[i]
        k = self.k
        centered = arrays["centered"]
        lifted_eval = NttPlan.get(self.n, m).forward(np.mod(centered, np.int64(m)))
        key_idx = i if i < k else self.k_top  # special prime is last in key
        # Key rows (pre-sliced to the active digit rows — possibly p*k of
        # them for a merged multi-key switch) broadcast over any batch
        # axes between digit and coeff.
        kshape = (centered.shape[0],) + (1,) * (centered.ndim - 2) + (centered.shape[-1],)
        p0 = mulmod(lifted_eval, arrays["kb"][:, key_idx].reshape(kshape), m)
        p1 = mulmod(lifted_eval, arrays["ka"][:, key_idx].reshape(kshape), m)
        return p0.sum(axis=0) % m, p1.sum(axis=0) % m


class RnsPlaintext:
    """Encoded plaintext in the NTT domain, reusable across ciphertexts."""

    __slots__ = ("data", "scale", "level")

    def __init__(self, data: np.ndarray, scale: float, level: int):
        self.data = data  # (level+1, n) eval domain
        self.scale = scale
        self.level = level


def _galois_permute(a: np.ndarray, g: int, n: int, q: int) -> np.ndarray:
    """Coefficient-domain Galois map ``m(X) -> m(X^g)`` on one channel."""
    idx = (g * np.arange(n, dtype=np.int64)) % (2 * n)
    pos = idx % n
    sign_flip = idx >= n
    out = np.zeros(n, dtype=np.int64)
    vals = np.where(sign_flip, negmod(a, q), a)
    out[pos] = vals
    return out


class CkksRnsContext:
    """All CKKS-RNS primitives bound to one parameter set.

    Parameters
    ----------
    params:
        The scheme parameters.
    executor:
        Channel-dispatch executor (default serial).  Thread or process
        executors realise the paper's per-residue parallelism.  A kind
        string (``"thread"`` …) builds an executor the context owns and
        releases in :meth:`close` (the context is a context manager).
    keyswitch_chunk_elems:
        Batch-axis chunk budget for digit key switching (elements of the
        lifted-digit tensor).  Defaults to ``REPRO_KEYSWITCH_CHUNK_ELEMS``
        or :data:`KEYSWITCH_CHUNK_ELEMS`.
    hoist_cache_bytes:
        Byte budget for the hoisted digit-decomposition cache (0
        disables).  Defaults to ``REPRO_HOIST_CACHE_BYTES`` or
        :data:`HOIST_CACHE_BYTES`.
    """

    def __init__(
        self,
        params: CkksRnsParams,
        executor: Executor | str | None = None,
        keyswitch_chunk_elems: int | None = None,
        hoist_cache_bytes: int | None = None,
    ):
        self.params = params
        self.n = params.n
        self._owned_executor: Executor | None = None
        if isinstance(executor, str):
            executor = self._owned_executor = make_executor(executor)
        self.executor = executor or SerialExecutor()
        self.keyswitch_chunk_elems = (
            int(keyswitch_chunk_elems)
            if keyswitch_chunk_elems is not None
            else _env_int("REPRO_KEYSWITCH_CHUNK_ELEMS", KEYSWITCH_CHUNK_ELEMS)
        )
        self.hoist_cache_bytes = (
            int(hoist_cache_bytes)
            if hoist_cache_bytes is not None
            else _env_int("REPRO_HOIST_CACHE_BYTES", HOIST_CACHE_BYTES)
        )
        #: Content-addressed lifted-digit cache: (level, shape, digest) ->
        #: NTT'd digit tensor.  Rescale or a level drop changes both the
        #: content digest and the level key, so stale entries can never
        #: hit; they age out of the byte budget FIFO-style (see
        #: :meth:`clear_hoist_cache` for explicit invalidation).
        self._hoist_cache: dict[tuple, np.ndarray] = {}
        self._hoist_bytes = 0
        self.encoder = CkksEncoder(params.n)
        # Ciphertext moduli then the special prime, all distinct NTT primes.
        all_bits = list(params.moduli_bits) + [params.special_bits]
        primes = gen_ntt_primes(all_bits, params.n)
        self.moduli: list[int] = primes[:-1]
        self.p_special: int = primes[-1]
        self.ext_moduli: list[int] = self.moduli + [self.p_special]
        self.k_top = len(self.moduli)
        self.plans = {m: NttPlan.get(params.n, m) for m in self.ext_moduli}
        #: Optional compile-once store for encoded plaintexts; installed
        #: by the inference-plan layer (:mod:`repro.henn.plan`) so scalar
        #: ``add_plain`` constants are encoded once per (value, scale,
        #: level) instead of per call.
        self.plain_cache: PlaintextCache | None = None
        self._bases = {k: RnsBase(self.moduli[:k], n=params.n) for k in range(1, self.k_top + 1)}
        # Digit-gadget constants w.r.t. the top basis Q_top.
        q_top = self._bases[self.k_top].modulus
        self.hat_top = [q_top // m for m in self.moduli]
        self.hat_inv_top = [pow(h, -1, m) for h, m in zip(self.hat_top, self.moduli)]
        #: factor_table[j][i] = (P * hat_j) mod ext_moduli[i]
        self.factor_table = [
            np.array(
                [(self.p_special * hj) % mi for mi in self.ext_moduli], dtype=np.int64
            )
            for hj in self.hat_top
        ]
        self.p_inv = [pow(self.p_special % m, -1, m) for m in self.moduli]

    # -- small helpers --------------------------------------------------------

    def close(self) -> None:
        """Release the context-owned executor, if any (idempotent)."""
        ex, self._owned_executor = self._owned_executor, None
        if ex is not None:
            ex.close()
        self.clear_hoist_cache()

    def clear_hoist_cache(self) -> None:
        """Drop every hoisted digit decomposition (frees the byte budget)."""
        self._hoist_cache.clear()
        self._hoist_bytes = 0

    def __enter__(self) -> "CkksRnsContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def top_level(self) -> int:
        return self.k_top - 1

    @property
    def slots(self) -> int:
        return self.n // 2

    def base(self, level: int) -> RnsBase:
        return self._bases[level + 1]

    def _ntt(self, stack: np.ndarray, moduli: list[int]) -> np.ndarray:
        """Forward NTT of a channel stack.

        Serial execution batches every narrow channel through one
        :class:`~repro.nt.ntt.BatchedNttPlan` stage loop (bit-identical
        to per-channel transforms); parallel executors fan the channels
        out instead — that *is* the paper's per-residue parallelism.
        """
        if isinstance(self.executor, SerialExecutor):
            return BatchedNttPlan.get(self.n, tuple(moduli)).forward(stack)
        rows = dispatch_channels(
            self.executor,
            _NttChannel(self.n, moduli, forward=True),
            {"stack": stack},
            list(range(len(moduli))),
        )
        return np.stack(rows)

    def _intt(self, stack: np.ndarray, moduli: list[int]) -> np.ndarray:
        """Inverse NTT of a channel stack (see :meth:`_ntt` on dispatch)."""
        if isinstance(self.executor, SerialExecutor):
            return BatchedNttPlan.get(self.n, tuple(moduli)).inverse(stack)
        rows = dispatch_channels(
            self.executor,
            _NttChannel(self.n, moduli, forward=False),
            {"stack": stack},
            list(range(len(moduli))),
        )
        return np.stack(rows)

    def _decompose_small(self, coeffs: np.ndarray, moduli: list[int]) -> np.ndarray:
        """Residues of small signed int64 coefficients (keys, noise)."""
        return np.stack([np.mod(coeffs, np.int64(m)) for m in moduli])

    def _decompose_big(self, coeffs: np.ndarray, moduli: list[int]) -> np.ndarray:
        """Residues of big-integer (object) coefficients (encoded plaintexts)."""
        return np.stack(
            [np.mod(coeffs.astype(object), m).astype(np.int64) for m in moduli]
        )

    # -- key generation --------------------------------------------------------

    @traced("ckksrns.keygen")
    def keygen(
        self, seed: int | np.random.Generator | None = None, rotations: tuple[int, ...] = ()
    ) -> RnsKeyPair:
        """Generate secret/public/relinearisation (and optional Galois) keys.

        Parameters
        ----------
        seed:
            Deterministic seed or ready :class:`numpy.random.Generator`.
        rotations:
            Slot rotations to pre-generate Galois keys for.

        Returns
        -------
        :class:`~repro.ckksrns.keys.RnsKeyPair` holding ``sk``, ``pk``,
        ``relin`` and any requested ``galois`` keys.
        """
        rng = derive_rng(seed)
        n = self.n
        s_coeff = sample_hwt(n, self.params.hw, rng)
        s_ext = self._ntt(self._decompose_small(s_coeff, self.ext_moduli), self.ext_moduli)
        # Public key over the ciphertext basis.
        a = self._uniform(self.moduli, rng)
        e = self._ntt(
            self._decompose_small(sample_gaussian(n, rng, self.params.sigma), self.moduli),
            self.moduli,
        )
        s_q = s_ext[: self.k_top]
        b = np.stack(
            [
                submod(e[i], mulmod(a[i], s_q[i], m), m)
                for i, m in enumerate(self.moduli)
            ]
        )
        s2_ext = self._square_ext(s_ext)
        relin = self._gen_switch_key(s_ext, s2_ext, rng)
        # s^3 evaluation key: lets a degree-3 extended ciphertext (lazy
        # BSGS giant-step fold) relinearise in one merged digit sweep.
        s3_ext = np.stack(
            [mulmod(s2_ext[i], s_ext[i], m) for i, m in enumerate(self.ext_moduli)]
        )
        relin3 = self._gen_switch_key(s_ext, s3_ext, rng)
        kp = RnsKeyPair(
            sk=RnsSecretKey(s=s_ext, s_coeff=s_coeff),
            pk=RnsPublicKey(b=b, a=a),
            relin=RnsRelinKey(b=relin[0], a=relin[1]),
            relin3=RnsRelinKey(b=relin3[0], a=relin3[1]),
        )
        for r in rotations:
            self.add_galois_key(kp, r, rng)
        return kp

    def _square_ext(self, s_ext: np.ndarray) -> np.ndarray:
        return np.stack(
            [mulmod(s_ext[i], s_ext[i], m) for i, m in enumerate(self.ext_moduli)]
        )

    def _uniform(self, moduli: list[int], rng: np.random.Generator) -> np.ndarray:
        return np.stack(
            [rng.integers(0, m, size=self.n, dtype=np.int64) for m in moduli]
        )

    def _gen_switch_key(
        self, s_ext: np.ndarray, target_ext: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Digit keys encoding ``P * hat_j * target`` under ``s`` (NTT domain)."""
        digits_b = []
        digits_a = []
        for j in range(self.k_top):
            a_j = self._uniform(self.ext_moduli, rng)
            e_j = self._ntt(
                self._decompose_small(
                    sample_gaussian(self.n, rng, self.params.sigma), self.ext_moduli
                ),
                self.ext_moduli,
            )
            rows_b = []
            for i, m in enumerate(self.ext_moduli):
                t = mulmod(target_ext[i], np.int64(self.factor_table[j][i]), m)
                t = addmod(t, e_j[i], m)
                t = submod(t, mulmod(a_j[i], s_ext[i], m), m)
                rows_b.append(t)
            digits_b.append(np.stack(rows_b))
            digits_a.append(a_j)
        return np.stack(digits_b), np.stack(digits_a)

    def add_galois_key(self, kp: RnsKeyPair, rotation: int, rng: np.random.Generator) -> None:
        """Generate the key for left-rotation by *rotation* slots (idempotent)."""
        g = self.galois_element(rotation)
        if g in kp.galois:
            return
        sg_coeff = self._galois_signed(kp.sk.s_coeff, g)
        sg_ext = self._ntt(self._decompose_small(sg_coeff, self.ext_moduli), self.ext_moduli)
        b, a = self._gen_switch_key(kp.sk.s, sg_ext, rng)
        kp.galois[g] = RnsGaloisKey(g=g, b=b, a=a)

    def galois_element(self, rotation: int) -> int:
        return pow(5, rotation % self.slots, 2 * self.n)

    @staticmethod
    def _galois_signed(coeffs: np.ndarray, g: int) -> np.ndarray:
        """Galois map on small signed coefficients (no modulus)."""
        n = coeffs.shape[0]
        idx = (g * np.arange(n, dtype=np.int64)) % (2 * n)
        pos = idx % n
        out = np.zeros(n, dtype=np.int64)
        out[pos] = np.where(idx >= n, -coeffs, coeffs)
        return out

    # -- encoding / encryption ----------------------------------------------------

    @traced("ckksrns.encode")
    def encode(self, values: np.ndarray, scale: float | None = None, level: int | None = None) -> RnsPlaintext:
        """Encode a slot vector into NTT-domain residue channels.

        Parameters
        ----------
        values:
            Up to ``n/2`` real or complex slot values.
        scale:
            Encoding scale Δ (defaults to the parameter set's).
        level:
            Target level (defaults to the top of the chain).

        Returns
        -------
        :class:`RnsPlaintext` reusable across ciphertexts at ``level``.
        """
        scale = float(scale or self.params.scale)
        level = self.top_level if level is None else level
        get_registry().counter("plan.encode.fresh").inc()
        m = self.encoder.encode(values, scale)
        moduli = self.moduli[: level + 1]
        stack = self._ntt(self._decompose_big(m, moduli), moduli)
        return RnsPlaintext(stack, scale, level)

    @traced("ckksrns.encrypt")
    def encrypt(
        self,
        pk: RnsPublicKey,
        values: np.ndarray,
        rng: int | np.random.Generator | None = None,
        scale: float | None = None,
    ) -> RnsCiphertext:
        """``Encrypt(z, Δ, pk)`` at top level.

        Parameters
        ----------
        pk:
            Public key from :meth:`keygen`.
        values:
            Slot vector to protect (up to ``n/2`` values).
        rng:
            Seed or generator for the encryption randomness.
        scale:
            Encoding scale Δ (defaults to the parameter set's).

        Returns
        -------
        Fresh :class:`~repro.ckksrns.ciphertext.RnsCiphertext` at the
        top level.
        """
        rng = derive_rng(rng)
        scale = float(scale or self.params.scale)
        m = self.encoder.encode(values, scale)
        m_stack = self._ntt(self._decompose_big(m, self.moduli), self.moduli)
        return self._encrypt_stack(pk, m_stack, scale, rng)

    @traced("ckksrns.encrypt_many")
    def encrypt_many(
        self,
        pk: RnsPublicKey,
        values_rows: "Sequence[np.ndarray]",
        rng: int | np.random.Generator | None = None,
        scale: float | None = None,
    ) -> list[RnsCiphertext]:
        """Encrypt many slot vectors through shared batched transforms.

        Bit-identical to ``[encrypt(pk, v, rng) for v in values_rows]``
        with the same generator: the encryption randomness is drawn in
        exactly that order (zo, e0, e1 per row), only the NTTs of the
        message/randomness stacks are fused into one ``(k, 4B, n)``
        batched transform instead of ``4B`` separate ``(k, n)`` ones.

        Parameters
        ----------
        pk:
            Public key from :meth:`keygen`.
        values_rows:
            Slot vectors to protect, one fresh ciphertext each.
        rng, scale:
            As on :meth:`encrypt`.

        Returns
        -------
        One top-level :class:`RnsCiphertext` per input row.
        """
        rng = derive_rng(rng)
        scale = float(scale or self.params.scale)
        rows = [
            self.encoder.encode(np.asarray(v, dtype=np.float64), scale)
            for v in values_rows
        ]
        if not rows:
            return []
        b = len(rows)
        small = np.empty((3 * b, self.n), dtype=np.int64)
        for i in range(b):
            small[3 * i] = sample_zo(self.n, rng)
            small[3 * i + 1] = sample_gaussian(self.n, rng, self.params.sigma)
            small[3 * i + 2] = sample_gaussian(self.n, rng, self.params.sigma)
        m_res = self._decompose_big(np.stack(rows), self.moduli)  # (k, B, n)
        s_res = self._decompose_small(small, self.moduli)  # (k, 3B, n)
        ev = self._ntt(np.concatenate([m_res, s_res], axis=1), self.moduli)
        m_ev = ev[:, :b]
        v = ev[:, b::3]
        e0 = ev[:, b + 1 :: 3]
        e1 = ev[:, b + 2 :: 3]
        c0 = np.stack(
            [
                addmod(
                    addmod(mulmod(v[i], pk.b[i], m), m_ev[i], m), e0[i], m
                )
                for i, m in enumerate(self.moduli)
            ]
        )
        c1 = np.stack(
            [
                addmod(mulmod(v[i], pk.a[i], m), e1[i], m)
                for i, m in enumerate(self.moduli)
            ]
        )
        return [
            RnsCiphertext(
                np.ascontiguousarray(c0[:, j]),
                np.ascontiguousarray(c1[:, j]),
                self.top_level,
                scale,
            )
            for j in range(b)
        ]

    def _encrypt_stack(
        self, pk: RnsPublicKey, m_stack: np.ndarray, scale: float, rng: np.random.Generator
    ) -> RnsCiphertext:
        n = self.n
        v = self._ntt(self._decompose_small(sample_zo(n, rng), self.moduli), self.moduli)
        e0 = self._ntt(
            self._decompose_small(sample_gaussian(n, rng, self.params.sigma), self.moduli),
            self.moduli,
        )
        e1 = self._ntt(
            self._decompose_small(sample_gaussian(n, rng, self.params.sigma), self.moduli),
            self.moduli,
        )
        c0 = np.stack(
            [
                addmod(addmod(mulmod(v[i], pk.b[i], m), m_stack[i], m), e0[i], m)
                for i, m in enumerate(self.moduli)
            ]
        )
        c1 = np.stack(
            [
                addmod(mulmod(v[i], pk.a[i], m), e1[i], m)
                for i, m in enumerate(self.moduli)
            ]
        )
        return RnsCiphertext(c0, c1, self.top_level, scale)

    @traced("ckksrns.decrypt")
    def decrypt(self, sk: RnsSecretKey, ct: RnsCiphertext, count: int | None = None) -> np.ndarray:
        """``Decrypt(c, Δ, sk)``: complex slot vector.

        Parameters
        ----------
        sk:
            Secret key.
        ct:
            Ciphertext at any level of the chain.
        count:
            If given, truncate the returned vector to this many slots.

        Returns
        -------
        Complex slot values (use :meth:`decrypt_real` for the real parts).
        """
        moduli = self.moduli[: ct.k]
        m_eval = np.stack(
            [
                addmod(ct.c0[i], mulmod(ct.c1[i], sk.s[i], m), m)
                for i, m in enumerate(moduli)
            ]
        )
        m_coeff = self._intt(m_eval, moduli)
        base = self.base(ct.level)
        centered = base.compose_centered([m_coeff[i] for i in range(ct.k)])
        z = self.encoder.decode(centered, ct.scale)
        return z[:count] if count is not None else z

    def decrypt_real(self, sk: RnsSecretKey, ct: RnsCiphertext, count: int | None = None) -> np.ndarray:
        return np.real(self.decrypt(sk, ct, count))

    # -- arithmetic ------------------------------------------------------------------

    def _align(self, a: RnsCiphertext, b: RnsCiphertext) -> tuple[RnsCiphertext, RnsCiphertext]:
        if a.level > b.level:
            a = self.mod_switch_to(a, b.level)
        elif b.level > a.level:
            b = self.mod_switch_to(b, a.level)
        return a, b

    def _check_scales(self, sa: float, sb: float, op: str) -> None:
        # RNS primes only approximate Δ, so scales drift slightly; a 0.1%
        # mismatch adds ~2^-10 relative error, far below SLAF noise.
        if not np.isclose(sa, sb, rtol=1e-3):
            raise ValueError(f"scale mismatch in {op}: {sa} vs {sb}")

    @traced("ckksrns.add")
    def add(self, a: RnsCiphertext, b: RnsCiphertext) -> RnsCiphertext:
        """Homomorphic addition (levels aligned, scales must agree)."""
        a, b = self._align(a, b)
        self._check_scales(a.scale, b.scale, "add")
        moduli = self.moduli[: a.k]
        c0 = np.stack([addmod(a.c0[i], b.c0[i], m) for i, m in enumerate(moduli)])
        c1 = np.stack([addmod(a.c1[i], b.c1[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, c1, a.level, a.scale)

    @traced("ckksrns.sub")
    def sub(self, a: RnsCiphertext, b: RnsCiphertext) -> RnsCiphertext:
        """Homomorphic subtraction (levels aligned, scales must agree)."""
        a, b = self._align(a, b)
        self._check_scales(a.scale, b.scale, "sub")
        moduli = self.moduli[: a.k]
        c0 = np.stack([submod(a.c0[i], b.c0[i], m) for i, m in enumerate(moduli)])
        c1 = np.stack([submod(a.c1[i], b.c1[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, c1, a.level, a.scale)

    def negate(self, a: RnsCiphertext) -> RnsCiphertext:
        moduli = self.moduli[: a.k]
        c0 = np.stack([negmod(a.c0[i], m) for i, m in enumerate(moduli)])
        c1 = np.stack([negmod(a.c1[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, c1, a.level, a.scale)

    @traced("ckksrns.add_plain")
    def add_plain(self, a: RnsCiphertext, values: "np.ndarray | float | RnsPlaintext") -> RnsCiphertext:
        """Add a plaintext encoded at the ciphertext's scale.

        Accepts a slot vector, a scalar (broadcast to all slots; encoded
        through :attr:`plain_cache` when the inference-plan layer has
        installed one) or an already-encoded :class:`RnsPlaintext` at
        the ciphertext's level.
        """
        if isinstance(values, RnsPlaintext):
            pt = values
            if pt.level != a.level:
                raise ValueError(f"plaintext level {pt.level} != ciphertext level {a.level}")
        elif np.isscalar(values):
            pt = self._scalar_plain(float(values), a.scale, a.level)
        else:
            pt = self.encode(values, a.scale, a.level)
        moduli = self.moduli[: a.k]
        # pt.data rows are (n,); they broadcast over any batch axes of a.
        c0 = np.stack([addmod(a.c0[i], pt.data[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, a.c1.copy(), a.level, a.scale)

    def _scalar_plain(self, v: float, scale: float, level: int) -> RnsPlaintext:
        """Broadcast-scalar plaintext, via :attr:`plain_cache` when installed."""
        if self.plain_cache is not None:
            key = ("rns.scalar", self.n, level, float(scale), v)
            return self.plain_cache.get_or_encode(
                key, lambda: self.encode(np.full(self.slots, v), scale, level)
            )
        return self.encode(np.full(self.slots, v), scale, level)

    @traced("ckksrns.add_plain_many")
    def add_plain_many(self, a: RnsCiphertext, values: np.ndarray) -> RnsCiphertext:
        """Position-wise scalar addition over a batched ciphertext.

        ``a`` holds ``B`` ciphertexts as ``(k, B, ..., n)`` component
        stacks (extra trailing axes — e.g. a slot-packed lane axis —
        broadcast position *b*'s value over every lane); ``values[b]``
        is broadcast over the slots of position *b*.  Each *distinct*
        value is encoded once (through :attr:`plain_cache` when
        installed) and the encoded rows are gathered per position — the
        "encode coefficients once per layer" path of the SLAF
        activations.  Bit-identical per position to :meth:`add_plain`.
        """
        vals = np.asarray(values, dtype=np.float64)
        if a.c0.ndim < 3 or vals.shape != (a.c0.shape[1],):
            raise ValueError("add_plain_many needs a (k, B, ..., n) batch and B values")
        moduli = self.moduli[: a.k]
        uniq, inverse = np.unique(vals, return_inverse=True)
        pts = np.stack(
            [self._scalar_plain(float(v), a.scale, a.level).data for v in uniq]
        )  # (U, k, n)
        sel = np.ascontiguousarray(pts[inverse].transpose(1, 0, 2))  # (k, B, n)
        if a.c0.ndim > 3:  # lane axes between position and coefficients
            sel = sel.reshape(sel.shape[:2] + (1,) * (a.c0.ndim - 3) + sel.shape[-1:])
        c0 = np.stack([addmod(a.c0[i], sel[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, a.c1.copy(), a.level, a.scale)

    @traced("ckksrns.mul_plain_scalar")
    def mul_plain_scalar(self, a: RnsCiphertext, scalar: float, plain_scale: float | None = None) -> RnsCiphertext:
        """Multiply by one real scalar — a constant per channel, no NTT."""
        plain_scale = float(plain_scale or self.params.scale)
        c = int(round(float(scalar) * plain_scale))
        moduli = self.moduli[: a.k]
        # Residues once, then one broadcast multiply per component stack —
        # no per-modulus re-stacking.
        residues = np.array([c % m for m in moduli], dtype=np.int64)
        c0 = scale_channels(a.c0, residues, moduli)
        c1 = scale_channels(a.c1, residues, moduli)
        return RnsCiphertext(c0, c1, a.level, a.scale * plain_scale)

    @traced("ckksrns.mul_plain_scalar_many")
    def mul_plain_scalar_many(
        self, a: RnsCiphertext, scalars: np.ndarray, plain_scale: float | None = None
    ) -> RnsCiphertext:
        """Position-wise scalar multiply over a batched ciphertext.

        ``a`` holds ``B`` ciphertexts as ``(k, B, ..., n)`` component
        stacks (extra trailing axes — e.g. a slot-packed lane axis —
        broadcast position *b*'s scalar over every lane); position *b*
        is multiplied by ``scalars[b]`` quantized at *plain_scale* — the
        kernel that applies per-channel SLAF coefficients to a whole
        feature map in one sweep.  Quantization
        (``round(s * plain_scale)``) and residue reduction match
        :meth:`mul_plain_scalar` exactly, so each position's result is
        bit-identical to the one-at-a-time path.
        """
        plain_scale = float(plain_scale or self.params.scale)
        if a.c0.ndim < 3:
            raise ValueError("mul_plain_scalar_many needs a (k, B, ..., n) batch")
        consts = np.array(
            [int(round(float(s) * plain_scale)) for s in scalars], dtype=np.int64
        )
        if consts.shape[0] != a.c0.shape[1]:
            raise ValueError("one scalar per batched position required")
        moduli = self.moduli[: a.k]
        mods = np.asarray(moduli, dtype=np.int64)
        residues = np.mod(consts[None, :], mods[:, None])  # (k, B)
        c0 = scale_positions(a.c0, residues, moduli)
        c1 = scale_positions(a.c1, residues, moduli)
        return RnsCiphertext(c0, c1, a.level, a.scale * plain_scale)

    @traced("ckksrns.mul_plain")
    def mul_plain(self, a: RnsCiphertext, plain: "RnsPlaintext | np.ndarray", plain_scale: float | None = None) -> RnsCiphertext:
        """Multiply by an encoded plaintext vector (dyadic per channel)."""
        if not isinstance(plain, RnsPlaintext):
            plain = self.encode(np.asarray(plain), plain_scale or self.params.scale, a.level)
        if plain.level < a.level:
            a = self.mod_switch_to(a, plain.level)
        moduli = self.moduli[: a.k]
        c0 = np.stack([mulmod(a.c0[i], plain.data[i], m) for i, m in enumerate(moduli)])
        c1 = np.stack([mulmod(a.c1[i], plain.data[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, c1, a.level, a.scale * plain.scale)

    @traced("ckksrns.weighted_sum")
    def weighted_sum(
        self,
        cts: list[RnsCiphertext],
        weights: "list[float] | np.ndarray | None",
        plain_scale: float | None = None,
        consts: list[int] | None = None,
        residues: np.ndarray | None = None,
    ) -> RnsCiphertext:
        """Fused ``sum_t w_t * ct_t`` — one kernel pass, not a mul/add chain.

        All tap ciphertexts are stacked into ``(taps, k, n)`` blocks and
        reduced along the tap axis per residue channel
        (:mod:`repro.nt.kernels`), skipping taps whose quantized weight
        is exactly zero.  The result is bit-identical to the
        ``mul_plain_scalar``/``add`` chain over the same taps because
        both reduce each product before the (exact int64) summation.

        Parameters
        ----------
        cts:
            Tap ciphertexts, all at the same level and scale.
        weights:
            One real weight per tap.
        plain_scale:
            Weight quantization scale Δ (defaults to the parameter set's).
        consts:
            Pre-quantized integer weights from an inference plan; when
            given, ``weights`` is ignored and no per-call ``round()`` is
            paid.
        residues:
            Pre-reduced ``(taps, k_top)`` int64 residue table of
            ``consts`` (columns follow :attr:`moduli`); sliced to the
            active level instead of recomputing ``c % m`` per call.
        """
        plain_scale = float(plain_scale or self.params.scale)
        if consts is None:
            consts = [int(round(float(w) * plain_scale)) for w in weights]
        if len(consts) != len(cts):
            raise ValueError(f"{len(consts)} weights for {len(cts)} ciphertexts")
        level = min(ct.level for ct in cts)
        cts = [self.mod_switch_to(ct, level) for ct in cts]
        keep = [t for t, c in enumerate(consts) if c != 0]
        if not keep:  # all-zero weights still produce a valid ciphertext
            keep = [0]
        moduli = self.moduli[: level + 1]
        c0 = np.stack([cts[t].c0 for t in keep])
        c1 = np.stack([cts[t].c1 for t in keep])
        if residues is not None:
            w_res = np.ascontiguousarray(residues[keep][:, : level + 1])
        else:
            w_res = np.array(
                [[consts[t] % m for m in moduli] for t in keep], dtype=np.int64
            )
        if isinstance(self.executor, SerialExecutor):
            out0 = fused_weighted_sum(c0, w_res, moduli)
            out1 = fused_weighted_sum(c1, w_res, moduli)
        else:
            rows = dispatch_channels(
                self.executor,
                _WeightedSumChannel(moduli),
                {"c0": c0, "c1": c1, "w": w_res},
                list(range(len(moduli))),
            )
            out0 = np.stack([r[0] for r in rows])
            out1 = np.stack([r[1] for r in rows])
        return RnsCiphertext(out0, out1, level, cts[0].scale * plain_scale)

    @traced("ckksrns.mul")
    def mul(self, a: RnsCiphertext, b: RnsCiphertext, relin: RnsRelinKey) -> RnsCiphertext:
        """``Mult(c1, c2, ek)`` with immediate relinearisation.

        Parameters
        ----------
        a, b:
            Operand ciphertexts (levels are aligned automatically).
        relin:
            Relinearisation (evaluation) key from :meth:`keygen`.

        Returns
        -------
        Degree-1 ciphertext at the common level with scale
        ``a.scale * b.scale`` (call :meth:`rescale` to return to ~Δ).
        """
        return self.relinearize(self.mul_raw(a, b), relin)

    @traced("ckksrns.square")
    def square(self, a: RnsCiphertext, relin: RnsRelinKey) -> RnsCiphertext:
        """Homomorphic squaring (one dyadic product fewer than mul)."""
        return self.relinearize(self.square_raw(a), relin)

    # -- extended (degree >= 2) arithmetic: deferred relinearisation ------------------

    @traced("ckksrns.mul_raw")
    def mul_raw(
        self, a: RnsCiphertext, b: "RnsCiphertext | RnsCiphertextExt"
    ) -> RnsCiphertextExt:
        """Raw tensor product without relinearisation.

        ``ct × ct`` yields a degree-2 extended ciphertext; ``ct × ext2``
        (a BSGS giant-step fold against a raw giant power) yields
        degree 3.  Call :meth:`relinearize` — possibly after further
        :meth:`add_ext` / :meth:`rescale_ext` steps — to return to
        degree 1.
        """
        if isinstance(b, RnsCiphertextExt):
            return self._mul_ct_ext(a, b)
        a, b = self._align(a, b)
        moduli = self.moduli[: a.k]
        d0 = np.stack([mulmod(a.c0[i], b.c0[i], m) for i, m in enumerate(moduli)])
        d1 = np.stack(
            [
                addmod(
                    mulmod(a.c0[i], b.c1[i], m), mulmod(a.c1[i], b.c0[i], m), m
                )
                for i, m in enumerate(moduli)
            ]
        )
        d2 = np.stack([mulmod(a.c1[i], b.c1[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertextExt(d0, d1, d2, a.level, a.scale * b.scale)

    @traced("ckksrns.square_raw")
    def square_raw(self, a: RnsCiphertext) -> RnsCiphertextExt:
        """Raw squaring without relinearisation (degree-2 result)."""
        moduli = self.moduli[: a.k]
        d0 = np.stack([mulmod(a.c0[i], a.c0[i], m) for i, m in enumerate(moduli)])
        d1 = np.stack(
            [
                addmod(*(2 * (mulmod(a.c0[i], a.c1[i], m),)), m)
                for i, m in enumerate(moduli)
            ]
        )
        d2 = np.stack([mulmod(a.c1[i], a.c1[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertextExt(d0, d1, d2, a.level, a.scale * a.scale)

    def _mul_ct_ext(self, a: RnsCiphertext, x: RnsCiphertextExt) -> RnsCiphertextExt:
        """Degree-1 × degree-2 product: six dyadic sweeps, degree-3 result."""
        if x.degree != 2:
            raise ValueError("ct × ext products require a degree-2 extended operand")
        if x.coeff_high:
            raise ValueError("ct × ext products need the ext's c2 in the NTT domain")
        if a.level > x.level:
            a = self.mod_switch_to(a, x.level)
        elif x.level > a.level:
            x = self.mod_switch_ext(x, a.level)
        moduli = self.moduli[: a.k]
        e = [np.empty_like(x.c0) for _ in range(4)]
        for i, m in enumerate(moduli):
            e[0][i] = mulmod(a.c0[i], x.c0[i], m)
            e[1][i] = addmod(mulmod(a.c0[i], x.c1[i], m), mulmod(a.c1[i], x.c0[i], m), m)
            e[2][i] = addmod(mulmod(a.c0[i], x.c2[i], m), mulmod(a.c1[i], x.c1[i], m), m)
            e[3][i] = mulmod(a.c1[i], x.c2[i], m)
        return RnsCiphertextExt(
            e[0], e[1], e[2], a.level, a.scale * x.scale, c3=e[3], deferred=x.deferred
        )

    @traced("ckksrns.add_ext")
    def add_ext(
        self,
        x: "RnsCiphertext | RnsCiphertextExt",
        y: "RnsCiphertext | RnsCiphertextExt",
    ) -> "RnsCiphertext | RnsCiphertextExt":
        """Add ciphertexts of possibly different degrees (levels aligned).

        Missing high-degree components pass through unchanged, so a
        degree-1 term sums into a degree-2/3 accumulator without ever
        materialising zero components.
        """
        level = min(x.level, y.level)
        x = self._any_mod_switch(x, level)
        y = self._any_mod_switch(y, level)
        self._check_scales(x.scale, y.scale, "add_ext")
        x_high = getattr(x, "coeff_high", False)
        y_high = getattr(y, "coeff_high", False)
        if (
            isinstance(x, RnsCiphertextExt)
            and isinstance(y, RnsCiphertextExt)
            and x_high != y_high
        ):
            raise ValueError(
                "cannot add extended ciphertexts with mismatched high-component domains"
            )
        moduli = self.moduli[: level + 1]
        xs = x.components() if isinstance(x, RnsCiphertextExt) else [x.c0, x.c1]
        ys = y.components() if isinstance(y, RnsCiphertextExt) else [y.c0, y.c1]
        out = []
        for idx in range(max(len(xs), len(ys))):
            if idx < len(xs) and idx < len(ys):
                out.append(
                    np.stack(
                        [addmod(xs[idx][i], ys[idx][i], m) for i, m in enumerate(moduli)]
                    )
                )
            else:
                out.append((xs[idx] if idx < len(xs) else ys[idx]).copy())
        if len(out) == 2:
            return RnsCiphertext(out[0], out[1], level, x.scale)
        deferred = getattr(x, "deferred", False) or getattr(y, "deferred", False)
        return RnsCiphertextExt(
            out[0], out[1], out[2], level, x.scale,
            c3=out[3] if len(out) > 3 else None, deferred=deferred,
            coeff_high=x_high or y_high,
        )

    def _any_mod_switch(self, c, level: int):
        if isinstance(c, RnsCiphertextExt):
            return self.mod_switch_ext(c, level)
        return self.mod_switch_to(c, level)

    def mod_switch_ext(self, x: RnsCiphertextExt, level: int) -> RnsCiphertextExt:
        """Drop trailing residue channels of an extended ciphertext."""
        if level > x.level:
            raise ValueError("cannot mod-switch upwards")
        if level == x.level:
            return x
        k = level + 1
        comps = [c[:k].copy() for c in x.components()]
        return self._ext_like(x, comps, level, x.scale)

    @staticmethod
    def _ext_like(
        x: RnsCiphertextExt, comps: list, level: int, scale: float
    ) -> RnsCiphertextExt:
        return RnsCiphertextExt(
            comps[0], comps[1], comps[2], level, scale,
            c3=comps[3] if len(comps) > 3 else None, deferred=x.deferred,
            coeff_high=x.coeff_high,
        )

    @traced("ckksrns.mul_plain_scalar_ext")
    def mul_plain_scalar_ext(
        self, x: RnsCiphertextExt, scalar: float, plain_scale: float | None = None
    ) -> RnsCiphertextExt:
        """Scalar multiply of an extended ciphertext (every component)."""
        plain_scale = float(plain_scale or self.params.scale)
        c = int(round(float(scalar) * plain_scale))
        moduli = self.moduli[: x.k]
        residues = np.array([c % m for m in moduli], dtype=np.int64)
        comps = [scale_channels(comp, residues, moduli) for comp in x.components()]
        return self._ext_like(x, comps, x.level, x.scale * plain_scale)

    @traced("ckksrns.mul_plain_scalar_many_ext")
    def mul_plain_scalar_many_ext(
        self, x: RnsCiphertextExt, scalars: np.ndarray, plain_scale: float | None = None
    ) -> RnsCiphertextExt:
        """Position-wise scalar multiply of a batched extended ciphertext.

        Quantization matches :meth:`mul_plain_scalar_many` exactly, so the
        result equals relinearising first and scaling after (the scalar
        commutes with key switching).
        """
        plain_scale = float(plain_scale or self.params.scale)
        if x.c0.ndim < 3:
            raise ValueError("mul_plain_scalar_many_ext needs a (k, B, ..., n) batch")
        consts = np.array(
            [int(round(float(s) * plain_scale)) for s in scalars], dtype=np.int64
        )
        if consts.shape[0] != x.c0.shape[1]:
            raise ValueError("one scalar per batched position required")
        moduli = self.moduli[: x.k]
        mods = np.asarray(moduli, dtype=np.int64)
        residues = np.mod(consts[None, :], mods[:, None])  # (k, B)
        comps = [scale_positions(comp, residues, moduli) for comp in x.components()]
        return self._ext_like(x, comps, x.level, x.scale * plain_scale)

    def add_plain_ext(
        self, x: RnsCiphertextExt, values: "np.ndarray | float | RnsPlaintext"
    ) -> RnsCiphertextExt:
        """Plaintext addition on an extended ciphertext (only ``c0`` moves)."""
        base = self.add_plain(RnsCiphertext(x.c0, x.c1, x.level, x.scale), values)
        comps = [base.c0, base.c1] + [c.copy() for c in x.components()[2:]]
        return self._ext_like(x, comps, x.level, x.scale)

    def add_plain_many_ext(self, x: RnsCiphertextExt, values: np.ndarray) -> RnsCiphertextExt:
        """Position-wise scalar addition on a batched extended ciphertext."""
        base = self.add_plain_many(RnsCiphertext(x.c0, x.c1, x.level, x.scale), values)
        comps = [base.c0, base.c1] + [c.copy() for c in x.components()[2:]]
        return self._ext_like(x, comps, x.level, x.scale)

    @traced("ckksrns.relinearize")
    def relinearize(
        self,
        x: RnsCiphertextExt,
        relin: RnsRelinKey,
        relin3: RnsRelinKey | None = None,
    ) -> RnsCiphertext:
        """Switch the high components back to degree 1.

        Degree 2 runs the classic single digit sweep.  Degree 3 runs a
        *merged* sweep: the ``s²`` and ``s³`` source polynomials'
        centered digit tensors are concatenated along the digit axis so
        one batched NTT, one inner-product pass and one exact P-division
        serve both keys (~1.8× one sweep instead of 2×).
        """
        reg = get_registry()
        reg.counter("relin.count").inc()
        if x.deferred:
            reg.counter("relin.deferred").inc()
        k = x.k
        moduli = self.moduli[:k]
        if x.c3 is None:
            x_coeff = x.c2 if x.coeff_high else self._intt(x.c2, moduli)
            r0, r1 = self._keyswitch_coeff(x_coeff, relin.b[:k], relin.a[:k], x.level)
        else:
            if relin3 is None:
                raise ValueError("degree-3 relinearisation requires the s^3 key (relin3)")
            if x.coeff_high:
                x_coeff = np.concatenate([x.c2, x.c3], axis=0)  # (2k, ..., n)
            else:
                stacked = np.stack([x.c2, x.c3], axis=1)  # (k, 2, ..., n)
                coeff = self._intt(stacked, moduli)
                x_coeff = np.concatenate([coeff[:, 0], coeff[:, 1]], axis=0)  # (2k, ..., n)
            kb = np.concatenate([relin.b[:k], relin3.b[:k]], axis=0)
            ka = np.concatenate([relin.a[:k], relin3.a[:k]], axis=0)
            r0, r1 = self._keyswitch_coeff(x_coeff, kb, ka, x.level)
        c0 = np.stack([addmod(x.c0[i], r0[i], m) for i, m in enumerate(moduli)])
        c1 = np.stack([addmod(x.c1[i], r1[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, c1, x.level, x.scale)

    # -- key switching core -----------------------------------------------------------

    def _keyswitch_eval(
        self, x_eval: np.ndarray, kb: np.ndarray, ka: np.ndarray, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        k = level + 1
        x_coeff = self._intt(x_eval, self.moduli[:k])
        return self._keyswitch_coeff(x_coeff, kb[:k], ka[:k], level)

    @traced("ckksrns.keyswitch")
    def _keyswitch_coeff(
        self, x_coeff: np.ndarray, kb: np.ndarray, ka: np.ndarray, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Digit key switch of a coefficient-domain stack; returns eval stacks.

        ``x_coeff`` may be ``(k, n)`` or ``(k, B, n)`` — batch axes ride
        through the digit decomposition, lifts, transforms and inner
        products unchanged, so a batched switch is bit-identical to *B*
        independent ones (same per-element arithmetic, same order).

        ``x_coeff`` may also stack several source polynomials' digit
        groups along the leading axis — ``(p·k, ..., n)`` with digit *j*
        belonging to modulus ``j mod k`` and ``kb``/``ka`` row-matched
        (``(p·k, k_top+1, n)``).  That is the merged multi-key switch of
        degree-3 relinearisation: every group shares one NTT sweep and
        one P-division.  Keys are always passed pre-sliced to the active
        digit rows.

        Large batches are processed in batch-axis chunks: the digit
        tensor is ``(k+1) * D`` times the position size, so an unchunked
        lane-packed batch would allocate hundreds of MB of temporaries
        and fall out of cache (measured super-linear scaling in the lane
        count).  Chunking only splits the batch axis — per-position
        arithmetic and ordering are untouched, so results stay
        bit-identical.  The chunk budget is
        :attr:`keyswitch_chunk_elems` (kwarg / env override) and also
        bounds the hoisted-digit cache path, whose entries are cached
        per chunk.
        """
        k = level + 1
        d_rows = x_coeff.shape[0]
        if x_coeff.ndim >= 3:
            inner = int(np.prod(x_coeff.shape[2:]))
            per_b = (k + 1) * d_rows * inner
            chunk = (
                max(1, self.keyswitch_chunk_elems // per_b) if per_b else x_coeff.shape[1]
            )
            b = x_coeff.shape[1]
            if b > chunk:
                parts = [
                    self._keyswitch_coeff(x_coeff[:, s : s + chunk], kb, ka, level)
                    for s in range(0, b, chunk)
                ]
                return (
                    np.concatenate([p[0] for p in parts], axis=1),
                    np.concatenate([p[1] for p in parts], axis=1),
                )
        moduli = self.moduli[:k]
        ext = moduli + [self.p_special]
        # Digits D_j = [x * hat_j^{-1}]_{q_j} with centered lifts, stacked.
        centered = np.empty(x_coeff.shape, dtype=np.int64)
        for j in range(d_rows):
            qj = moduli[j % k]
            d = mulmod(x_coeff[j], np.int64(self.hat_inv_top[j % k]), qj)
            centered[j] = np.where(d > qj // 2, d - qj, d)
        # Key rows broadcast over any batch axes between digit and coeff.
        kshape = (d_rows,) + (1,) * (x_coeff.ndim - 2) + (x_coeff.shape[-1],)

        if isinstance(self.executor, SerialExecutor):
            # All digits lifted into every target modulus at once: a
            # (k+1, D, ..., n) tensor through one batched stage loop —
            # served from the hoist cache when this exact input was
            # decomposed before.
            lifted_eval = self._lifted_digits(centered, ext, level)
            contribs = []
            for i, m in enumerate(ext):
                key_idx = i if i < k else self.k_top
                krow_b = kb[:, key_idx].reshape(kshape)
                krow_a = ka[:, key_idx].reshape(kshape)
                if d_rows * m * m < 2**63:
                    # Narrow modulus: raw products fit int64 even summed
                    # over all D digits, so skip the per-product
                    # reduction and fold one modulo at the end — exact,
                    # same ints as the reduced path.
                    le = lifted_eval[i]
                    p0 = np.multiply(le, krow_b, dtype=np.int64).sum(axis=0)
                    p1 = np.multiply(le, krow_a, dtype=np.int64).sum(axis=0)
                    contribs.append((p0 % m, p1 % m))
                else:
                    p0 = mulmod(lifted_eval[i], krow_b, m)
                    p1 = mulmod(lifted_eval[i], krow_a, m)
                    contribs.append((p0.sum(axis=0) % m, p1.sum(axis=0) % m))
        else:
            worker = _KeySwitchChannel(self.n, ext, k, self.k_top)
            contribs = dispatch_channels(
                self.executor,
                worker,
                {"centered": centered, "kb": kb, "ka": ka},
                list(range(k + 1)),
            )
        # Both accumulator components divide by P through one fused
        # (k+1, 2, n) transform pair instead of two separate passes.
        acc = np.stack(
            [np.stack([c[0] for c in contribs]), np.stack([c[1] for c in contribs])],
            axis=1,
        )
        r = self._div_special(acc, moduli)
        return np.ascontiguousarray(r[:, 0]), np.ascontiguousarray(r[:, 1])

    def _lifted_digits(
        self, centered: np.ndarray, ext: list[int], level: int
    ) -> np.ndarray:
        """NTT'd lifted digit tensor, hoisted through a content cache.

        The decomposition of a ciphertext polynomial is independent of
        the key it is later inner-multiplied with, so the lifted/NTT'd
        tensor can be computed once and reused for every switch the same
        polynomial feeds (relin or Galois).  Entries are addressed by
        ``(level, shape, blake2b(content))`` — rescale or a level drop
        changes both content and level, so stale entries can never hit.
        A byte budget (:attr:`hoist_cache_bytes`) bounds the cache;
        tensors above the budget bypass it (counted as misses).
        """
        if self.hoist_cache_bytes > 0:
            digest = hashlib.blake2b(centered.tobytes(), digest_size=16).digest()
            key = (level, centered.shape, digest)
            hit = self._hoist_cache.get(key)
            reg = get_registry()
            if hit is not None:
                reg.counter("keyswitch.hoist.hit").inc()
                # Refresh recency so hot entries survive eviction.
                self._hoist_cache[key] = self._hoist_cache.pop(key)
                return hit
            reg.counter("keyswitch.hoist.miss").inc()
        else:
            key = None
        lifted = np.stack([np.mod(centered, np.int64(m)) for m in ext])
        lifted_eval = BatchedNttPlan.get(self.n, tuple(ext)).forward(lifted)
        if key is not None and lifted_eval.nbytes <= self.hoist_cache_bytes:
            self._hoist_cache[key] = lifted_eval
            self._hoist_bytes += lifted_eval.nbytes
            while self._hoist_bytes > self.hoist_cache_bytes:
                old_key = next(iter(self._hoist_cache))
                self._hoist_bytes -= self._hoist_cache.pop(old_key).nbytes
        return lifted_eval

    def _div_special(self, acc_ext: np.ndarray, moduli: list[int]) -> np.ndarray:
        """Exact division by P: (acc - lift([acc]_P)) * P^{-1}, in eval domain.

        Accepts ``(k+1, n)`` stacks or ``(k+1, B, n)`` batches (extra
        axes divide together, sharing the transforms).

        Only the special channel leaves the evaluation domain: its
        centered lift is transformed forward under each target modulus
        and subtracted *in eval domain*.  The NTT is a ring isomorphism,
        so this is bit-identical to inverse-transforming the whole
        stack, subtracting in coefficient domain and transforming back —
        while doing one single-channel inverse instead of ``k + 1``
        (see ``docs/KERNELS.md``).
        """
        k = len(moduli)
        p = self.p_special
        last = NttPlan.get(self.n, p).inverse(acc_ext[k])
        half = p // 2
        lifted = np.where(last > half, last - p, last)
        lift_eval = self._ntt(
            np.stack([np.mod(lifted, np.int64(m)) for m in moduli]), moduli
        )
        out = np.empty((k,) + acc_ext.shape[1:], dtype=np.int64)
        for i, m in enumerate(moduli):
            t = submod(acc_ext[i], lift_eval[i], m)
            out[i] = mulmod(t, np.int64(self.p_inv[i]), m)
        return out

    # -- rescaling / level management ---------------------------------------------------

    @traced("ckksrns.rescale")
    def rescale(self, a: RnsCiphertext) -> RnsCiphertext:
        """``Resc(c)``: exact RNS division by the last prime of the level.

        Parameters
        ----------
        a:
            Ciphertext at level >= 1.

        Returns
        -------
        Ciphertext one level lower with scale divided by the dropped
        prime ``q_last`` (≈ Δ for the 26-bit chain primes).
        """
        if a.level == 0:
            raise ValueError("cannot rescale below level 0")
        comps, q_last = self._rescale_comps([a.c0, a.c1], a.level)
        return RnsCiphertext(comps[0], comps[1], a.level - 1, a.scale / q_last)

    def _rescale_comps(
        self, comps: list[np.ndarray], level: int
    ) -> tuple[list[np.ndarray], int]:
        """Exact divide-by-``q_last`` of any number of components.

        Only the dropped channel leaves the evaluation domain; its
        centered lift is transformed forward under every remaining
        modulus and subtracted in eval domain.  Bit-identical to the
        full coefficient-domain round trip (the NTT is a ring
        isomorphism) at one single-channel inverse instead of ``k``
        (see ``docs/KERNELS.md``).
        """
        k = level + 1
        moduli = self.moduli[:k]
        q_last = moduli[-1]
        half = q_last // 2
        last = NttPlan.get(self.n, q_last).inverse(
            np.stack([c[k - 1] for c in comps])
        )
        lifted = np.where(last > half, last - q_last, last)
        rem = moduli[:-1]
        lift_eval = self._ntt(
            np.stack([np.mod(lifted, np.int64(m)) for m in rem]), rem
        )
        out = np.empty((k - 1, len(comps)) + comps[0].shape[1:], dtype=np.int64)
        for i, m in enumerate(rem):
            inv = np.int64(pow(q_last % m, -1, m))
            for c_idx, c in enumerate(comps):
                out[i, c_idx] = mulmod(submod(c[i], lift_eval[i, c_idx], m), inv, m)
        return [np.ascontiguousarray(out[:, j]) for j in range(len(comps))], q_last

    def _rescale_coeff_comps(
        self, comps: list[np.ndarray], level: int
    ) -> list[np.ndarray]:
        """Exact divide-by-``q_last`` of coefficient-domain components.

        The channel-wise arithmetic of :meth:`_rescale_comps` with *no*
        NTT at all: the dropped channel is already in coefficient form,
        so its centered lift reduces into each remaining channel
        directly.  Produces the exact integers of the eval-domain path
        followed by an inverse transform (the NTT is a ring
        isomorphism).
        """
        k = level + 1
        moduli = self.moduli[:k]
        q_last = moduli[-1]
        half = q_last // 2
        rem = moduli[:-1]
        out = []
        for c in comps:
            lifted = np.where(c[k - 1] > half, c[k - 1] - q_last, c[k - 1])
            oc = np.empty((k - 1,) + c.shape[1:], dtype=np.int64)
            for i, m in enumerate(rem):
                inv = np.int64(pow(q_last % m, -1, m))
                oc[i] = mulmod(
                    submod(c[i], np.mod(lifted, np.int64(m)), m), inv, m
                )
            out.append(oc)
        return out

    @traced("ckksrns.rescale_ext")
    def rescale_ext(
        self, x: RnsCiphertextExt, defer_high: bool = False
    ) -> RnsCiphertextExt:
        """Rescale an extended ciphertext component-wise.

        Marks the result ``deferred``: the eventual relinearisation runs
        one level (and one rescale's worth of digit width) lower than the
        eager order — the lazy-relin win.

        With ``defer_high`` the high components (``c2``/``c3``) move to
        the coefficient domain: they are inverse-transformed once here
        and every later rescale / the final relinearisation consumes
        them channel-wise with no further forward lifts (relinearisation
        starts from coefficient form anyway).  Only valid when the ext
        will not be multiplied again.  A ``coeff_high`` input keeps its
        high components in coefficient form automatically.
        """
        if x.level == 0:
            raise ValueError("cannot rescale below level 0")
        comps = x.components()
        q_last = self.moduli[x.level]
        if x.coeff_high or defer_high:
            low, _ = self._rescale_comps(comps[:2], x.level)
            high = comps[2:]
            if not x.coeff_high:
                stacked = np.stack(high, axis=1)  # (k, H, ..., n)
                un = self._intt(stacked, self.moduli[: x.k])
                high = [un[:, j] for j in range(un.shape[1])]
            high = self._rescale_coeff_comps(high, x.level)
            comps = low + high
            coeff_high = True
        else:
            comps, q_last = self._rescale_comps(comps, x.level)
            coeff_high = False
        return RnsCiphertextExt(
            comps[0], comps[1], comps[2], x.level - 1, x.scale / q_last,
            c3=comps[3] if len(comps) > 3 else None, deferred=True,
            coeff_high=coeff_high,
        )

    def mod_switch_to(self, a: RnsCiphertext, level: int) -> RnsCiphertext:
        """Drop trailing residue channels (plaintext and scale unchanged)."""
        if level > a.level:
            raise ValueError("cannot mod-switch upwards")
        if level == a.level:
            return a
        k = level + 1
        return RnsCiphertext(a.c0[:k].copy(), a.c1[:k].copy(), level, a.scale)

    def rescale_to_match(self, a: RnsCiphertext, target_scale: float) -> RnsCiphertext:
        """Rescale until within 0.1% of *target_scale* (raises if impossible)."""
        out = a
        while out.scale > target_scale * 1.5 and out.level > 0:
            out = self.rescale(out)
        if not np.isclose(out.scale, target_scale, rtol=1e-3):
            raise ValueError(f"cannot reach scale {target_scale} from {a.scale}")
        return out

    # -- rotation -------------------------------------------------------------------------

    @traced("ckksrns.rotate")
    def rotate(self, a: RnsCiphertext, rotation: int, galois: dict[int, RnsGaloisKey]) -> RnsCiphertext:
        """``Rot(c, r)``: left-rotate slots using the matching Galois key.

        Parameters
        ----------
        a:
            Ciphertext whose slots to rotate.
        rotation:
            Left-rotation amount (slots), reduced mod ``n/2``.
        galois:
            Galois key table (``kp.galois``); must contain the element
            for *rotation*, else :class:`KeyError` is raised.

        Returns
        -------
        Ciphertext with slot *i* holding input slot ``i + rotation``.
        """
        rotation = rotation % self.slots
        if rotation == 0:
            return a.copy()
        g = self.galois_element(rotation)
        if g not in galois:
            raise KeyError(f"no Galois key for rotation {rotation} (element {g})")
        key = galois[g]
        moduli = self.moduli[: a.k]
        c0_coeff = self._intt(a.c0, moduli)
        c1_coeff = self._intt(a.c1, moduli)
        c0g = np.stack(
            [_galois_permute(c0_coeff[i], g, self.n, m) for i, m in enumerate(moduli)]
        )
        c1g = np.stack(
            [_galois_permute(c1_coeff[i], g, self.n, m) for i, m in enumerate(moduli)]
        )
        r0, r1 = self._keyswitch_coeff(c1g, key.b[: a.k], key.a[: a.k], a.level)
        c0_eval = self._ntt(c0g, moduli)
        c0 = np.stack([addmod(c0_eval[i], r0[i], m) for i, m in enumerate(moduli)])
        return RnsCiphertext(c0, r1, a.level, a.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.params
        return (
            f"CkksRnsContext(n={p.n}, chain={list(p.moduli_bits)}, "
            f"Δ=2^{p.scale_bits}, executor={self.executor.name})"
        )
