"""Parameter set for the full-RNS CKKS scheme.

Mirrors the paper's Table II: a chain of NTT-friendly primes whose bit
lengths are given explicitly (e.g. ``[40, 26, ..., 26]``), a scaling
factor ``Δ = 2^scale_bits``, plus one *special* prime used only inside
key switching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ckks.sampling import DEFAULT_SIGMA

__all__ = ["CkksRnsParams"]


@dataclass(frozen=True)
class CkksRnsParams:
    """CKKS-RNS parameters.

    Parameters
    ----------
    n:
        Ring degree (power of two); ``N/2`` slots.
    moduli_bits:
        Bit lengths of the ciphertext moduli chain ``[q_0, q_1, ..., q_L]``
        — the paper's "moduli chain length" is ``len(moduli_bits)``.
        ``q_0`` is the base (never dropped); rescaling drops from the end.
    scale_bits:
        ``log2 Δ``.  Middle primes are usually chosen at this size so one
        rescale divides by ≈ Δ.
    special_bits:
        Bit length of the key-switching special prime ``P``.
    hw:
        Secret-key Hamming weight (chi_key = HW(h)).
    sigma:
        Error standard deviation (chi_err).
    """

    n: int = 2**12
    moduli_bits: tuple[int, ...] = (40, 26, 26, 26, 26, 26, 26)
    scale_bits: int = 26
    special_bits: int = 49
    hw: int = 64
    sigma: float = DEFAULT_SIGMA

    def __post_init__(self) -> None:
        if self.n < 8 or self.n & (self.n - 1):
            raise ValueError("n must be a power of two >= 8")
        if len(self.moduli_bits) < 1:
            raise ValueError("need at least one ciphertext modulus")
        if any(not 18 <= b <= 50 for b in self.moduli_bits):
            raise ValueError("modulus bit sizes must be in [18, 50]")
        if not 18 <= self.special_bits <= 50:
            raise ValueError("special prime bits must be in [18, 50]")
        if max(self.moduli_bits) > self.special_bits:
            raise ValueError(
                "special prime must be at least as large as every ciphertext prime "
                "(key-switching noise control)"
            )

    @property
    def chain_length(self) -> int:
        """Number of ciphertext moduli (the paper's "moduli chain length")."""
        return len(self.moduli_bits)

    @property
    def levels(self) -> int:
        """Maximum multiplicative depth L = chain_length - 1."""
        return self.chain_length - 1

    @property
    def scale(self) -> float:
        """Plaintext scale Δ = 2^scale_bits."""
        return float(1 << self.scale_bits)

    @property
    def log_q(self) -> int:
        """Approximate total modulus bits (Table II 'log q')."""
        return sum(self.moduli_bits)

    @classmethod
    def paper_table2(cls, n: int = 2**14) -> "CkksRnsParams":
        """The paper's Table II setting: q = [40, 26, ..., 26, 40].

        N = 2^14, Δ = 2^26, log q = 366 = 40 + 11*26 + 40 (13 primes),
        λ = 128 per the HE standard (438-bit budget at N = 2^14 covers
        log q plus the 50-bit key-switching prime).
        """
        return cls(
            n=n,
            moduli_bits=(40,) + (26,) * 11 + (40,),
            scale_bits=26,
            special_bits=50,
            hw=64,
        )

    @classmethod
    def for_chain_length(
        cls,
        k: int,
        n: int = 2**12,
        total_bits: int = 366,
        scale_bits: int = 26,
        max_prime_bits: int = 50,
    ) -> "CkksRnsParams":
        """Moduli chain of length *k* under a fixed total-precision budget.

        Used by the Table IV / VI sweeps: the target ``log q`` stays fixed
        while the number of co-prime moduli varies, so small *k* gets wide
        (expensive) primes and large *k* narrow (cheap) ones — capped at
        ``max_prime_bits`` per the SEAL co-prime tool's 60-bit limit
        (ours: 50, see DESIGN.md).
        """
        if k < 1:
            raise ValueError("chain length must be >= 1")
        per = min(max_prime_bits, max(20, round(total_bits / k)))
        bits = tuple([per] * k)
        return cls(
            n=n,
            moduli_bits=bits,
            scale_bits=scale_bits,
            special_bits=max(per, scale_bits + 10, 40),
            hw=64,
        )
