"""Training loop implementing the paper's §V.D recipe.

SGD + momentum 0.9, batch size 64, cross-entropy, 1-cycle LR policy,
Kaiming-initialised weights; plus the SLAF two-phase recipe helpers
(freeze weights, retrain polynomial coefficients only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.loss import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.module import Sequential
from repro.nn.optim import SGD
from repro.nn.schedule import OneCycleLR
from repro.utils.rng import derive_rng

__all__ = ["TrainConfig", "Trainer"]


@dataclass
class TrainConfig:
    """Hyper-parameters; defaults mirror §V.D."""

    epochs: int = 30
    batch_size: int = 64
    max_lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    clip_norm: float | None = None
    shuffle: bool = True
    verbose: bool = False
    seed: int | None = None


@dataclass
class TrainHistory:
    """Per-epoch curves recorded during a fit."""

    loss: list[float] = field(default_factory=list)
    train_acc: list[float] = field(default_factory=list)
    val_acc: list[float] = field(default_factory=list)


class Trainer:
    """Fits a :class:`~repro.nn.module.Sequential` classifier."""

    def __init__(self, model: Sequential, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.loss_fn = CrossEntropyLoss()
        self.history = TrainHistory()

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> TrainHistory:
        cfg = self.config
        rng = derive_rng(cfg.seed)
        n = x.shape[0]
        steps_per_epoch = max(1, n // cfg.batch_size)
        opt = SGD(
            self.model.parameters(),
            lr=cfg.max_lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
            clip_norm=cfg.clip_norm,
        )
        sched = OneCycleLR(opt, cfg.max_lr, total_steps=cfg.epochs * steps_per_epoch)
        for epoch in range(cfg.epochs):
            self.model.train()
            order = rng.permutation(n) if cfg.shuffle else np.arange(n)
            epoch_loss, correct, seen = 0.0, 0, 0
            for b in range(steps_per_epoch):
                idx = order[b * cfg.batch_size : (b + 1) * cfg.batch_size]
                xb, yb = x[idx], y[idx]
                logits = self.model.forward(xb)
                loss = self.loss_fn(logits, yb)
                opt.zero_grad()
                self.model.backward(self.loss_fn.backward())
                opt.step()
                sched.step()
                epoch_loss += loss * len(idx)
                correct += int((np.argmax(logits, axis=1) == yb).sum())
                seen += len(idx)
            self.history.loss.append(epoch_loss / seen)
            self.history.train_acc.append(correct / seen)
            if x_val is not None and y_val is not None:
                va = self.evaluate(x_val, y_val)
                self.history.val_acc.append(va)
                if cfg.verbose:  # pragma: no cover - logging only
                    print(
                        f"epoch {epoch + 1}/{cfg.epochs} loss={self.history.loss[-1]:.4f} "
                        f"train_acc={self.history.train_acc[-1]:.4f} val_acc={va:.4f}"
                    )
            elif cfg.verbose:  # pragma: no cover - logging only
                print(
                    f"epoch {epoch + 1}/{cfg.epochs} loss={self.history.loss[-1]:.4f} "
                    f"train_acc={self.history.train_acc[-1]:.4f}"
                )
        return self.history

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Test-set accuracy in eval mode (BatchNorm running stats)."""
        self.model.eval()
        correct = 0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.model.forward(xb)
            correct += int((np.argmax(logits, axis=1) == yb).sum())
        return correct / x.shape[0]

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Logits for a dataset in eval mode."""
        self.model.eval()
        outs = []
        for start in range(0, x.shape[0], batch_size):
            outs.append(self.model.forward(x[start : start + batch_size]))
        return np.concatenate(outs, axis=0)


def freeze_non_slaf(model: Sequential) -> None:
    """Freeze everything except SLAF coefficients (phase-2 of the recipe)."""
    from repro.nn.layers.activations import SLAF

    for layer in model:
        is_slaf = isinstance(layer, SLAF)
        for p in layer.parameters():
            p.frozen = not is_slaf


def unfreeze_all(model: Sequential) -> None:
    for p in model.parameters():
        p.frozen = False
