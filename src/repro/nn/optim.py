"""Stochastic gradient descent with classical momentum (§V.D: 0.9)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD"]


class SGD:
    """``v <- mu v - lr g;  w <- w + v``; frozen parameters are skipped."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        clip_norm: float | None = None,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.frozen:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = float(np.linalg.norm(g))
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * g
            p.data += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
