"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix"]


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of argmax predictions equal to the labels."""
    preds = np.argmax(logits, axis=1)
    targets = np.asarray(targets)
    if preds.shape != targets.shape:
        raise ValueError("shape mismatch between predictions and targets")
    return float((preds == targets).mean())


def confusion_matrix(logits: np.ndarray, targets: np.ndarray, n_classes: int) -> np.ndarray:
    """``(n_classes, n_classes)`` counts, rows = true, cols = predicted."""
    preds = np.argmax(logits, axis=1)
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(np.asarray(targets), preds):
        cm[int(t), int(p)] += 1
    return cm
