"""Module/Parameter machinery: a minimal layered-network core.

Only sequential topologies are needed for CNN1/CNN2, so backpropagation
is a simple reverse sweep — no tape or graph.  Each layer implements
``forward`` (caching what it needs) and ``backward`` (returning the
gradient w.r.t. its input and accumulating parameter gradients).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor with its gradient accumulator.

    ``frozen`` parameters keep their values under any optimiser step —
    used by the SLAF recipe, where network weights are fixed and only
    polynomial coefficients are retrained.
    """

    def __init__(self, data: np.ndarray, name: str = "", frozen: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.frozen = frozen

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.data.shape}, frozen={self.frozen})"


class Module:
    """Base class for layers."""

    def __init__(self) -> None:
        self.training = True

    # Subclasses override.
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        out: list[Parameter] = []
        for v in self.__dict__.values():
            if isinstance(v, Parameter):
                out.append(v)
            elif isinstance(v, Module):
                out.extend(v.parameters())
        return out

    def train(self) -> "Module":
        self.training = True
        return self

    def eval(self) -> "Module":
        self.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def n_params(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())


class Sequential(Module):
    """Chain of modules; forward left-to-right, backward right-to-left."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        out: list[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def train(self) -> "Sequential":
        super().train()
        for layer in self.layers:
            layer.train()
        return self

    def eval(self) -> "Sequential":
        super().eval()
        for layer in self.layers:
            layer.eval()
        return self

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def summary(self) -> str:
        """Human-readable architecture listing (used for Figs. 3/4)."""
        lines = []
        for i, layer in enumerate(self.layers):
            lines.append(f"  [{i:2d}] {layer!r}")
        lines.append(f"  total parameters: {self.n_params():,}")
        return "\n".join(lines)
