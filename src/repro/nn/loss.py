"""Cross-entropy loss with integrated softmax (numerically stable)."""

from __future__ import annotations

import numpy as np

__all__ = ["CrossEntropyLoss", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class CrossEntropyLoss:
    """Mean cross-entropy over a batch of integer class labels."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError("logits must be (N, classes)")
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape != (logits.shape[0],):
            raise ValueError("targets must be (N,) integer labels")
        probs = softmax(logits)
        self._probs, self._targets = probs, targets
        picked = probs[np.arange(len(targets)), targets]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        return grad / n

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)
