"""From-scratch NumPy neural-network framework (PyTorch substitute).

Implements exactly what the paper's training recipe (§V.D) needs:
``Conv2d``, ``Linear``, ``BatchNorm2d``, ``AvgPool2d``, ``Flatten``,
``ReLU``/``Square``/``SLAF`` activations, SGD with momentum,
cross-entropy loss, Kaiming initialisation and the 1-cycle learning-rate
policy [40].  Every layer carries a hand-written backward pass.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.batchnorm import BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.activations import ReLU, SLAF, Square
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.nn.schedule import OneCycleLR
from repro.nn.trainer import Trainer, TrainConfig
from repro.nn.metrics import accuracy

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "AvgPool2d",
    "Flatten",
    "ReLU",
    "Square",
    "SLAF",
    "CrossEntropyLoss",
    "SGD",
    "OneCycleLR",
    "Trainer",
    "TrainConfig",
    "accuracy",
]
