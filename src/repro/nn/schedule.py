"""1-cycle learning-rate policy (Smith & Topin [40], §V.D).

One triangular-ish cycle: the LR warms up linearly from ``max_lr /
div_factor`` to ``max_lr`` over ``pct_start`` of training, then anneals
(cosine) down to ``max_lr / final_div``; the large mid-training LR acts
as a regulariser ("super-convergence").
"""

from __future__ import annotations

import math

from repro.nn.optim import SGD

__all__ = ["OneCycleLR"]


class OneCycleLR:
    """Steps the optimiser LR once per batch."""

    def __init__(
        self,
        optimizer: SGD,
        max_lr: float,
        total_steps: int,
        pct_start: float = 0.3,
        div_factor: float = 25.0,
        final_div: float = 1e4,
    ):
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if not 0 < pct_start < 1:
            raise ValueError("pct_start must be in (0, 1)")
        self.optimizer = optimizer
        self.max_lr = max_lr
        self.total_steps = total_steps
        self.pct_start = pct_start
        self.initial_lr = max_lr / div_factor
        self.final_lr = max_lr / final_div
        self._step = 0
        self.optimizer.lr = self.lr_at(0)

    def lr_at(self, step: int) -> float:
        """Learning rate for a given 0-based step index."""
        step = min(step, self.total_steps - 1)
        up_steps = max(1, int(self.total_steps * self.pct_start))
        if step < up_steps:
            frac = step / up_steps
            return self.initial_lr + frac * (self.max_lr - self.initial_lr)
        frac = (step - up_steps) / max(1, self.total_steps - up_steps)
        return self.final_lr + 0.5 * (self.max_lr - self.final_lr) * (1 + math.cos(math.pi * frac))

    def step(self) -> None:
        self._step += 1
        self.optimizer.lr = self.lr_at(self._step)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
