"""Activation functions: ReLU (training-time), Square, and SLAF.

The Self-Learning Activation Function (SLAF, Eq. 2 of the paper) is a
polynomial ``f(x) = a_0 + a_1 x + ... + a_d x^d`` with **trainable**
coefficients, learned jointly with (or after) the network weights by
backpropagation.  It is the cryptographically compatible replacement
for ReLU: only additions and multiplications, hence directly computable
under CKKS.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["ReLU", "Square", "SLAF", "fit_relu_coeffs"]


class ReLU(Module):
    """``max(x, 0)`` — used in the clear-training phase only."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ReLU()"


class Square(Module):
    """``x^2`` — the CryptoNets activation; a fixed degree-2 polynomial."""

    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x * x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._x * grad

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Square()"


def fit_relu_coeffs(degree: int, lo: float = -4.0, hi: float = 4.0, points: int = 513) -> np.ndarray:
    """Least-squares polynomial fit of ReLU on ``[lo, hi]``.

    Useful as a warm-start for SLAF coefficients (the paper initialises
    at zero and relies on retraining; both paths are supported).
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    xs = np.linspace(lo, hi, points)
    ys = np.maximum(xs, 0.0)
    v = np.vander(xs, degree + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(v, ys, rcond=None)
    return coeffs


class SLAF(Module):
    """Self-Learning Activation Function (paper Eq. 2).

    Parameters
    ----------
    degree:
        Polynomial degree *d* (the paper's experiments use 3).
    init:
        ``"zero"`` (the paper's choice), ``"square"`` (CryptoNets
        ``x^2``), or ``"relu"`` (least-squares ReLU fit — a practical
        warm start for the retraining phase).
    channels:
        If given, one coefficient vector per feature channel (input
        shaped ``(N, C, H, W)`` or ``(N, C)``); otherwise a single
        layer-wide vector.
    """

    def __init__(self, degree: int = 3, init: str = "zero", channels: int | None = None):
        super().__init__()
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.channels = channels
        rows = channels if channels else 1
        if init == "zero":
            base = np.zeros(degree + 1)
        elif init == "square":
            base = np.zeros(degree + 1)
            if degree < 2:
                raise ValueError("square init needs degree >= 2")
            base[2] = 1.0
        elif init == "relu":
            base = fit_relu_coeffs(degree)
        else:
            raise ValueError(f"unknown SLAF init {init!r}")
        self.coeffs = Parameter(np.tile(base, (rows, 1)), name="slaf.coeffs")
        self._cache: tuple | None = None

    def _coeff_view(self, x: np.ndarray) -> np.ndarray:
        """Coefficient tensor broadcastable against *x*, shape (..., d+1)."""
        c = self.coeffs.data
        if self.channels is None:
            return c.reshape((1,) * x.ndim + (self.degree + 1,))
        if x.ndim == 4:
            return c.reshape(1, self.channels, 1, 1, self.degree + 1)
        if x.ndim == 2:
            return c.reshape(1, self.channels, self.degree + 1)
        raise ValueError(f"SLAF with channels expects 2-D or 4-D input, got {x.ndim}-D")

    def forward(self, x: np.ndarray) -> np.ndarray:
        powers = np.stack([x**k for k in range(self.degree + 1)], axis=-1)
        cview = self._coeff_view(x)
        out = (powers * cview).sum(axis=-1)
        self._cache = (x, powers)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, powers = self._cache
        cview = self._coeff_view(x)
        # d f / d a_k = x^k  (per channel if channelled)
        gp = grad[..., None] * powers  # (..., d+1)
        if self.channels is None:
            self.coeffs.grad += gp.reshape(-1, self.degree + 1).sum(axis=0, keepdims=True)
        else:
            axes = tuple(i for i in range(gp.ndim - 1) if i != 1)
            self.coeffs.grad += gp.sum(axis=axes)
        # d f / d x = sum_k k a_k x^{k-1}
        dfdx = np.zeros_like(x)
        for k in range(1, self.degree + 1):
            dfdx = dfdx + k * cview[..., k] * powers[..., k - 1]
        return grad * dfdx

    def coefficients_for_channel(self, c: int = 0) -> np.ndarray:
        """The learned polynomial for channel *c* (row 0 when layer-wide)."""
        row = 0 if self.channels is None else c
        return self.coeffs.data[row].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f"channels={self.channels}" if self.channels else "layerwise"
        return f"SLAF(degree={self.degree}, {mode})"
