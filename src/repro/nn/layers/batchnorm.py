"""Batch normalisation (2-D feature maps and 1-D feature vectors).

CNN2 places one before each activation "to encourage the activation
inputs to fit in the approximated interval" (§V.D) — i.e. it keeps SLAF
inputs near N(0, 1) where the polynomial fit is accurate.  At inference
the affine map is *folded into the neighbouring linear layer* by the HE
compiler, so BatchNorm costs nothing homomorphically.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Per-channel batch norm for ``(N, C, H, W)`` or ``(N, C)`` inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features), name="bn.gamma")
        self.beta = Parameter(np.zeros(num_features), name="bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 4:
            return (0, 2, 3)
        if x.ndim == 2:
            return (0,)
        raise ValueError(f"BatchNorm2d expects 2-D or 4-D input, got {x.ndim}-D")

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1) if x.ndim == 4 else (1, self.num_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes, shp = self._axes(x), self._shape(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean.reshape(shp)) * inv_std.reshape(shp)
        out = self.gamma.data.reshape(shp) * xhat + self.beta.data.reshape(shp)
        if self.training:
            self._cache = (xhat, inv_std, axes, shp, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training mode)")
        xhat, inv_std, axes, shp, x_shape = self._cache
        m = float(np.prod([x_shape[a] for a in axes]))
        self.gamma.grad += (grad * xhat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = grad * self.gamma.data.reshape(shp)
        dx = (
            inv_std.reshape(shp)
            / m
            * (m * g - g.sum(axis=axes, keepdims=True) - xhat * (g * xhat).sum(axis=axes, keepdims=True))
        )
        return dx

    def inference_affine(self) -> tuple[np.ndarray, np.ndarray]:
        """Fold to ``y = scale * x + shift`` using running statistics.

        Returned per-channel ``(scale, shift)`` is what the HE compiler
        merges into the adjacent linear layer.
        """
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.running_mean * scale
        return scale, shift

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm2d({self.num_features})"
