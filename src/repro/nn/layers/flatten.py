"""Flatten feature maps to vectors."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """``(N, C, H, W) -> (N, C*H*W)`` (and the inverse on backward)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Flatten()"
