"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """``y = x W^T + b`` for ``x`` of shape ``(N, in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), in_features, rng), name="linear.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="linear.bias") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (N, {self.in_features}), got {x.shape}")
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad.T @ self._x
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features})"
