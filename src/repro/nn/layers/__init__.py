"""Layer implementations (each with a hand-written backward pass)."""

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.batchnorm import BatchNorm2d
from repro.nn.layers.pooling import AvgPool2d
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.activations import ReLU, SLAF, Square

__all__ = ["Conv2d", "Linear", "BatchNorm2d", "AvgPool2d", "Flatten", "ReLU", "Square", "SLAF"]
