"""2-D convolution via im2col, with stride and zero padding.

The forward pass lowers each window to a row (``sliding_window_view``,
no copies until the GEMM) and performs one matrix product — the standard
HPC formulation.  The backward pass is the exact adjoint: a GEMM for the
weight gradient and a strided scatter-add (col2im) for the input
gradient.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter

__all__ = ["Conv2d", "im2col", "conv_output_shape"]


def conv_output_shape(h: int, w: int, kh: int, kw: int, stride: int, padding: int) -> tuple[int, int]:
    """Output spatial dimensions of a conv/pool window sweep."""
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError(f"window {kh}x{kw} stride {stride} too large for {h}x{w} input")
    return oh, ow


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Lower ``(N, C, H, W)`` to windows ``(N, OH, OW, C, KH, KW)``.

    Supports ``object`` (big-integer) tensors for the exact RNS
    pipeline; zero-padding then inserts Python-int zeros (``np.pad``
    would inject ``np.int64`` scalars whose arithmetic overflows).
    """
    if padding:
        if x.dtype == object:
            n, c, h, w = x.shape
            padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=object)
            padded[:, :, padding : padding + h, padding : padding + w] = x
            x = padded
        else:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    win = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    win = win[:, :, ::stride, ::stride]  # (N, C, OH, OW, KH, KW)
    return np.ascontiguousarray(win.transpose(0, 2, 3, 1, 4, 5))


class Conv2d(Module):
    """Standard 2-D convolution layer.

    Parameters follow the paper's architectures: CNN1 uses one 5x5
    stride-2 layer; CNN2 (CryptoNets-based) stacks two.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng),
            name="conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias") if bias else None
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.padding
        oh, ow = conv_output_shape(h, w, k, k, s, p)
        cols = im2col(x, k, k, s, p).reshape(n, oh * ow, c * k * k)
        wmat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ wmat.T  # (N, OH*OW, OC)
        if self.bias is not None:
            out = out + self.bias.data
        self._cache = (x.shape, cols, oh, ow)
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        g = grad.reshape(n, self.out_channels, oh * ow).transpose(0, 2, 1)  # (N, OH*OW, OC)
        wmat = self.weight.data.reshape(self.out_channels, -1)
        # Parameter grads.
        self.weight.grad += np.einsum("npo,npk->ok", g, cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 1))
        # Input grad: back through the GEMM then col2im scatter-add.
        dcols = (g @ wmat).reshape(n, oh, ow, c, k, k)
        dxp = np.zeros((n, c, h + 2 * p, w + 2 * p))
        for i in range(k):
            for j in range(k):
                dxp[:, :, i : i + s * oh : s, j : j + s * ow : s] += dcols[
                    :, :, :, :, i, j
                ].transpose(0, 3, 1, 2)
        return dxp[:, :, p : p + h, p : p + w] if p else dxp

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )
