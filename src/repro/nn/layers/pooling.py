"""Average pooling — the HE-friendly pooling (a linear map, depth-free)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.conv import conv_output_shape
from repro.nn.module import Module

__all__ = ["AvgPool2d"]


class AvgPool2d(Module):
    """Non-overlapping (or strided) mean pooling over ``(N, C, H, W)``."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh, ow = conv_output_shape(h, w, k, k, s, 0)
        win = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))[:, :, ::s, ::s]
        out = win.mean(axis=(4, 5))
        self._cache = (x.shape, oh, ow)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        dx = np.zeros(x_shape)
        g = grad / (k * k)
        for i in range(k):
            for j in range(k):
                dx[:, :, i : i + s * oh : s, j : j + s * ow : s] += g
        return dx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"
