"""Save/load trained models (weights + BatchNorm running statistics).

State is stored positionally: the loader requires an architecturally
identical model (same builder, same flags), which is how the benchmark
harness caches trained CNN1/CNN2 instances between runs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers.batchnorm import BatchNorm2d
from repro.nn.module import Sequential

__all__ = ["save_model", "load_model"]


def _state_arrays(model: Sequential) -> dict[str, np.ndarray]:
    state: dict[str, np.ndarray] = {}
    for i, p in enumerate(model.parameters()):
        state[f"param_{i}"] = p.data
    bn_idx = 0
    for layer in model:
        if isinstance(layer, BatchNorm2d):
            state[f"bn_{bn_idx}_mean"] = layer.running_mean
            state[f"bn_{bn_idx}_var"] = layer.running_var
            bn_idx += 1
    return state


def save_model(model: Sequential, path: str | Path) -> None:
    """Write all parameters and BN buffers to a ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **_state_arrays(model))


def load_model(model: Sequential, path: str | Path) -> Sequential:
    """Load state saved by :func:`save_model` into a same-shaped model."""
    data = np.load(Path(path))
    params = model.parameters()
    for i, p in enumerate(params):
        key = f"param_{i}"
        if key not in data:
            raise ValueError(f"state file missing {key}; architecture mismatch?")
        if data[key].shape != p.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: file {data[key].shape} vs model {p.data.shape}"
            )
        p.data[...] = data[key]
    bn_idx = 0
    for layer in model:
        if isinstance(layer, BatchNorm2d):
            layer.running_mean[...] = data[f"bn_{bn_idx}_mean"]
            layer.running_var[...] = data[f"bn_{bn_idx}_var"]
            bn_idx += 1
    return model
