"""Weight initialisation — Kaiming (He) init per §V.D / [41]."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "zeros"]


def kaiming_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal: N(0, sqrt(2/fan_in)) — for ReLU-trained conv/dense layers."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def kaiming_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-uniform variant: U(-b, b) with b = sqrt(6/fan_in)."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
