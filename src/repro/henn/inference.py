"""HE inference engines: encrypt -> propagate -> decrypt.

:class:`HeInferenceEngine` evaluates a compiled HE graph under any
backend.  With a :class:`~repro.henn.backend.CkksRnsBackend` whose
context carries a thread/process executor, residue channels of every
operation run in parallel — this *is* the CNN-HE-RNS configuration; the
same engine with :class:`~repro.henn.backend.CkksBackend` is the
non-RNS CNN-HE baseline of Tables III/V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.henn.backend import HeBackend
from repro.henn.layers import HeLayer
from repro.utils.timing import LatencyStats

__all__ = ["HeInferenceEngine", "LayerTrace"]


@dataclass
class LayerTrace:
    """Per-layer wall-clock timings from the last run (Fig. 5 pipeline view)."""

    names: list[str] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    def as_rows(self) -> list[tuple[str, float]]:
        return list(zip(self.names, self.seconds))

    def total(self) -> float:
        return float(sum(self.seconds))


class HeInferenceEngine:
    """Batched encrypted classification with latency accounting."""

    def __init__(
        self,
        backend: HeBackend,
        layers: list[HeLayer],
        input_shape: tuple[int, int, int],
    ):
        self.backend = backend
        self.layers = layers
        self.input_shape = input_shape
        self.latency = LatencyStats()
        self.trace = LayerTrace()

    # -- client side -------------------------------------------------------------

    def encrypt_images(self, images: np.ndarray) -> np.ndarray:
        """Encrypt ``(B, C, H, W)`` floats into a ``(C, H, W)`` handle array.

        Slot *i* of the handle at position (c, h, w) holds pixel
        ``images[i, c, h, w]`` — the batch rides along for free.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected (B, {self.input_shape[0]}, {self.input_shape[1]}, "
                f"{self.input_shape[2]}), got {images.shape}"
            )
        if images.shape[0] > self.backend.max_batch:
            raise ValueError(
                f"batch {images.shape[0]} exceeds backend capacity {self.backend.max_batch}"
            )
        c, h, w = self.input_shape
        enc = np.empty((c, h, w), dtype=object)
        for ci in range(c):
            for i in range(h):
                for j in range(w):
                    enc[ci, i, j] = self.backend.encrypt(images[:, ci, i, j])
        return enc

    # -- server side -------------------------------------------------------------

    def run_encrypted(self, enc: np.ndarray) -> np.ndarray:
        """Propagate encrypted features through the graph, tracing layers."""
        self.trace = LayerTrace()
        x = enc
        for layer in self.layers:
            t0 = time.perf_counter()
            x = layer.forward(self.backend, x)
            self.trace.names.append(type(layer).__name__)
            self.trace.seconds.append(time.perf_counter() - t0)
        return x

    # -- end to end ----------------------------------------------------------------

    def classify(self, images: np.ndarray) -> np.ndarray:
        """Encrypt, classify, decrypt; returns ``(B, 10)`` logits.

        Latency of the homomorphic evaluation (the paper's "Lat": the
        server-side processing of one classification request) is pushed
        into :attr:`latency`.
        """
        batch = images.shape[0]
        enc = self.encrypt_images(images)
        t0 = time.perf_counter()
        out = self.run_encrypted(enc)
        self.latency.add(time.perf_counter() - t0)
        logits = np.stack(
            [self.backend.decrypt(h, count=batch) for h in out], axis=1
        )
        return logits

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Encrypted-classification accuracy over (possibly many) batches."""
        correct = 0
        b = self.backend.max_batch
        for start in range(0, images.shape[0], b):
            xb = images[start : start + b]
            yb = labels[start : start + b]
            logits = self.classify(xb)
            correct += int((np.argmax(logits, axis=1) == yb).sum())
        return correct / images.shape[0]
