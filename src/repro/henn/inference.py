"""HE inference engines: encrypt -> propagate -> decrypt.

:class:`HeInferenceEngine` evaluates a compiled HE graph under any
backend.  With a :class:`~repro.henn.backend.CkksRnsBackend` whose
context carries a thread/process executor, residue channels of every
operation run in parallel — this *is* the CNN-HE-RNS configuration; the
same engine with :class:`~repro.henn.backend.CkksBackend` is the
non-RNS CNN-HE baseline of Tables III/V.

Timing is span-based (:mod:`repro.obs`): every layer forward is a
``henn.layer`` span and the classify stages are ``henn.stage.*`` spans,
so the Fig. 5 per-stage breakdown falls out of the tracer.  When global
tracing is disabled the engine records layer spans into a private
tracer (a handful of spans per run — negligible), keeping the
:attr:`~HeInferenceEngine.trace` view available at all times while the
primitive-level instrumentation stays a no-op.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.henn.backend import HeBackend
from repro.henn.layers import HeLayer
from repro.henn.packing import BatchLayout
from repro.henn.plan import InferencePlan, compile_plan
from repro.obs import health as _health
from repro.obs.metrics import get_registry
from repro.obs.tracer import Span, Tracer
from repro.utils.timing import LatencyStats

__all__ = ["HeInferenceEngine", "LayerTrace"]


@dataclass
class LayerTrace:
    """Per-layer wall-clock view of the last run (Fig. 5 pipeline view).

    Deprecated front: since the observability refactor this is derived
    from the engine's ``henn.layer`` spans (see
    :attr:`HeInferenceEngine.trace`), kept so existing callers and
    benchmark tables do not change shape.
    """

    names: list[str] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    @classmethod
    def from_spans(cls, spans: list[Span]) -> "LayerTrace":
        """Build the flat view from finished ``henn.layer`` spans."""
        t = cls()
        for s in spans:
            t.names.append(str(s.tags.get("layer", s.name)))
            t.seconds.append(s.duration)
        return t

    def as_rows(self) -> list[tuple[str, float]]:
        """``(layer name, seconds)`` pairs in execution order."""
        return list(zip(self.names, self.seconds))

    def total(self) -> float:
        """Summed per-layer seconds (the evaluate-stage wall-clock)."""
        return float(sum(self.seconds))


class HeInferenceEngine:
    """Batched encrypted classification with latency accounting.

    Parameters
    ----------
    backend:
        Homomorphic evaluation backend (mock / CKKS / CKKS-RNS).
    layers:
        Compiled HE layer graph (from :func:`repro.henn.compiler.compile_model`).
    input_shape:
        Expected ``(C, H, W)`` of one input image.
    plan:
        Compile an :class:`~repro.henn.plan.InferencePlan` at
        construction (default): tap programs and weight encodings are
        precomputed once, and scalar plaintexts are memoized as the
        first image flows through, so warm ``classify()`` calls perform
        zero plaintext encodes.  ``False`` keeps the original
        encode-per-call path (bit-identical results, used by the
        plan-equivalence tests); an existing plan object is adopted
        as-is.
    """

    def __init__(
        self,
        backend: HeBackend,
        layers: list[HeLayer],
        input_shape: tuple[int, int, int],
        plan: "bool | InferencePlan" = True,
    ):
        self.backend = backend
        self.layers = layers
        self.input_shape = input_shape
        self.latency = LatencyStats()
        self._layer_spans: list[Span] = []
        if plan is True:
            self.plan: InferencePlan | None = compile_plan(backend, layers, input_shape)
        elif plan is False or plan is None:
            self.plan = None
        else:
            self.plan = plan

    @property
    def trace(self) -> LayerTrace:
        """Per-layer timings of the last :meth:`run_encrypted` call."""
        return LayerTrace.from_spans(self._layer_spans)

    # -- client side -------------------------------------------------------------

    def encrypt_images(self, images: np.ndarray) -> np.ndarray:
        """Encrypt ``(B, C, H, W)`` floats into a ``(C, H, W)`` handle array.

        Slot *i* of the handle at position (c, h, w) holds pixel
        ``images[i, c, h, w]`` — the batch rides along for free.

        Parameters
        ----------
        images:
            Batch of at most ``backend.max_batch`` images matching
            ``input_shape``.

        Returns
        -------
        ``(C, H, W)`` object array of ciphertext handles.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected (B, {self.input_shape[0]}, {self.input_shape[1]}, "
                f"{self.input_shape[2]}), got {images.shape}"
            )
        if images.shape[0] > self.backend.max_batch:
            raise ValueError(
                f"batch {images.shape[0]} exceeds backend capacity {self.backend.max_batch}"
            )
        c, h, w = self.input_shape
        enc = np.empty((c, h, w), dtype=object)
        with obs.span("henn.stage.encrypt", pixels=c * h * w):
            for ci in range(c):
                for i in range(h):
                    for j in range(w):
                        enc[ci, i, j] = self.backend.encrypt(images[:, ci, i, j])
        return enc

    # -- batch assembly (serving gateway) ----------------------------------------

    def assemble_batch(
        self, requests: "Sequence[np.ndarray]", counts: "Sequence[int]"
    ) -> np.ndarray:
        """Slot-stack N encrypted requests into one batch of handles.

        Cell ``(c, h, w)`` of the result packs the matching cell of
        every request along the slot axis
        (:meth:`~repro.henn.backend.HeBackend.concat_slots`), so one
        :meth:`run_encrypted` evaluates all requests at once.  The
        caller (the batching gateway) validates shapes, levels and
        scales *before* assembly — a poisoned request must be rejected
        at admission, not fail its batchmates here.

        Parameters
        ----------
        requests:
            Encrypted ``(C, H, W)`` handle arrays from
            :meth:`encrypt_images`, one per request.
        counts:
            Images (slots) each request claims, in the same order.
        """
        if len(requests) != len(counts) or not len(requests):
            raise ValueError("bad assemble_batch arguments")
        for r in requests:
            if r.shape != self.input_shape:
                raise ValueError(f"request shape {r.shape} != {self.input_shape}")
        # One layout per assembly (not per pixel cell): the pad-waste
        # counters below account each *batch* once, however many handle
        # cells share the layout.
        layout = BatchLayout(tuple(int(c) for c in counts), self.backend.max_batch)
        c, h, w = self.input_shape
        out = np.empty((c, h, w), dtype=object)
        with obs.span(
            "henn.stage.assemble",
            requests=len(requests),
            slots=layout.total,
            pad_slots=layout.pad_slots,
        ):
            for idx in np.ndindex(c, h, w):
                out[idx] = self.backend.concat_slots([r[idx] for r in requests], counts)
        layout.record(get_registry())
        return out

    def split_scores(
        self, scores: np.ndarray, counts: "Sequence[int]"
    ) -> "list[np.ndarray]":
        """Inverse of :meth:`assemble_batch` on the output side.

        Splits the flat per-class score handles of a packed
        :meth:`run_encrypted` back into one ``(classes,)`` handle array
        per request, so each response carries *only* that request's
        slot range.
        """
        out: list[np.ndarray] = []
        with obs.span("henn.stage.disassemble", requests=len(counts)):
            offset = 0
            for count in counts:
                out.append(
                    np.array(
                        [self.backend.slice_slots(s, offset, count) for s in scores],
                        dtype=object,
                    )
                )
                offset += count
        return out

    # -- server side -------------------------------------------------------------

    def run_encrypted(self, enc: np.ndarray) -> np.ndarray:
        """Propagate encrypted features through the graph, one span per layer.

        Parameters
        ----------
        enc:
            Encrypted feature handles from :meth:`encrypt_images`.

        Returns
        -------
        Flat object array of output ciphertext handles (one per class).
        """
        tracer = obs.get_tracer()
        if not tracer.enabled:
            # Private always-on tracer: keeps the layer-level Fig. 5 view
            # available while primitive spans stay no-ops.
            tracer = Tracer()
        spans: list[Span] = []
        x = enc
        # Planned engines evaluate the precompiled layers but keep the
        # source layers' names on the spans, so traces stay comparable.
        exec_layers = self.plan.layers if self.plan is not None else self.layers
        with tracer.span("henn.stage.evaluate", layers=len(self.layers)):
            for i, (layer, ex) in enumerate(zip(self.layers, exec_layers)):
                with tracer.span("henn.layer", layer=type(layer).__name__, index=i) as h:
                    x = ex.forward(self.backend, x)
                spans.append(h.record)
                # Scale/level/noise gauges for the ciphertexts crossing
                # this layer boundary; no-op unless tracing is enabled.
                _health.observe_layer(self.backend, x, type(layer).__name__, i)
        self._layer_spans = spans
        return x

    # -- end to end ----------------------------------------------------------------

    def classify(self, images: np.ndarray) -> np.ndarray:
        """Encrypt, classify, decrypt; returns ``(B, 10)`` logits.

        Latency of the homomorphic evaluation (the paper's "Lat": the
        server-side processing of one classification request) is pushed
        into :attr:`latency`.

        Parameters
        ----------
        images:
            ``(B, C, H, W)`` batch, ``B <= backend.max_batch``.

        Returns
        -------
        ``(B, 10)`` array of decrypted logits.
        """
        batch = images.shape[0]
        enc = self.encrypt_images(images)
        t0 = time.perf_counter()
        out = self.run_encrypted(enc)
        self.latency.add(time.perf_counter() - t0)
        with obs.span("henn.stage.decrypt", handles=len(out)):
            logits = np.stack(
                [self.backend.decrypt(h, count=batch) for h in out], axis=1
            )
        return logits

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Encrypted-classification accuracy over (possibly many) batches.

        Parameters
        ----------
        images, labels:
            Full evaluation set; processed in ``backend.max_batch`` chunks.

        Returns
        -------
        Fraction of images whose argmax logit matches the label.
        """
        correct = 0
        b = self.backend.max_batch
        for start in range(0, images.shape[0], b):
            xb = images[start : start + b]
            yb = labels[start : start + b]
            logits = self.classify(xb)
            correct += int((np.argmax(logits, axis=1) == yb).sum())
        return correct / images.shape[0]
