"""Single-image (Lo-La-style) packing.

The default engine packs a *batch* per ciphertext (slot i = image i),
which optimises throughput.  Lo-La [31] instead packs one image's whole
feature vector into a single ciphertext and evaluates dense layers with
rotations, optimising single-query latency and ciphertext count.  This
module provides that packing for the dense stages:

* :func:`encrypt_features` — one ciphertext holding ``F`` features
  (padded to a power of two so log-rotations fold cleanly);
* :func:`dense_single` — ``y_o = <w_o, x>`` per output neuron via
  plaintext masking + a rotate-and-add tree (log2 F rotations);
* :func:`rotations_needed` — the power-of-two rotation set whose Galois
  keys the evaluator must hold.

Backends gain a ``rotate`` operation for this mode; the mock backend
models it as a slot roll.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.henn.backend import HeBackend

__all__ = [
    "BatchLayout",
    "rotations_needed",
    "encrypt_features",
    "dense_single",
    "decrypt_scores",
]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


@dataclass(frozen=True)
class BatchLayout:
    """Slot layout of a batch-packed ciphertext: image *b* -> lane *b*.

    A packed batch concatenates its members' slot ranges back to back —
    member *b* owns the half-open lane ``[offsets[b], offsets[b] +
    counts[b])`` — and pads the tail up to the next power of two (capped
    at the backend's slot capacity) so downstream fold trees and SIMD
    kernels see an aligned width.  The pad lanes are *waste*: they carry
    zeros, burn slots, and are reported through :meth:`record` as the
    ``serving.pack.pad_slots`` counter so the overhead stays visible in
    ``/healthz`` and ``obs.render_report``.

    The layout is pure bookkeeping — backends consult it to stack, mask
    and slice; it never touches ciphertext data itself.
    """

    counts: tuple[int, ...]
    capacity: int
    offsets: tuple[int, ...] = field(init=False)
    total: int = field(init=False)
    padded_total: int = field(init=False)

    def __post_init__(self):
        counts = tuple(int(c) for c in self.counts)
        if not counts or any(c <= 0 for c in counts):
            raise ValueError("batch layout needs at least one positive slot count")
        offsets, at = [], 0
        for c in counts:
            offsets.append(at)
            at += c
        if at > self.capacity:
            raise ValueError(
                f"batch of {at} slots exceeds backend capacity {self.capacity}"
            )
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "offsets", tuple(offsets))
        object.__setattr__(self, "total", at)
        object.__setattr__(
            self, "padded_total", min(_next_pow2(at), int(self.capacity))
        )

    @property
    def lanes(self) -> int:
        """Number of members packed into the ciphertext."""
        return len(self.counts)

    @property
    def pad_slots(self) -> int:
        """Slots wasted on tail padding (zero when the batch is aligned)."""
        return self.padded_total - self.total

    def lane_for_range(self, start: int, count: int) -> int:
        """Member index owning exactly ``[start, start + count)``.

        Raises ``ValueError`` when the range does not land on a member
        boundary — slicing through the middle of a lane is a layout bug,
        never a legitimate request.
        """
        for b, (off, c) in enumerate(zip(self.offsets, self.counts)):
            if off == start and c == count:
                return b
        raise ValueError(
            f"slice [{start}, {start + count}) does not match a packed member "
            f"boundary of layout {self.counts}"
        )

    def lane_slice(self, lane: int) -> slice:
        """Slot range of member *lane* (``IndexError`` out of range)."""
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} out of range for {self.lanes}-member layout")
        return slice(self.offsets[lane], self.offsets[lane] + self.counts[lane])

    def lane_mask(self, lane: int) -> np.ndarray:
        """Boolean slot mask (length ``padded_total``) selecting one lane."""
        mask = np.zeros(self.padded_total, dtype=bool)
        mask[self.lane_slice(lane)] = True
        return mask

    def pad_values(self, values: np.ndarray) -> np.ndarray:
        """Zero-pad a ``total``-length slot vector out to ``padded_total``."""
        values = np.asarray(values)
        if values.shape[0] == self.padded_total:
            return values
        padded = np.zeros((self.padded_total,) + values.shape[1:], dtype=values.dtype)
        padded[: self.total] = values[: self.total]
        return padded

    def record(self, registry) -> None:
        """Publish this layout's packing stats to a metrics registry.

        Counters: ``serving.pack.batches`` / ``serving.pack.images`` /
        ``serving.pack.slots`` / ``serving.pack.pad_slots`` — the last
        one is the padding-waste satellite: cumulative slots burned on
        alignment, visible in ``/healthz`` and ``obs.render_report``.
        """
        registry.counter("serving.pack.batches").inc()
        registry.counter("serving.pack.images").inc(self.lanes)
        registry.counter("serving.pack.slots").inc(self.total)
        registry.counter("serving.pack.pad_slots").inc(self.pad_slots)


def rotations_needed(n_features: int) -> tuple[int, ...]:
    """Left-rotations required by the fold tree for *n_features* inputs."""
    width = _next_pow2(n_features)
    out = []
    r = width // 2
    while r >= 1:
        out.append(r)
        r //= 2
    return tuple(out)


def encrypt_features(backend: HeBackend, features: np.ndarray):
    """Encrypt one feature vector into a single ciphertext (zero-padded)."""
    features = np.asarray(features, dtype=np.float64).ravel()
    width = _next_pow2(len(features))
    if width > backend.max_batch:
        raise ValueError(
            f"{len(features)} features need {width} slots; backend has {backend.max_batch}"
        )
    padded = np.zeros(backend.max_batch)
    padded[: len(features)] = features
    return backend.encrypt(padded), len(features)


def dense_single(backend: HeBackend, x_handle, n_features: int, weight: np.ndarray, bias: np.ndarray | None = None):
    """Dense layer on a single-image ciphertext.

    For each output neuron: mask with the weight row (one plaintext
    multiply), then fold slots with ``log2`` rotations so slot 0 carries
    the inner product.  Returns one handle per output; consumes one
    rescaling level.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2 or weight.shape[1] != n_features:
        raise ValueError(f"weight must be (out, {n_features})")
    width = _next_pow2(n_features)
    outs = []
    for o in range(weight.shape[0]):
        row = np.zeros(backend.max_batch)
        row[:n_features] = weight[o]
        t = backend.rescale(backend.mul_plain_vector(x_handle, row))
        for r in rotations_needed(n_features):
            t = backend.add(t, backend.rotate(t, r))
        if bias is not None:
            t = backend.add_plain(t, float(bias[o]))
        outs.append(t)
    return outs


def decrypt_scores(backend: HeBackend, handles) -> np.ndarray:
    """Slot-0 values of the output handles — the class scores."""
    return np.array([float(backend.decrypt(h, count=1)[0]) for h in handles])
