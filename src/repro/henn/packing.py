"""Single-image (Lo-La-style) packing.

The default engine packs a *batch* per ciphertext (slot i = image i),
which optimises throughput.  Lo-La [31] instead packs one image's whole
feature vector into a single ciphertext and evaluates dense layers with
rotations, optimising single-query latency and ciphertext count.  This
module provides that packing for the dense stages:

* :func:`encrypt_features` — one ciphertext holding ``F`` features
  (padded to a power of two so log-rotations fold cleanly);
* :func:`dense_single` — ``y_o = <w_o, x>`` per output neuron via
  plaintext masking + a rotate-and-add tree (log2 F rotations);
* :func:`rotations_needed` — the power-of-two rotation set whose Galois
  keys the evaluator must hold.

Backends gain a ``rotate`` operation for this mode; the mock backend
models it as a slot roll.
"""

from __future__ import annotations

import numpy as np

from repro.henn.backend import HeBackend

__all__ = ["rotations_needed", "encrypt_features", "dense_single", "decrypt_scores"]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def rotations_needed(n_features: int) -> tuple[int, ...]:
    """Left-rotations required by the fold tree for *n_features* inputs."""
    width = _next_pow2(n_features)
    out = []
    r = width // 2
    while r >= 1:
        out.append(r)
        r //= 2
    return tuple(out)


def encrypt_features(backend: HeBackend, features: np.ndarray):
    """Encrypt one feature vector into a single ciphertext (zero-padded)."""
    features = np.asarray(features, dtype=np.float64).ravel()
    width = _next_pow2(len(features))
    if width > backend.max_batch:
        raise ValueError(
            f"{len(features)} features need {width} slots; backend has {backend.max_batch}"
        )
    padded = np.zeros(backend.max_batch)
    padded[: len(features)] = features
    return backend.encrypt(padded), len(features)


def dense_single(backend: HeBackend, x_handle, n_features: int, weight: np.ndarray, bias: np.ndarray | None = None):
    """Dense layer on a single-image ciphertext.

    For each output neuron: mask with the weight row (one plaintext
    multiply), then fold slots with ``log2`` rotations so slot 0 carries
    the inner product.  Returns one handle per output; consumes one
    rescaling level.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2 or weight.shape[1] != n_features:
        raise ValueError(f"weight must be (out, {n_features})")
    width = _next_pow2(n_features)
    outs = []
    for o in range(weight.shape[0]):
        row = np.zeros(backend.max_batch)
        row[:n_features] = weight[o]
        t = backend.rescale(backend.mul_plain_vector(x_handle, row))
        for r in rotations_needed(n_features):
            t = backend.add(t, backend.rotate(t, r))
        if bias is not None:
            t = backend.add_plain(t, float(bias[o]))
        outs.append(t)
    return outs


def decrypt_scores(backend: HeBackend, handles) -> np.ndarray:
    """Slot-0 values of the output handles — the class scores."""
    return np.array([float(backend.decrypt(h, count=1)[0]) for h in handles])
