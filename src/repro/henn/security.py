"""Security-parameter validation against the HE standard [37].

The HomomorphicEncryption.org standard tabulates, for each ring degree
N and security level λ, the maximum total modulus width log2(Q*P) that
keeps the RLWE instance λ-bit secure against the best known lattice
attacks (ternary secrets).  The paper's Table II claims λ = 128 with
N = 2^14 and log q = 366; :func:`validate_security` checks such claims.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HE_STANDARD_TABLE", "he_standard_max_logq", "validate_security", "SecurityReport"]

#: max log2(Q) for ternary-secret RLWE, from the HE security standard.
HE_STANDARD_TABLE: dict[int, dict[int, int]] = {
    128: {1024: 27, 2048: 54, 4096: 109, 8192: 218, 16384: 438, 32768: 881},
    192: {1024: 19, 2048: 37, 4096: 75, 8192: 152, 16384: 305, 32768: 611},
    256: {1024: 14, 2048: 29, 4096: 58, 8192: 118, 16384: 237, 32768: 476},
}


def he_standard_max_logq(n: int, security_bits: int = 128) -> int:
    """Maximum permitted total modulus bits for ``(n, λ)``.

    For ``n`` below the table (toy/test parameters) the budget is 0 —
    no security is claimed.
    """
    if security_bits not in HE_STANDARD_TABLE:
        raise ValueError(f"unsupported security level {security_bits}")
    table = HE_STANDARD_TABLE[security_bits]
    if n in table:
        return table[n]
    if n > max(table):
        return table[max(table)] * (n // max(table))  # conservative linear extension
    return 0


@dataclass
class SecurityReport:
    """Outcome of a parameter check."""

    n: int
    log_qp: int
    security_bits: int
    max_log_qp: int
    secure: bool
    margin_bits: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.secure else "INSECURE (toy/test parameters)"
        return (
            f"N=2^{self.n.bit_length() - 1}, log(QP)={self.log_qp} <= {self.max_log_qp} "
            f"@ λ={self.security_bits}: {status} (margin {self.margin_bits} bits)"
        )


def validate_security(n: int, log_qp: int, security_bits: int = 128) -> SecurityReport:
    """Check ``log2`` of the *total* modulus (ciphertext chain + special
    prime — key material lives mod Q*P) against the standard."""
    max_logq = he_standard_max_logq(n, security_bits)
    return SecurityReport(
        n=n,
        log_qp=log_qp,
        security_bits=security_bits,
        max_log_qp=max_logq,
        secure=log_qp <= max_logq,
        margin_bits=max_logq - log_qp,
    )
