"""Plaintext-model -> HE-graph compiler, plus the SLAF training recipe.

Two services:

* :func:`slafify` — the CNN-HE-SLAF two-phase recipe (§V.D): take a
  ReLU-trained network, freeze its weights, substitute degree-*d* SLAF
  activations and retrain only the polynomial coefficients.
* :func:`compile_model` — turn a trained :class:`~repro.nn.Sequential`
  into a list of :class:`~repro.henn.layers.HeLayer`:

  - BatchNorm layers are **folded** into the preceding conv/dense layer
    (per-channel affine absorbed into weights and bias), so they cost
    nothing homomorphically;
  - SLAF layers become :class:`~repro.henn.layers.HePoly`;
  - ReLU is rejected — it has no homomorphic counterpart (§III.A).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.henn.layers import HeAvgPool, HeConv2d, HeFlatten, HeLayer, HeLinear, HePoly
from repro.nn.layers.activations import ReLU, SLAF, Square
from repro.nn.layers.batchnorm import BatchNorm2d
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.linear import Linear
from repro.nn.layers.pooling import AvgPool2d
from repro.nn.module import Sequential
from repro.nn.trainer import TrainConfig, Trainer, freeze_non_slaf, unfreeze_all

# The compile-once inference-plan pass lives in its own module; it is the
# second half of the compiler (plaintext-side precomputation per backend)
# and is re-exported here as part of the compiler surface.
from repro.henn.plan import InferencePlan, compile_plan  # noqa: F401

__all__ = ["slafify", "compile_model", "model_depth", "InferencePlan", "compile_plan"]


def slafify(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    degree: int = 3,
    init: str = "relu",
    epochs: int = 3,
    max_lr: float = 2e-4,
    per_channel: bool = False,
    seed: int | None = 0,
) -> Sequential:
    """Replace every ReLU by a trainable SLAF and retrain the coefficients.

    The original model is untouched; weights are deep-copied, frozen,
    and only the new polynomial coefficients learn (phase 2 of the
    CNN-HE-SLAF recipe [11]).  Returns the SLAF model (unfrozen).
    """
    layers: list = []
    prev_features: int | None = None
    for layer in model:
        if isinstance(layer, Conv2d):
            prev_features = layer.out_channels
            layers.append(copy.deepcopy(layer))
        elif isinstance(layer, Linear):
            prev_features = layer.out_features
            layers.append(copy.deepcopy(layer))
        elif isinstance(layer, ReLU):
            channels = prev_features if per_channel else None
            layers.append(SLAF(degree=degree, init=init, channels=channels))
        else:
            layers.append(copy.deepcopy(layer))
    slaf_model = Sequential(*layers)
    freeze_non_slaf(slaf_model)
    trainer = Trainer(
        slaf_model,
        # Polynomial-coefficient gradients involve x^k sums, so the phase-2
        # retraining runs at a small LR with gradient clipping.
        TrainConfig(epochs=epochs, batch_size=64, max_lr=max_lr, clip_norm=1.0, seed=seed),
    )
    trainer.fit(x, y)
    unfreeze_all(slaf_model)
    slaf_model.eval()
    return slaf_model


def _fold_bn_into_conv(conv: Conv2d, bn: BatchNorm2d) -> tuple[np.ndarray, np.ndarray]:
    scale, shift = bn.inference_affine()
    w = conv.weight.data * scale[:, None, None, None]
    b = (conv.bias.data if conv.bias is not None else 0.0) * scale + shift
    return w, b


def _fold_bn_into_linear(lin: Linear, bn: BatchNorm2d) -> tuple[np.ndarray, np.ndarray]:
    scale, shift = bn.inference_affine()
    w = lin.weight.data * scale[:, None]
    b = (lin.bias.data if lin.bias is not None else 0.0) * scale + shift
    return w, b


def compile_model(model: Sequential, prune_below: float = 0.0) -> list[HeLayer]:
    """Compile a trained plaintext model into HE layers.

    Raises ``ValueError`` on layers without a homomorphic counterpart
    (ReLU) or BatchNorm in a position it cannot be folded from.
    """
    he_layers: list[HeLayer] = []
    plain = list(model)
    i = 0
    while i < len(plain):
        layer = plain[i]
        nxt = plain[i + 1] if i + 1 < len(plain) else None
        if isinstance(layer, Conv2d):
            if isinstance(nxt, BatchNorm2d):
                w, b = _fold_bn_into_conv(layer, nxt)
                i += 1
            else:
                w = layer.weight.data
                b = layer.bias.data if layer.bias is not None else None
            he_layers.append(HeConv2d(w, b, layer.stride, layer.padding, prune_below))
        elif isinstance(layer, Linear):
            if isinstance(nxt, BatchNorm2d):
                w, b = _fold_bn_into_linear(layer, nxt)
                i += 1
            else:
                w = layer.weight.data
                b = layer.bias.data if layer.bias is not None else None
            he_layers.append(HeLinear(w, b, prune_below))
        elif isinstance(layer, SLAF):
            he_layers.append(HePoly(layer.coeffs.data, per_channel=layer.channels is not None))
        elif isinstance(layer, Square):
            he_layers.append(HePoly(np.array([0.0, 0.0, 1.0]), per_channel=False))
        elif isinstance(layer, Flatten):
            he_layers.append(HeFlatten())
        elif isinstance(layer, AvgPool2d):
            he_layers.append(HeAvgPool(layer.kernel_size, layer.stride))
        elif isinstance(layer, BatchNorm2d):
            raise ValueError(
                "BatchNorm must directly follow a Conv2d/Linear layer to be folded"
            )
        elif isinstance(layer, ReLU):
            raise ValueError(
                "ReLU has no homomorphic counterpart; run slafify() first (§III.A)"
            )
        else:
            raise ValueError(f"no HE lowering for layer {layer!r}")
        i += 1
    return he_layers


def model_depth(he_layers: list[HeLayer]) -> int:
    """Total rescaling levels the compiled graph consumes.

    This is the paper's multiplicative-depth accounting (§V.B): 1 per
    linear layer, ``degree`` per polynomial activation.
    """
    return sum(layer.depth for layer in he_layers)
