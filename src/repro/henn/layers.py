"""Inference-only homomorphic layers.

A feature map is a NumPy ``object`` array of backend handles with the
*feature* shape — ``(C, H, W)`` after convolutions, ``(F,)`` after
flattening.  Each handle packs the whole image batch in its SIMD slots,
so a layer is evaluated once per scalar position regardless of batch
size (CryptoNets packing).

Linear layers (conv/dense) consume exactly one rescaling level; a
degree-*d* polynomial activation consumes *d* (see
``HeBackend.poly_eval``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.henn.backend import HeBackend
from repro.nn.layers.conv import conv_output_shape

__all__ = [
    "HeLayer",
    "HeConv2d",
    "HeLinear",
    "HePoly",
    "HeFlatten",
    "HeAvgPool",
    "conv_tap_program",
]


def conv_tap_program(
    wmat: np.ndarray,
    h: int,
    w: int,
    stride: int,
    padding: int,
    prune_below: float,
) -> tuple[int, int, list[tuple[int, int, list[int], np.ndarray]]]:
    """Tap geometry of one conv output channel as an explicit program.

    For every output position the program records which flattened input
    positions (indices into ``x.reshape(-1)`` of the ``(C, H, W)``
    handle array) are gathered and with which weights — the exact
    ``(ci, di, dj)`` iteration order, bounds checks, pruning rule and
    fully-pruned fallback of :meth:`HeConv2d.forward`, so evaluating a
    program is bit-identical to the inline loop.  The inference-plan
    layer compiles these programs once per engine and replays them every
    image.

    Parameters
    ----------
    wmat:
        ``(IC, KH, KW)`` weights of one output channel.
    h, w:
        Input feature-map height and width.
    stride, padding, prune_below:
        As on :class:`HeConv2d`.

    Returns
    -------
    ``(oh, ow, program)`` where program entries are ``(i, j,
    flat_indices, weights)`` in row-major output order.
    """
    ic, kh, kw = wmat.shape
    s, p = stride, padding
    oh, ow = conv_output_shape(h, w, kh, kw, s, p)
    program: list[tuple[int, int, list[int], np.ndarray]] = []
    for i in range(oh):
        for j in range(ow):
            idxs: list[int] = []
            ws: list[float] = []
            for ci in range(ic):
                for di in range(kh):
                    for dj in range(kw):
                        yy = i * s - p + di
                        xx = j * s - p + dj
                        if 0 <= yy < h and 0 <= xx < w:
                            wv = wmat[ci, di, dj]
                            if abs(wv) > prune_below:
                                idxs.append((ci * h + yy) * w + xx)
                                ws.append(float(wv))
            if not idxs:  # fully pruned window: keep a zero term
                idxs = [max(0, min(i * s, h - 1)) * w + max(0, min(j * s, w - 1))]
                ws = [0.0]
            program.append((i, j, idxs, np.asarray(ws, dtype=np.float64)))
    return oh, ow, program


class HeLayer(ABC):
    """One compiled layer: maps a handle array to a handle array."""

    #: Rescaling levels consumed per forward pass.
    depth: int = 0

    @abstractmethod
    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray: ...

    def __call__(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        return self.forward(backend, x)


class HeConv2d(HeLayer):
    """Convolution with plaintext weights over encrypted feature maps.

    Each output position is one :meth:`~HeBackend.weighted_sum` over its
    receptive-field handles, followed by a single rescale and a
    plaintext bias addition.  Weights with ``|w| < prune_below`` are
    dropped (Faster-CryptoNets-style sparsity, §IV).
    """

    depth = 1

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int = 1,
        padding: int = 0,
        prune_below: float = 0.0,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 4:
            raise ValueError("conv weight must be (OC, IC, KH, KW)")
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.stride = stride
        self.padding = padding
        self.prune_below = prune_below

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"expected (C, H, W) handle array, got shape {x.shape}")
        oc, ic, kh, kw = self.weight.shape
        c, h, w = x.shape
        if c != ic:
            raise ValueError(f"conv expects {ic} input channels, got {c}")
        flat = x.reshape(-1)
        out = None
        for o in range(oc):
            oh, ow, program = conv_tap_program(
                self.weight[o], h, w, self.stride, self.padding, self.prune_below
            )
            if out is None:
                out = np.empty((oc, oh, ow), dtype=object)
            for i, j, idxs, ws in program:
                taps = [flat[t] for t in idxs]
                acc = backend.weighted_sum(taps, ws)
                acc = backend.rescale(acc)
                if self.bias is not None:
                    acc = backend.add_plain(acc, float(self.bias[o]))
                out[o, i, j] = acc
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        oc, ic, kh, _ = self.weight.shape
        return f"HeConv2d({ic}->{oc}, k={kh}, s={self.stride}, p={self.padding})"


class HeLinear(HeLayer):
    """Dense layer: one weighted sum per output neuron."""

    depth = 1

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None, prune_below: float = 0.0):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("linear weight must be (out, in)")
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.prune_below = prune_below

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        if x.ndim != 1:
            raise ValueError("HeLinear expects a flat handle vector (use HeFlatten)")
        out_f, in_f = self.weight.shape
        if x.shape[0] != in_f:
            raise ValueError(f"linear expects {in_f} inputs, got {x.shape[0]}")
        out = np.empty(out_f, dtype=object)
        handles = list(x)
        for o in range(out_f):
            row = self.weight[o]
            if self.prune_below > 0:
                keep = np.abs(row) > self.prune_below
                taps = [h for h, k in zip(handles, keep) if k]
                ws = row[keep]
                if not taps:
                    taps, ws = [handles[0]], np.array([0.0])
            else:
                taps, ws = handles, row
            acc = backend.rescale(backend.weighted_sum(taps, np.asarray(ws)))
            if self.bias is not None:
                acc = backend.add_plain(acc, float(self.bias[o]))
            out[o] = acc
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeLinear({self.weight.shape[1]}->{self.weight.shape[0]})"


class HePoly(HeLayer):
    """Polynomial (SLAF) activation, per-channel or layer-wide coefficients.

    Every feature-map position evaluates ``sum_k coeffs[k] x^k`` via the
    backend's baby-step/giant-step evaluator (see ``docs/KERNELS.md``):
    the whole position grid goes through :meth:`HeBackend.poly_eval_many`
    in one call, so backends with a batched path (CKKS-RNS) share the
    baby-step power basis — and its NTT/keyswitch sweeps — across all
    ``C * H * W`` positions.  Consumes ``compile_poly_program(degree).depth
    <= degree`` levels; ``self.depth`` stays the conservative ``degree``
    bound used by the plan compiler's level budget.

    Args (constructor):
        coeffs: ``(degree + 1,)`` layer-wide or ``(C, degree + 1)``
            per-channel coefficient rows, constant term first.
        per_channel: when True, channel ``c`` (or flat feature ``f``)
            uses ``coeffs[c]``; otherwise row 0 applies everywhere.
    """

    def __init__(self, coeffs: np.ndarray, per_channel: bool = False):
        self.coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.float64))
        self.per_channel = per_channel
        self.depth = self.coeffs.shape[1] - 1

    def _row(self, channel: int) -> np.ndarray:
        if self.per_channel:
            return self.coeffs[channel]
        return self.coeffs[0]

    def _rows_for(self, x: np.ndarray) -> np.ndarray:
        """Coefficient rows aligned with ``x.reshape(-1)``, one per position."""
        if x.ndim == 3:
            if not self.per_channel:
                return self.coeffs[:1]
            reps = x.shape[1] * x.shape[2]
            return np.repeat(self.coeffs[: x.shape[0]], reps, axis=0)
        if x.ndim == 1:
            if not self.per_channel:
                return self.coeffs[:1]
            return self.coeffs[: x.shape[0]]
        raise ValueError(f"unsupported handle array rank {x.ndim}")

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        rows = self._rows_for(x)
        flat = x.reshape(-1)
        results = backend.poly_eval_many(list(flat), rows)
        out = np.empty(len(results), dtype=object)
        out[:] = results
        return out.reshape(x.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HePoly(degree={self.depth}, per_channel={self.per_channel})"


class HeFlatten(HeLayer):
    """``(C, H, W) -> (C*H*W,)`` in C-order (matches ``nn.Flatten``)."""

    depth = 0

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        return x.reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "HeFlatten()"


class HeAvgPool(HeLayer):
    """Mean pooling (a plaintext-weighted sum; consumes one level)."""

    depth = 1

    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError("HeAvgPool expects (C, H, W)")
        c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh, ow = conv_output_shape(h, w, k, k, s, 0)
        inv = 1.0 / (k * k)
        out = np.empty((c, oh, ow), dtype=object)
        for ci in range(c):
            for i in range(oh):
                for j in range(ow):
                    taps = [x[ci, i * s + di, j * s + dj] for di in range(k) for dj in range(k)]
                    out[ci, i, j] = backend.rescale(
                        backend.weighted_sum(taps, np.full(len(taps), inv))
                    )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeAvgPool(k={self.kernel_size}, s={self.stride})"
