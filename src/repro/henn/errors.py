"""Error analysis of §III.C: encoding rounding and activation approximation.

Two error sources the paper discusses:

1. **Encoding error** — numbers near zero can be destroyed when encoded
   with a small scaling factor Δ.  :func:`paper_encoding_example`
   reproduces the worked example (M = 8, Δ = 64, z = (0.1, -0.01) — the
   second slot decodes with the wrong magnitude *and sign*), and
   :func:`encoding_error_sweep` shows the error shrinking as Δ grows.
2. **Polynomial-approximation error** — approximating
   ``ReLU(x) = x (sign(x) + 1) / 2`` with a polynomial sign makes
   ReLU(x) > 0 for some x < 0.  :func:`approx_sign` implements the
   composite polynomial iteration of Cheon et al. [19] and
   :func:`relu_from_sign` exhibits that residual error.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.encoder import CkksEncoder

__all__ = [
    "paper_encoding_example",
    "encoding_error_sweep",
    "approx_sign",
    "relu_from_sign",
    "relu_negative_leakage",
]


def paper_encoding_example() -> dict[str, object]:
    """The §III.C worked example: M = 8 (N = 4), Δ = 64, z = (0.1, -0.01).

    Returns the integer polynomial coefficients and the decoded slots;
    the paper observes the small slot (-0.01) comes back with wrong
    value and sign (they report ~+0.00268 for one root convention).
    """
    enc = CkksEncoder(4)  # N = 4 -> Phi_8, two slots
    z = np.array([0.1, -0.01])
    delta = 64.0
    coeffs = enc.encode(z, delta)
    decoded = enc.decode(coeffs, delta)
    return {
        "z": z,
        "delta": delta,
        "coeffs": np.array([int(c) for c in coeffs]),
        "decoded": decoded,
        "abs_error": np.abs(np.real(decoded) - z),
        "sign_flipped": bool(np.sign(np.real(decoded[1])) != np.sign(z[1])),
    }


def encoding_error_sweep(
    deltas: list[float], values: np.ndarray | None = None, n: int = 64
) -> list[tuple[float, float]]:
    """Max round-trip error for each Δ — increasing Δ reduces the error."""
    enc = CkksEncoder(n)
    if values is None:
        rng = np.random.default_rng(0)
        values = rng.uniform(-1.0, 1.0, n // 2)
    out = []
    for d in deltas:
        err = enc.encoding_error(values, float(d)).max()
        out.append((float(d), float(err)))
    return out


def approx_sign(x: np.ndarray, iterations: int = 7) -> np.ndarray:
    """Composite polynomial sign approximation (Cheon et al. style).

    Iterates ``f(t) = (3 t - t^3) / 2``, which contracts toward ±1 on
    (-1, 1).  Input must lie in [-1, 1]; convergence is slow near 0 —
    exactly why small negative inputs leak through ReLU (§III.C).
    """
    t = np.asarray(x, dtype=np.float64)
    for _ in range(iterations):
        t = 0.5 * (3.0 * t - t**3)
    return t


def relu_from_sign(x: np.ndarray, iterations: int = 7) -> np.ndarray:
    """``ReLU(x) ≈ x (sign(x) + 1) / 2`` with the polynomial sign."""
    return np.asarray(x) * (approx_sign(x, iterations) + 1.0) / 2.0


def relu_negative_leakage(degree: int = 7, grid: int = 2001) -> float:
    """Maximum positive output of a polynomial ReLU approximation on x < 0.

    The paper's point: "when we calculate ReLU(x) for x < 0 ... the
    function will be greater than zero".  A least-squares degree-*d*
    polynomial fit of ReLU necessarily oscillates above zero on part of
    the negative axis; this measures by how much.
    """
    from repro.nn.layers.activations import fit_relu_coeffs

    coeffs = fit_relu_coeffs(degree, lo=-1.0, hi=1.0)
    xs = np.linspace(-1.0, -1e-6, grid)
    vals = sum(c * xs**k for k, c in enumerate(coeffs))
    return float(np.max(vals))
