"""The CNN-HE-RNS hybrid engine used for the moduli-chain sweeps.

This is the literal Fig. 5 dataflow: the convolutional stage is
executed as *k* independent RNS residue channels (decompose -> parallel
conv -> CRT recompose) over fixed-point integers whose width models the
CKKS coefficient budget, and the remaining layers (activations, dense)
are evaluated homomorphically under a fixed CKKS-RNS configuration.

Sweeping *k* with everything else fixed regenerates Tables IV/VI: the
``k = 1`` row is the non-decomposed (multiprecision) convolution — the
paper's CNN-HE reference point in Table VI — and larger *k* trades
narrower, word-sized channel arithmetic against per-channel overhead.

Protocol caveat (soundness note, DESIGN.md §5.2): in the paper's
figures the residue channels of the *encrypted* input are convolved and
then CRT-recomposed; a homomorphic CRT recomposition requires a modular
reduction CKKS cannot perform, so — like the paper — this engine is a
*performance model* of the decomposed convolution stage.  The fully
encrypted CNN-HE-RNS configuration (RNS at the ciphertext level) is
:class:`~repro.henn.backend.CkksRnsBackend` + the standard engine, used
for Tables III/V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.henn.backend import HeBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeConv2d, HeLayer
from repro.henn.rnscnn import QuantizedConvSpec, RnsIntegerConv, basis_for_budget
from repro.parallel import Executor, SerialExecutor, make_executor
from repro.utils.timing import LatencyStats

__all__ = ["HybridRnsEngine", "StageTimings"]


@dataclass
class StageTimings:
    """Per-stage seconds of the last classification."""

    conv_stage: float = 0.0
    he_stage: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end seconds: conv stage + encrypted tail."""
        return self.conv_stage + self.he_stage


class HybridRnsEngine:
    """Fig. 5 pipeline: RNS-decomposed conv stage + encrypted tail."""

    def __init__(
        self,
        backend: HeBackend,
        he_layers: list[HeLayer],
        input_shape: tuple[int, int, int],
        k_moduli: int = 3,
        total_bits: int = 240,
        spec: QuantizedConvSpec | None = None,
        executor: Executor | str | None = None,
        redundancy: int = 0,
        fault_injector: "object | None" = None,
        plan: bool = True,
    ):
        """Split the compiled graph at the first convolution.

        ``he_layers`` must start with a :class:`HeConv2d`; that layer is
        re-expressed as an :class:`RnsIntegerConv` over ``k_moduli``
        channels at a fixed ``total_bits`` precision budget; everything
        after it stays homomorphic.  ``redundancy`` adds that many
        redundant RRNS moduli so a corrupted or dropped conv channel is
        detected and recovered (see ``docs/RESILIENCE.md``).

        ``executor`` may be an :class:`~repro.parallel.Executor` instance
        (caller-owned) or a kind string (``"thread"`` …); a kind string
        builds an executor the engine owns and releases in
        :meth:`close` (the engine is also a context manager).

        ``plan`` compiles the encrypted tail's inference plan up front
        (see :class:`~repro.henn.plan.InferencePlan`); pass ``False``
        for the original encode-per-call evaluation.
        """
        if not he_layers or not isinstance(he_layers[0], HeConv2d):
            raise ValueError("hybrid engine expects the graph to start with HeConv2d")
        conv = he_layers[0]
        default_spec = QuantizedConvSpec(
            input_bits=max(8, total_bits // 2), weight_bits=max(20, total_bits // 2 - 8)
        )
        self.spec = spec or default_spec
        need = self.spec.dynamic_range_bits(conv.weight) + 2
        base = basis_for_budget(k_moduli, max(total_bits, need))
        self.k_moduli = k_moduli
        self._owned_executor: Executor | None = None
        if isinstance(executor, str):
            executor = self._owned_executor = make_executor(executor)
        self.conv = RnsIntegerConv(
            conv.weight,
            base,
            stride=conv.stride,
            padding=conv.padding,
            spec=self.spec,
            executor=executor or SerialExecutor(),
            redundancy=redundancy,
            fault_injector=fault_injector,
        )
        self.conv_bias = conv.bias
        self.tail = HeInferenceEngine(backend, he_layers[1:], input_shape, plan=plan)
        self.input_shape = input_shape
        self.backend = backend
        self.latency = LatencyStats()
        self.stages = StageTimings()

    @property
    def last_faults(self) -> list[int]:
        """Residue channels erased/corrected during the last classify."""
        return self.conv.last_faults

    def close(self) -> None:
        """Release the engine-owned executor, if any (idempotent)."""
        ex, self._owned_executor = self._owned_executor, None
        if ex is not None:
            ex.close()

    def __enter__(self) -> "HybridRnsEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def classify(self, images: np.ndarray) -> np.ndarray:
        """Classify ``(B, C, H, W)`` images; returns ``(B, 10)`` logits.

        Stage seconds land in :attr:`stages` and — when tracing is
        enabled — as ``hybrid.stage.conv`` / ``hybrid.stage.he`` spans,
        with the tail's per-layer ``henn.layer`` spans nested inside
        the latter.

        Parameters
        ----------
        images:
            ``(B, C, H, W)`` float batch, ``B <= backend.max_batch``.

        Returns
        -------
        ``(B, 10)`` array of decrypted logits.
        """
        images = np.asarray(images, dtype=np.float64)
        batch = images.shape[0]
        t0 = time.perf_counter()
        with obs.span("hybrid.stage.conv", k_moduli=self.k_moduli):
            feats = self.conv.forward(images)  # (B, OC, OH, OW) floats, exact
            if self.conv_bias is not None:
                feats = feats + self.conv_bias[None, :, None, None]
        t1 = time.perf_counter()
        # Encrypt the feature maps and run the homomorphic tail.
        c, h, w = feats.shape[1:]
        enc = np.empty((c, h, w), dtype=object)
        with obs.span("hybrid.stage.he"):
            rows = feats.reshape(batch, -1).T  # one slot vector per position
            handles = self.backend.encrypt_many(list(rows))
            flat = enc.reshape(-1)
            for idx, hd in enumerate(handles):
                flat[idx] = hd
            out = self.tail.run_encrypted(enc)
        t2 = time.perf_counter()
        self.stages = StageTimings(conv_stage=t1 - t0, he_stage=t2 - t1)
        self.latency.add(self.stages.total)
        return np.stack([self.backend.decrypt(hd, count=batch) for hd in out], axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy over *images*, batched by ``max_batch``."""
        correct = 0
        b = self.backend.max_batch
        for start in range(0, images.shape[0], b):
            logits = self.classify(images[start : start + b])
            correct += int((logits.argmax(axis=1) == labels[start : start + b]).sum())
        return correct / images.shape[0]
