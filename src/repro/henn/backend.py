"""HE evaluation backends behind one small interface.

A *handle* is one ciphertext (or its mock) holding a vector of scalars:
slot *i* belongs to image *i* of the batch (SIMD packing).  The network
layers in :mod:`repro.henn.layers` are written against this interface
only, so the same compiled model runs under:

* :class:`MockBackend` — plaintext simulation with identical
  scale/level bookkeeping and weight quantisation; used for
  full-test-set accuracy (verified against real HE by the
  backend-agreement tests).
* :class:`CkksBackend` — multiprecision CKKS (the paper's CNN-HE).
* :class:`CkksRnsBackend` — full-RNS CKKS (CNN-HE-RNS), with a
  vectorised ``weighted_sum`` that batches all taps of a neuron into a
  few channelwise NumPy kernels and dispatches residue channels through
  the context executor.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.ckks import CkksContext, CkksParams
from repro.ckksrns import CkksRnsContext, CkksRnsParams, RnsCiphertext
from repro.nt.kernels import MAX_POLY_DEGREE, PolyProgram, compile_poly_program
from repro.obs.metrics import get_registry
from repro.utils.rng import derive_rng

__all__ = ["HeBackend", "MockBackend", "CkksBackend", "CkksRnsBackend", "EncodedTaps"]


# ----------------------------------------------------------------- BSGS interpreter
#
# One interpreter serves every backend: the `ops` adapter supplies the
# primitive operations, either on a single handle with scalar constants
# (`_SinglePolyOps`, any backend) or on a batched (k, B, n) RNS
# ciphertext with per-position constant vectors (`_RnsBatchOps`).  The
# adapter contract: square / mul / rescale / add as usual, plus
# ``mul_plain_vec(h, consts, ps)`` and ``add_plain_vec(h, consts)``
# where ``consts`` has one value per packed position.


class _SinglePolyOps:
    """Adapter: one handle, position batch of size 1."""

    __slots__ = ("b",)

    def __init__(self, backend: "HeBackend"):
        self.b = backend

    @property
    def delta(self) -> float:
        return self.b.scale

    def scale_of(self, h: Any) -> float:
        return self.b.scale_of(h)

    def square(self, h: Any) -> Any:
        return self.b.square(h)

    def mul(self, a: Any, b: Any) -> Any:
        return self.b.mul(a, b)

    def rescale(self, h: Any) -> Any:
        return self.b.rescale(h)

    def add(self, a: Any, b: Any) -> Any:
        return self.b.add(a, b)

    def mul_plain_vec(self, h: Any, consts: np.ndarray, ps: float) -> Any:
        return self.b.mul_plain_scalar(h, float(consts[0]), ps)

    def add_plain_vec(self, h: Any, consts: np.ndarray) -> Any:
        return self.b.add_plain(h, float(consts[0]))

    # extended (degree >= 2) ops — lazy-relinearisation interpreter only

    def square_raw(self, h: Any) -> Any:
        return self.b.square_raw(h)

    def mul_raw(self, a: Any, b: Any) -> Any:
        return self.b.mul_raw(a, b)

    def rescale_ext(self, e: Any, defer_high: bool = False) -> Any:
        return self.b.rescale_ext(e, defer_high=defer_high)

    def relinearize(self, e: Any) -> Any:
        return self.b.relinearize_ext(e)

    def add_ext(self, a: Any, b: Any) -> Any:
        return self.b.add_ext(a, b)

    def mul_plain_vec_ext(self, e: Any, consts: np.ndarray, ps: float) -> Any:
        return self.b.mul_plain_scalar_ext(e, float(consts[0]), ps)

    def add_plain_vec_ext(self, e: Any, consts: np.ndarray) -> Any:
        return self.b.add_plain_ext(e, float(consts[0]))

    def scale_of_ext(self, e: Any) -> float:
        return self.b.scale_of_ext(e)


def _run_poly_program(ops: Any, prog: PolyProgram, x: Any, coeffs: np.ndarray) -> Any:
    """Interpret a compiled BSGS program over one (possibly batched) handle.

    ``coeffs`` is ``(B, degree + 1)`` with one coefficient row per packed
    position (``B == 1`` for the single-handle path).  Blocks are folded
    from the top giant down (Horner in ``y = x^baby_m``); inside each
    block, terms align to a common scale via per-term plain-scale
    compensation exactly like the legacy power-basis evaluator, so
    degrees 1–2 reproduce it bit-identically.  A constant-only top block
    is deferred and folded into the first giant step as a plaintext
    multiply (no ciphertext mult).  Ends with one rescale back to ~Δ.
    """
    powers = {1: x}
    for j in range(2, prog.baby_top + 1):
        prev = powers[j - 1]
        powers[j] = ops.rescale(ops.square(prev) if j == 2 else ops.mul(prev, x))
    y = powers[prog.baby_m] if prog.giants > 1 else None
    m = prog.baby_m
    acc = None
    pending = None  # constants of a deferred degree-0 top block
    for g in range(prog.giants - 1, -1, -1):
        base = g * m
        bd = prog.block_degrees[g]
        if acc is None and pending is None:
            if bd == 0:
                pending = coeffs[:, base]
                continue
            target = ops.scale_of(powers[bd]) * ops.delta
        elif pending is not None:
            acc = ops.mul_plain_vec(y, pending, ops.delta)
            pending = None
            target = ops.scale_of(acc)
        else:
            acc = ops.rescale(ops.mul(acc, y))
            target = ops.scale_of(acc)
        for j in range(bd, 0, -1):
            ps = target / ops.scale_of(powers[j])
            term = ops.mul_plain_vec(powers[j], coeffs[:, base + j], ps)
            acc = term if acc is None else ops.add(acc, term)
        acc = ops.add_plain_vec(acc, coeffs[:, base])
    return ops.rescale(acc)


def _run_poly_program_lazy(
    ops: Any, prog: PolyProgram, x: Any, coeffs: np.ndarray
) -> Any:
    """Lazy-relinearisation variant of :func:`_run_poly_program`.

    Same block/scale schedule (same rescale count, same plain-scale
    compensation, hence the same final level and scale), but products
    stay in extended degree-2/3 space and relinearise *after* summing:

    * the giant power ``y = x^baby_m`` is kept raw (degree 2), saving
      its keyswitch entirely;
    * each Horner fold ``acc * y`` produces a degree-3 extended
      accumulator; block terms (degree-1 plaintext products) are added
      into it componentwise, and one *merged* keyswitch (s² and s³
      digits in a single sweep) relinearises the whole block sum —
      post-rescale, i.e. one level lower than the eager keyswitch.

    ``prog.relins`` counts the sweeps: ``~ceil(degree / baby_m)`` versus
    ``prog.ct_mults ~ 2*sqrt(degree)`` for the eager interpreter.  The
    result is *not* bit-identical to eager — deferring keyswitch noise
    past rescales changes rounding at the last few bits — but agrees to
    within the scheme's approximation error (bounded by the
    lazy-vs-eager tests).
    """
    powers = {1: x}
    y_raw = None
    for j in range(2, prog.baby_top + 1):
        prev = powers[j - 1]
        raw = ops.square_raw(prev) if j == 2 else ops.mul_raw(prev, x)
        if j == prog.baby_m and prog.giants > 1:
            # The giant power stays extended (no keyswitch) and must keep
            # its high component in the NTT domain: it feeds dyadic
            # ct x ext products in the Horner folds below.
            y_raw = ops.rescale_ext(raw)
        else:
            powers[j] = ops.relinearize(ops.rescale_ext(raw, defer_high=True))
    m = prog.baby_m
    acc = None  # relinearised degree-1 accumulator
    acc_ext = None  # extended degree-2/3 accumulator
    pending = None  # constants of a deferred degree-0 top block
    for g in range(prog.giants - 1, -1, -1):
        base = g * m
        bd = prog.block_degrees[g]
        if acc is None and acc_ext is None and pending is None:
            if bd == 0:
                pending = coeffs[:, base]
                continue
            target = ops.scale_of(powers[bd]) * ops.delta
        elif pending is not None:
            acc_ext = ops.mul_plain_vec_ext(y_raw, pending, ops.delta)
            pending = None
            target = ops.scale_of_ext(acc_ext)
        else:
            if acc_ext is not None:
                # The accumulator must be degree 1 before folding with the
                # raw giant power (degree 1 x 2 -> 3 is the ceiling the
                # merged sweep handles): relinearise the block sum now.
                acc = ops.relinearize(acc_ext)
                acc_ext = None
            acc_ext = ops.rescale_ext(ops.mul_raw(acc, y_raw), defer_high=True)
            acc = None
            target = ops.scale_of_ext(acc_ext)
        for j in range(bd, 0, -1):
            ps = target / ops.scale_of(powers[j])
            term = ops.mul_plain_vec(powers[j], coeffs[:, base + j], ps)
            if acc_ext is not None:
                acc_ext = ops.add_ext(acc_ext, term)
            else:
                acc = term if acc is None else ops.add(acc, term)
        if acc_ext is not None:
            acc_ext = ops.add_plain_vec_ext(acc_ext, coeffs[:, base])
        else:
            acc = ops.add_plain_vec(acc, coeffs[:, base])
    if acc_ext is not None:
        return ops.relinearize(ops.rescale_ext(acc_ext, defer_high=True))
    return ops.rescale(acc)


@dataclass
class EncodedTaps:
    """Compile-once constants for one weighted sum (a conv/linear neuron).

    Produced by :meth:`HeBackend.encode_taps` and replayed by
    :meth:`HeBackend.weighted_sum_encoded`; what is precomputed depends
    on the backend — quantized integer weights everywhere, plus the
    ``(taps, k_top)`` residue table for CKKS-RNS.  The encoded form is
    bit-identical to encoding the float weights on every call because
    quantization (``round(w * Δp)``) is deterministic.
    """

    plain_scale: float
    weights: np.ndarray  #: original float weights (generic fallback path)
    consts: list[int]  #: quantized integers ``round(w * plain_scale)``
    keep: list[int]  #: indices of taps with nonzero quantized weight
    residues: np.ndarray | None = None  #: (taps, k_top) int64, RNS only


class HeBackend(ABC):
    """Minimal homomorphic-evaluation interface used by the HE layers."""

    name: str = "abstract"

    #: Whether :meth:`concat_slots` packs requests into genuinely shared
    #: ciphertexts (SIMD slot stacking).  True only where packing is
    #: *exact*: the mock backend concatenates plaintext slot vectors
    #: bit-identically.  The raw CKKS schemes keep this False — moving a
    #: payload to a different slot range would need a Galois rotation,
    #: whose keyswitch noise breaks bit-identity with the serial run —
    #: and are instead served through
    #: :class:`repro.serving.packing.SlotPackedBackend`, which stacks
    #: member ciphertexts along a lane axis (one backend call per op,
    #: exact per lane) rather than into one slot range.
    native_slot_concat: bool = False

    #: Whether the backend implements the raw/extended ciphertext ops
    #: (``square_raw`` .. ``relinearize_ext``) that the lazy BSGS
    #: interpreter needs.  Backends that do not are always evaluated
    #: eagerly regardless of :attr:`relin_mode`.
    supports_lazy_relin: bool = False

    _relin_mode: str | None = None

    @property
    def relin_mode(self) -> str:
        """BSGS relinearisation strategy: ``"lazy"`` (default) or ``"eager"``.

        Resolution order: an explicit assignment on the instance wins,
        then the ``REPRO_RELIN_MODE`` environment variable, then
        ``"lazy"``.  The eager interpreter is kept as a flag-selectable
        oracle — it relinearises after every product, which lazy must
        match to within the scheme's approximation noise.
        """
        if self._relin_mode is not None:
            return self._relin_mode
        mode = os.environ.get("REPRO_RELIN_MODE", "lazy").strip().lower()
        return mode if mode in ("lazy", "eager") else "lazy"

    @relin_mode.setter
    def relin_mode(self, mode: str) -> None:
        mode = str(mode).strip().lower()
        if mode not in ("lazy", "eager"):
            raise ValueError(f"relin_mode must be 'lazy' or 'eager', got {mode!r}")
        self._relin_mode = mode

    def _use_lazy(self) -> bool:
        return self.supports_lazy_relin and self.relin_mode == "lazy"

    @property
    @abstractmethod
    def scale(self) -> float:
        """Base plaintext scale Δ."""

    @property
    @abstractmethod
    def max_batch(self) -> int:
        """Number of SIMD slots (images per ciphertext)."""

    @abstractmethod
    def encrypt(self, values: np.ndarray) -> Any:
        """Encrypt a 1-D value vector into one ciphertext handle (SIMD slots)."""

    @abstractmethod
    def decrypt(self, handle: Any, count: int | None = None) -> np.ndarray:
        """Decrypt *handle*, returning the first *count* slots (all if None)."""

    def encrypt_many(self, rows: Sequence[np.ndarray]) -> list[Any]:
        """Encrypt many slot vectors, one handle each.

        The generic implementation loops :meth:`encrypt`; the RNS
        backend overrides it to run all rows through shared batched
        transforms (same randomness order, so same ciphertexts).
        """
        return [self.encrypt(v) for v in rows]

    @abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Ciphertext + ciphertext (scales must match)."""

    @abstractmethod
    def add_plain(self, a: Any, value: float) -> Any:
        """Ciphertext + plaintext scalar, broadcast over slots."""

    @abstractmethod
    def mul_plain_scalar(self, a: Any, scalar: float, plain_scale: float | None = None) -> Any:
        """Ciphertext × plaintext scalar encoded at *plain_scale* (default Δ)."""

    @abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Ciphertext × ciphertext with relinearisation; scale multiplies."""

    @abstractmethod
    def square(self, a: Any) -> Any:
        """Ciphertext squaring (cheaper than ``mul(a, a)`` where supported)."""

    @abstractmethod
    def rescale(self, a: Any) -> Any:
        """Drop one modulus level, dividing the scale back toward Δ."""

    @abstractmethod
    def scale_of(self, a: Any) -> float:
        """Current plaintext scale of *a*."""

    @abstractmethod
    def level_of(self, a: Any) -> int:
        """Remaining multiplicative levels of *a*."""

    def mul_plain_vector(self, a: Any, values: "np.ndarray") -> Any:
        """Slotwise multiply by a plaintext vector (single-image packing)."""
        raise NotImplementedError(f"{self.name} backend has no vector plain-multiply")

    def rotate(self, a: Any, r: int) -> Any:
        """Left-rotate slots by *r* (requires rotation keys where real)."""
        raise NotImplementedError(f"{self.name} backend has no rotations")

    # -- raw / extended ciphertext ops (lazy relinearisation) -------------------
    #
    # Backends advertising ``supports_lazy_relin`` implement these seven
    # primitives; the extended handle type is backend-specific (it only
    # needs a ``.scale`` attribute for the interpreter's bookkeeping).

    def square_raw(self, a: Any) -> Any:
        """``a * a`` without relinearisation: a degree-2 extended handle."""
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def mul_raw(self, a: Any, b: Any) -> Any:
        """``a * b`` without relinearisation.

        *b* may be a regular handle (result degree 2) or a raw degree-2
        extended handle (result degree 3 — the Horner fold against the
        raw giant power).
        """
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def rescale_ext(self, e: Any, defer_high: bool = False) -> Any:
        """Rescale an extended handle componentwise (marks it deferred).

        ``defer_high`` hints that the high components will only ever be
        relinearised, letting RNS backends hold them in coefficient
        domain; backends without that optimisation ignore it.
        """
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def relinearize_ext(self, e: Any) -> Any:
        """Key-switch an extended handle back to degree 1.

        Degree 3 uses the s³ evaluation key merged with the s² key into
        a single sweep.
        """
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def add_ext(self, a: Any, b: Any) -> Any:
        """Add handles of mixed degree (either side may be extended)."""
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def mul_plain_scalar_ext(self, e: Any, scalar: float, plain_scale: float | None = None) -> Any:
        """Extended handle × plaintext scalar (componentwise)."""
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def add_plain_ext(self, e: Any, value: float) -> Any:
        """Extended handle + plaintext scalar (touches c0 only where real)."""
        raise NotImplementedError(f"{self.name} backend has no lazy relinearisation")

    def scale_of_ext(self, e: Any) -> float:
        """Current plaintext scale of an extended handle."""
        return e.scale

    # -- slot packing (serving gateway) -----------------------------------------

    def concat_slots(self, handles: Sequence[Any], counts: Sequence[int]) -> Any:
        """Stack independent request ciphertexts along the slot axis.

        Handle *j* contributes slots ``[offset_j, offset_j + counts[j])``
        of the packed result, where ``offset_j = sum(counts[:j])`` — the
        batching gateway's assembly primitive.  Only backends that can
        do this exactly implement it (``native_slot_concat``); the base
        class refuses so callers fall back to structural packing.
        """
        raise NotImplementedError(f"{self.name} backend has no native slot packing")

    def slice_slots(self, a: Any, start: int, count: int) -> Any:
        """Inverse of :meth:`concat_slots`: one request's slot range."""
        raise NotImplementedError(f"{self.name} backend has no native slot packing")

    # -- composite operations (overridable fast paths) -------------------------

    def weighted_sum(
        self, handles: Sequence[Any], weights: np.ndarray, plain_scale: float | None = None
    ) -> Any:
        """``sum_i weights[i] * handles[i]`` at a common plain scale.

        The generic implementation multiplies and adds pairwise; RNS
        overrides it with a batched channelwise kernel (this is where
        convolutions spend their time).

        Parameters
        ----------
        handles:
            Ciphertext handles of the summands.
        weights:
            Matching plaintext weights (same length as *handles*).
        plain_scale:
            Encoding scale of the weights (defaults to Δ).

        Returns
        -------
        A handle for the weighted sum at scale ``scale * plain_scale``.
        """
        if len(handles) != len(weights):
            raise ValueError("handles/weights length mismatch")
        if len(handles) == 0:
            raise ValueError("weighted_sum needs at least one term")
        ps = float(plain_scale or self.scale)
        # Taps whose weight quantizes to zero contribute exactly nothing
        # (their encoded multiplier is the zero plaintext): skip them.
        keep = [t for t in range(len(handles)) if int(round(float(weights[t]) * ps)) != 0]
        if not keep:
            keep = [0]
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            acc = self.mul_plain_scalar(handles[keep[0]], float(weights[keep[0]]), ps)
            for t in keep[1:]:
                acc = self.add(acc, self.mul_plain_scalar(handles[t], float(weights[t]), ps))
            return acc

    # -- compile-once taps (overridable fast paths) -----------------------------

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        """Precompute the backend-native constants of one weighted sum.

        The returned :class:`EncodedTaps` can be replayed against any
        tap handles via :meth:`weighted_sum_encoded`, skipping the
        per-call quantization (and, on RNS, the residue reduction) that
        :meth:`weighted_sum` performs.
        """
        ps = float(plain_scale or self.scale)
        weights = np.asarray(weights, dtype=np.float64)
        consts = [int(round(float(w) * ps)) for w in weights]
        keep = [t for t, c in enumerate(consts) if c != 0] or [0]
        return EncodedTaps(plain_scale=ps, weights=weights, consts=consts, keep=keep)

    def weighted_sum_encoded(self, handles: Sequence[Any], enc: EncodedTaps) -> Any:
        """Replay a precompiled weighted sum over fresh tap handles.

        Bit-identical to ``weighted_sum(handles, enc.weights,
        enc.plain_scale)`` — backends override this to reuse the
        precomputed constants instead of re-deriving them.
        """
        return self.weighted_sum(handles, enc.weights, enc.plain_scale)

    def poly_eval(self, x: Any, coeffs: np.ndarray) -> Any:
        """Evaluate ``sum_k coeffs[k] x^k`` homomorphically.

        Routed through the baby-step/giant-step program of
        :func:`repro.nt.kernels.compile_poly_program`: ``~2*sqrt(d)``
        ciphertext multiplies and at most ``d`` levels for degree *d*
        (exact per-degree accounting in ``docs/KERNELS.md``).  One final
        rescale returns the result to ~Δ.

        Parameters
        ----------
        x:
            Input ciphertext handle.
        coeffs:
            Polynomial coefficients, constant term first (length
            ``2 .. MAX_POLY_DEGREE + 1``).

        Returns
        -------
        Handle for ``p(x)`` rescaled back to ~Δ.
        """
        coeffs = self._check_poly_coeffs(coeffs)
        with obs.span("henn.poly_eval", backend=self.name, degree=len(coeffs) - 1):
            return self.poly_eval_bsgs(x, coeffs)

    @staticmethod
    def _check_poly_coeffs(coeffs: np.ndarray) -> np.ndarray:
        coeffs = np.asarray(coeffs, dtype=np.float64)
        degree = len(coeffs) - 1
        if degree < 1 or degree > MAX_POLY_DEGREE:
            raise ValueError(f"poly_eval supports degrees 1..{MAX_POLY_DEGREE}")
        return coeffs

    def power_basis(self, x: Any, top: int) -> dict[int, Any]:
        """Baby-step powers ``x^1 .. x^top``, one rescale per product.

        ``x^2`` uses :meth:`square`; higher powers multiply by *x*.
        Power ``j`` sits ``j - 1`` levels below *x*.  This is the basis
        a BSGS program shares across all polynomial blocks (and, in the
        batched RNS path, across every feature-map position at once).
        """
        powers = {1: x}
        for j in range(2, top + 1):
            prev = powers[j - 1]
            powers[j] = self.rescale(self.square(prev) if j == 2 else self.mul(prev, x))
        return powers

    def poly_eval_bsgs(
        self, x: Any, coeffs: np.ndarray, program: "PolyProgram | None" = None
    ) -> Any:
        """Baby-step/giant-step evaluation of one polynomial on one handle.

        Interprets a compiled :class:`~repro.nt.kernels.PolyProgram`
        (compiled on the fly when *program* is None): baby powers once,
        plaintext-weighted blocks, Horner fold over the giant step, all
        terms aligned to a common scale by per-term plain-scale
        compensation.  Consumes ``program.depth <= degree`` levels and
        ``program.ct_mults`` ciphertext multiplies.
        """
        coeffs = self._check_poly_coeffs(coeffs)
        if program is None:
            program = compile_poly_program(len(coeffs) - 1)
        reg = get_registry()
        reg.counter("poly.bsgs.evals").inc()
        reg.counter("poly.bsgs.ct_mults").inc(program.ct_mults)
        run = _run_poly_program_lazy if self._use_lazy() else _run_poly_program
        return run(_SinglePolyOps(self), program, x, coeffs[None, :])

    def poly_eval_many(
        self,
        handles: Sequence[Any],
        rows: np.ndarray,
        program: "PolyProgram | None" = None,
    ) -> list[Any]:
        """Evaluate one polynomial per handle (``rows[i]`` on ``handles[i]``).

        The generic implementation loops :meth:`poly_eval_bsgs`; the RNS
        backend overrides it to evaluate all positions through shared
        batched kernels.  ``rows`` may be a single row (broadcast to all
        handles) or one row per handle.
        """
        handles = list(handles)
        rows = self._check_poly_rows(rows, len(handles))
        degree = rows.shape[1] - 1
        if program is None:
            program = compile_poly_program(degree)
        with obs.span(
            "henn.poly_eval_many", backend=self.name, positions=len(handles), degree=degree
        ):
            return [self.poly_eval_bsgs(h, rows[i], program) for i, h in enumerate(handles)]

    def rescale_many(self, handles: Sequence[Any]) -> list[Any]:
        """Rescale each handle (overridden with a packed batch on RNS)."""
        return [self.rescale(h) for h in handles]

    def add_plain_each(self, handles: Sequence[Any], values: np.ndarray) -> list[Any]:
        """``handles[i] + values[i]`` per handle (batched on RNS)."""
        return [self.add_plain(h, float(v)) for h, v in zip(handles, values)]

    @staticmethod
    def _check_poly_rows(rows: np.ndarray, count: int) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[0] == 1 and count > 1:
            rows = np.broadcast_to(rows, (count, rows.shape[1]))
        if rows.shape[0] != count:
            raise ValueError(f"{rows.shape[0]} coefficient rows for {count} handles")
        degree = rows.shape[1] - 1
        if degree < 1 or degree > MAX_POLY_DEGREE:
            raise ValueError(f"poly_eval supports degrees 1..{MAX_POLY_DEGREE}")
        return rows


# --------------------------------------------------------------------------- mock


@dataclass
class _MockHandle:
    values: np.ndarray
    scale: float
    level: int


@dataclass
class _MockExt:
    """Mock extended (unrelinearised) handle.

    Relinearisation is the identity on tracked values, so the mock lazy
    path is bit-identical to the eager one — the ext container only
    mirrors the degree/deferred bookkeeping (and the relin counters) of
    the real schemes.
    """

    values: np.ndarray
    scale: float
    level: int
    degree: int = 2
    deferred: bool = False


class MockBackend(HeBackend):
    """Plaintext simulation with CKKS bookkeeping.

    Tracks scale and level exactly like the RNS scheme (including the
    slightly-off-Δ rescale primes when ``rescale_primes`` is given) and
    quantises plaintext multipliers to the encoding grid, so results
    match real-HE evaluation to within the scheme's approximation noise.
    """

    name = "mock"

    def __init__(
        self,
        batch: int = 64,
        scale_bits: int = 26,
        levels: int = 16,
        rescale_primes: Sequence[int] | None = None,
        quantize: bool = True,
        fault_injector: "Any | None" = None,
    ):
        self._scale = float(1 << scale_bits)
        self._batch = batch
        self.levels = levels
        self.quantize = quantize
        # Per-level divisors used by rescale (default: exactly Δ).
        self._primes = list(rescale_primes) if rescale_primes else None
        #: Resilience-harness hook; perturbs tracked scales when armed.
        self.fault_injector = fault_injector

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def max_batch(self) -> int:
        return self._batch

    def _q(self, v: np.ndarray | float, s: float) -> np.ndarray | float:
        if not self.quantize:
            return v
        return np.round(np.asarray(v, dtype=np.float64) * s) / s

    def encrypt(self, values: np.ndarray) -> _MockHandle:
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] > self._batch:
            raise ValueError(f"batch {values.shape[0]} exceeds backend capacity {self._batch}")
        scale = self._scale
        if self.fault_injector is not None:
            scale = self.fault_injector.next_scale(scale)
        return _MockHandle(np.array(self._q(values, self._scale)), scale, self.levels)

    def decrypt(self, handle: _MockHandle, count: int | None = None) -> np.ndarray:
        v = handle.values
        return v[:count] if count is not None else v

    def _align(self, a: _MockHandle, b: _MockHandle) -> tuple[_MockHandle, _MockHandle]:
        lvl = min(a.level, b.level)
        return (
            _MockHandle(a.values, a.scale, lvl),
            _MockHandle(b.values, b.scale, lvl),
        )

    def add(self, a: _MockHandle, b: _MockHandle) -> _MockHandle:
        a, b = self._align(a, b)
        if not np.isclose(a.scale, b.scale, rtol=1e-3):
            raise ValueError(f"scale mismatch in add: {a.scale} vs {b.scale}")
        return _MockHandle(a.values + b.values, a.scale, a.level)

    def add_plain(self, a: _MockHandle, value: float) -> _MockHandle:
        return _MockHandle(a.values + self._q(float(value), a.scale), a.scale, a.level)

    def mul_plain_scalar(self, a: _MockHandle, scalar: float, plain_scale: float | None = None) -> _MockHandle:
        ps = float(plain_scale or self._scale)
        w = round(float(scalar) * ps) / ps  # same quantisation as encode
        return _MockHandle(a.values * w, a.scale * ps, a.level)

    def mul(self, a: _MockHandle, b: _MockHandle) -> _MockHandle:
        a, b = self._align(a, b)
        return _MockHandle(a.values * b.values, a.scale * b.scale, a.level)

    def square(self, a: _MockHandle) -> _MockHandle:
        return _MockHandle(a.values * a.values, a.scale * a.scale, a.level)

    def rescale(self, a: _MockHandle) -> _MockHandle:
        if a.level <= 0:
            raise ValueError("mock level budget exhausted (depth overflow)")
        divisor = float(self._primes[a.level - 1]) if self._primes else self._scale
        scale = a.scale / divisor
        if self.fault_injector is not None:
            scale = self.fault_injector.next_scale(scale)
        return _MockHandle(a.values, scale, a.level - 1)

    def scale_of(self, a: _MockHandle) -> float:
        return a.scale

    def level_of(self, a: _MockHandle) -> int:
        return a.level

    def mul_plain_vector(self, a: _MockHandle, values: np.ndarray) -> _MockHandle:
        v = np.asarray(self._q(values[: a.values.shape[0]], self._scale))
        return _MockHandle(a.values * v, a.scale * self._scale, a.level)

    def rotate(self, a: _MockHandle, r: int) -> _MockHandle:
        return _MockHandle(np.roll(a.values, -r), a.scale, a.level)

    # -- raw / extended ops (lazy relinearisation) -------------------------------

    supports_lazy_relin = True

    def square_raw(self, a: _MockHandle) -> _MockExt:
        return _MockExt(a.values * a.values, a.scale * a.scale, a.level)

    def mul_raw(self, a: _MockHandle, b: "_MockHandle | _MockExt") -> _MockExt:
        degree = 3 if isinstance(b, _MockExt) else 2
        deferred = getattr(b, "deferred", False)
        return _MockExt(
            a.values * b.values, a.scale * b.scale, min(a.level, b.level), degree, deferred
        )

    def rescale_ext(self, e: _MockExt, defer_high: bool = False) -> _MockExt:
        if e.level <= 0:
            raise ValueError("mock level budget exhausted (depth overflow)")
        divisor = float(self._primes[e.level - 1]) if self._primes else self._scale
        scale = e.scale / divisor
        if self.fault_injector is not None:
            scale = self.fault_injector.next_scale(scale)
        return _MockExt(e.values, scale, e.level - 1, e.degree, True)

    def relinearize_ext(self, e: _MockExt) -> _MockHandle:
        reg = get_registry()
        reg.counter("relin.count").inc()
        if e.deferred:
            reg.counter("relin.deferred").inc()
        return _MockHandle(e.values, e.scale, e.level)

    def add_ext(self, a: "_MockHandle | _MockExt", b: "_MockHandle | _MockExt") -> _MockExt:
        if not np.isclose(a.scale, b.scale, rtol=1e-3):
            raise ValueError(f"scale mismatch in add_ext: {a.scale} vs {b.scale}")
        return _MockExt(
            a.values + b.values,
            a.scale,
            min(a.level, b.level),
            max(getattr(a, "degree", 1), getattr(b, "degree", 1)),
            getattr(a, "deferred", False) or getattr(b, "deferred", False),
        )

    def mul_plain_scalar_ext(
        self, e: _MockExt, scalar: float, plain_scale: float | None = None
    ) -> _MockExt:
        ps = float(plain_scale or self._scale)
        w = round(float(scalar) * ps) / ps  # same quantisation as encode
        return _MockExt(e.values * w, e.scale * ps, e.level, e.degree, e.deferred)

    def add_plain_ext(self, e: _MockExt, value: float) -> _MockExt:
        return _MockExt(
            e.values + self._q(float(value), e.scale), e.scale, e.level, e.degree, e.deferred
        )

    # -- slot packing ------------------------------------------------------------

    native_slot_concat = True

    def concat_slots(self, handles: Sequence[_MockHandle], counts: Sequence[int]) -> _MockHandle:
        """Exact SIMD packing: slot vectors concatenate bit-identically.

        Every mock operation is slotwise over ``values``, so evaluating
        the packed handle restricted to one request's slot range equals
        evaluating that request alone — the bit-identity the batching
        gateway's tests assert.  Requests must agree on scale and level
        exactly (fresh encryptions do; a drifted ciphertext is the
        caller's admission-validation problem, reported here as
        :class:`ValueError`).  The tail is zero-padded to the
        :class:`~repro.henn.packing.BatchLayout` alignment width, so the
        physical slot cost matches the pad-waste the layout accounts.
        """
        if len(handles) != len(counts) or not handles:
            raise ValueError("bad concat_slots arguments")
        from repro.henn.packing import BatchLayout  # deferred: packing imports us

        head = handles[0]
        for h, c in zip(handles, counts):
            if h.values.shape[0] != c:
                raise ValueError(f"handle holds {h.values.shape[0]} slots, declared {c}")
            if h.level != head.level or h.scale != head.scale:
                raise ValueError("concat_slots requires identical scales and levels")
        layout = BatchLayout(tuple(int(c) for c in counts), self._batch)
        return _MockHandle(
            layout.pad_values(np.concatenate([h.values for h in handles])),
            head.scale,
            head.level,
        )

    def slice_slots(self, a: _MockHandle, start: int, count: int) -> _MockHandle:
        if start < 0 or count < 1 or start + count > a.values.shape[0]:
            raise ValueError(f"slot range [{start}, {start + count}) out of bounds")
        return _MockHandle(a.values[start : start + count].copy(), a.scale, a.level)


# --------------------------------------------------------------------------- multiprecision CKKS


class CkksBackend(HeBackend):
    """The non-RNS baseline (paper "CNN-HE"): multiprecision coefficients."""

    name = "ckks"

    def __init__(self, params: CkksParams, seed: int | np.random.Generator | None = 0):
        self.ctx = CkksContext(params)
        rng = derive_rng(seed)
        self.keys = self.ctx.keygen(rng)
        self._rng = rng

    @property
    def scale(self) -> float:
        return self.ctx.params.scale

    @property
    def max_batch(self) -> int:
        return self.ctx.slots

    def encrypt(self, values: np.ndarray):
        return self.ctx.encrypt(self.keys.pk, np.asarray(values, dtype=np.float64), self._rng)

    def decrypt(self, handle, count: int | None = None) -> np.ndarray:
        return self.ctx.decrypt_real(self.keys.sk, handle, count)

    def add(self, a, b):
        return self.ctx.add(a, b)

    def add_plain(self, a, value: float):
        return self.ctx.add_plain(a, float(value))

    def mul_plain_scalar(self, a, scalar: float, plain_scale: float | None = None):
        return self.ctx.mul_plain_scalar(a, scalar, plain_scale)

    def mul(self, a, b):
        return self.ctx.mul(a, b, self.keys.relin)

    def square(self, a):
        return self.ctx.square(a, self.keys.relin)

    def rescale(self, a):
        return self.ctx.rescale(a)

    def scale_of(self, a) -> float:
        return a.scale

    def level_of(self, a) -> int:
        return a.level

    # -- raw / extended ops (lazy relinearisation) -------------------------------

    supports_lazy_relin = True

    def square_raw(self, a):
        return self.ctx.square_raw(a)

    def mul_raw(self, a, b):
        return self.ctx.mul_raw(a, b)

    def rescale_ext(self, e, defer_high: bool = False):
        return self.ctx.rescale_ext(e)

    def relinearize_ext(self, e):
        return self.ctx.relinearize(e, self.keys.relin, self.keys.relin3)

    def add_ext(self, a, b):
        return self.ctx.add_ext(a, b)

    def mul_plain_scalar_ext(self, e, scalar: float, plain_scale: float | None = None):
        return self.ctx.mul_plain_scalar_ext(e, scalar, plain_scale)

    def add_plain_ext(self, e, value: float):
        return self.ctx.add_plain_ext(e, float(value))

    def mul_plain_vector(self, a, values: np.ndarray):
        return self.ctx.mul_plain(a, np.asarray(values, dtype=np.float64))

    def rotate(self, a, r: int):
        if self.ctx.galois_element(r) not in self.keys.galois:
            self.ctx.add_galois_key(self.keys, r, self._rng)
        return self.ctx.rotate(a, r, self.keys.galois)

    def weighted_sum(self, handles, weights, plain_scale: float | None = None):
        """Accumulate big-int components lazily, reducing mod q once.

        See :meth:`HeBackend.weighted_sum` for the argument contract.
        """
        if len(handles) != len(weights) or not len(handles):
            raise ValueError("bad weighted_sum arguments")
        ps = float(plain_scale or self.scale)
        consts = [int(round(float(w) * ps)) for w in weights]
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self._weighted_sum_consts(handles, consts, ps)

    def weighted_sum_encoded(self, handles, enc: EncodedTaps):
        """Replay precompiled integer weights (no per-call quantization)."""
        if len(handles) != len(enc.consts):
            raise ValueError("bad weighted_sum arguments")
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self._weighted_sum_consts(handles, enc.consts, enc.plain_scale)

    def _weighted_sum_consts(self, handles, consts: list[int], ps: float):
        level = min(h.level for h in handles)
        ring = self.ctx.ring(level)
        acc0 = np.zeros(self.ctx.n, dtype=object)
        acc1 = np.zeros(self.ctx.n, dtype=object)
        for h, c in zip(handles, consts):
            if c == 0:
                continue
            h = self.ctx.mod_switch_to(h, level)
            acc0 = acc0 + h.c0 * c
            acc1 = acc1 + h.c1 * c
        from repro.ckks.ciphertext import Ciphertext

        return Ciphertext(
            np.mod(acc0, ring.q),
            np.mod(acc1, ring.q),
            level,
            handles[0].scale * ps,
            self.ctx.n,
        )


# --------------------------------------------------------------------------- full-RNS CKKS


class CkksRnsBackend(HeBackend):
    """The paper's CNN-HE-RNS backend: residue channels, parallel dispatch."""

    name = "ckks-rns"

    def __init__(
        self,
        params: CkksRnsParams,
        seed: int | np.random.Generator | None = 0,
        executor=None,
        fault_injector: "Any | None" = None,
    ):
        self.ctx = CkksRnsContext(params, executor=executor)
        rng = derive_rng(seed)
        self.keys = self.ctx.keygen(rng)
        self._rng = rng
        #: Resilience-harness hook; corrupts limbs / scales when armed.
        self.fault_injector = fault_injector

    def close(self) -> None:
        """Release the context-owned executor, if any (idempotent)."""
        self.ctx.close()

    def __enter__(self) -> "CkksRnsBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def scale(self) -> float:
        return self.ctx.params.scale

    @property
    def max_batch(self) -> int:
        return self.ctx.slots

    def encrypt(self, values: np.ndarray):
        ct = self.ctx.encrypt(self.keys.pk, np.asarray(values, dtype=np.float64), self._rng)
        if self.fault_injector is not None:
            ct = self.fault_injector.apply_ciphertext_faults(ct)
            ct.scale = self.fault_injector.next_scale(ct.scale)
        return ct

    def encrypt_many(self, rows: Sequence[np.ndarray]) -> list[RnsCiphertext]:
        """Batched encryption: one fused NTT sweep for all rows."""
        cts = self.ctx.encrypt_many(self.keys.pk, list(rows), self._rng)
        if self.fault_injector is not None:
            out = []
            for ct in cts:
                ct = self.fault_injector.apply_ciphertext_faults(ct)
                ct.scale = self.fault_injector.next_scale(ct.scale)
                out.append(ct)
            return out
        return cts

    def decrypt(self, handle, count: int | None = None) -> np.ndarray:
        return self.ctx.decrypt_real(self.keys.sk, handle, count)

    def add(self, a, b):
        return self.ctx.add(a, b)

    def add_plain(self, a, value: float):
        return self.ctx.add_plain(a, float(value))

    def mul_plain_scalar(self, a, scalar: float, plain_scale: float | None = None):
        return self.ctx.mul_plain_scalar(a, scalar, plain_scale)

    def mul(self, a, b):
        return self.ctx.mul(a, b, self.keys.relin)

    def square(self, a):
        return self.ctx.square(a, self.keys.relin)

    def rescale(self, a):
        out = self.ctx.rescale(a)
        if self.fault_injector is not None:
            out.scale = self.fault_injector.next_scale(out.scale)
        return out

    def scale_of(self, a) -> float:
        return a.scale

    def level_of(self, a) -> int:
        return a.level

    # -- raw / extended ops (lazy relinearisation) -------------------------------

    supports_lazy_relin = True

    def square_raw(self, a):
        return self.ctx.square_raw(a)

    def mul_raw(self, a, b):
        return self.ctx.mul_raw(a, b)

    def rescale_ext(self, e, defer_high: bool = False):
        out = self.ctx.rescale_ext(e, defer_high=defer_high)
        if self.fault_injector is not None:
            out.scale = self.fault_injector.next_scale(out.scale)
        return out

    def relinearize_ext(self, e):
        return self.ctx.relinearize(e, self.keys.relin, self.keys.relin3)

    def add_ext(self, a, b):
        return self.ctx.add_ext(a, b)

    def mul_plain_scalar_ext(self, e, scalar: float, plain_scale: float | None = None):
        return self.ctx.mul_plain_scalar_ext(e, scalar, plain_scale)

    def add_plain_ext(self, e, value: float):
        return self.ctx.add_plain_ext(e, float(value))

    def mul_plain_vector(self, a, values: np.ndarray):
        return self.ctx.mul_plain(a, np.asarray(values, dtype=np.float64))

    def rotate(self, a, r: int):
        if self.ctx.galois_element(r) not in self.keys.galois:
            self.ctx.add_galois_key(self.keys, r, self._rng)
        return self.ctx.rotate(a, r, self.keys.galois)

    def weighted_sum(self, handles, weights, plain_scale: float | None = None):
        """Batched channelwise kernel: all taps of a neuron in one sweep.

        For each residue channel *i* the accumulation
        ``sum_t (c_t * [w_t Δ]_{q_i}) mod q_i`` is two NumPy calls over a
        ``(taps, n)`` block; channels fan out through the executor.
        Exactness: per-tap products are reduced, partial sums of up to
        ``2^13`` terms stay below ``2^63``.

        See :meth:`HeBackend.weighted_sum` for the argument contract.
        """
        if len(handles) != len(weights) or not len(handles):
            raise ValueError("bad weighted_sum arguments")
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self.ctx.weighted_sum(list(handles), weights, plain_scale)

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        """Quantize once and pre-reduce residues across the full chain."""
        enc = super().encode_taps(weights, plain_scale)
        enc.residues = np.array(
            [[c % m for m in self.ctx.moduli] for c in enc.consts], dtype=np.int64
        )
        return enc

    def weighted_sum_encoded(self, handles, enc: EncodedTaps) -> RnsCiphertext:
        """Replay precompiled weights: residue table sliced, never rebuilt."""
        if len(handles) != len(enc.consts) or not len(handles):
            raise ValueError("bad weighted_sum arguments")
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self.ctx.weighted_sum(
                list(handles),
                None,
                enc.plain_scale,
                consts=enc.consts,
                residues=enc.residues,
            )

    def poly_eval_many(
        self,
        handles: Sequence[Any],
        rows: np.ndarray,
        program: "PolyProgram | None" = None,
    ) -> list[RnsCiphertext]:
        """Batched BSGS: pack positions into one ciphertext per level group.

        Handles sharing (level, scale) stack into a single
        :class:`RnsCiphertext` with ``(k, B, n)`` components, so the
        whole position batch runs through *one* BSGS program — one NTT /
        keyswitch sweep per ciphertext multiply instead of *B*.
        Per-position SLAF coefficients apply through
        :meth:`CkksRnsContext.mul_plain_scalar_many` /
        :meth:`~CkksRnsContext.add_plain_many`.  Bit-identical per
        position to :meth:`poly_eval_bsgs` on the lone handle, because
        every context primitive is slot-parallel over the packed axis.
        """
        handles = list(handles)
        rows = self._check_poly_rows(rows, len(handles))
        degree = rows.shape[1] - 1
        if program is None:
            program = compile_poly_program(degree)
        groups = _rns_groups(handles)
        reg = get_registry()
        reg.counter("poly.bsgs.evals").inc(len(handles))
        reg.counter("poly.bsgs.batches").inc(len(groups))
        reg.counter("poly.bsgs.ct_mults").inc(program.ct_mults * len(groups))
        out: list[RnsCiphertext | None] = [None] * len(handles)
        with obs.span(
            "henn.poly_eval_many", backend=self.name, positions=len(handles), degree=degree
        ):
            run = _run_poly_program_lazy if self._use_lazy() else _run_poly_program
            for idxs in groups:
                packed = _pack_rns(handles, idxs)
                res = run(_RnsBatchOps(self), program, packed, rows[idxs])
                _unpack_rns(res, idxs, out)
        return out  # type: ignore[return-value]

    def rescale_many(self, handles: Sequence[RnsCiphertext]) -> list[RnsCiphertext]:
        """Batched rescale: one transform pair per (level, scale) group.

        Bit-identical per handle to :meth:`rescale` — the context's
        rescale is slot-parallel over the packed position axis.
        """
        handles = list(handles)
        out: list[RnsCiphertext | None] = [None] * len(handles)
        for idxs in _rns_groups(handles):
            res = self.rescale(_pack_rns(handles, idxs))
            _unpack_rns(res, idxs, out)
        return out  # type: ignore[return-value]

    def add_plain_each(self, handles: Sequence[RnsCiphertext], values: np.ndarray) -> list[RnsCiphertext]:
        """Batched per-handle plaintext adds (``values[i]`` onto ``handles[i]``)."""
        handles = list(handles)
        values = np.asarray(values, dtype=np.float64)
        out: list[RnsCiphertext | None] = [None] * len(handles)
        for idxs in _rns_groups(handles):
            res = self.ctx.add_plain_many(_pack_rns(handles, idxs), values[idxs])
            _unpack_rns(res, idxs, out)
        return out  # type: ignore[return-value]


def _rns_groups(handles: Sequence[RnsCiphertext]) -> "list[np.ndarray]":
    """Indices of *handles* grouped by (level, scale) for exact packing."""
    groups: dict[tuple[int, float], list[int]] = {}
    for i, h in enumerate(handles):
        groups.setdefault((h.level, float(h.scale)), []).append(i)
    return [np.asarray(idxs, dtype=np.int64) for idxs in groups.values()]


def _pack_rns(handles: Sequence[RnsCiphertext], idxs: np.ndarray) -> RnsCiphertext:
    """Stack same-(level, scale) handles into one (k, B, n) ciphertext."""
    first = handles[int(idxs[0])]
    return RnsCiphertext(
        np.stack([handles[int(i)].c0 for i in idxs], axis=1),
        np.stack([handles[int(i)].c1 for i in idxs], axis=1),
        first.level,
        first.scale,
    )


def _unpack_rns(res: RnsCiphertext, idxs: np.ndarray, out: "list[RnsCiphertext | None]") -> None:
    """Slice a packed result back into per-position ciphertexts."""
    for b, i in enumerate(idxs):
        out[int(i)] = RnsCiphertext(
            np.ascontiguousarray(res.c0[:, b]),
            np.ascontiguousarray(res.c1[:, b]),
            res.level,
            res.scale,
        )


class _RnsBatchOps:
    """Adapter: batched ``(k, B, n)`` RNS ciphertext, per-position constants.

    Every primitive delegates to the backend (hence the context), whose
    elementwise kernels, NTT plans and keyswitch are shape-generic over
    the packed position axis; only the plaintext-constant ops need the
    position-aware ``*_many`` variants.
    """

    __slots__ = ("b",)

    def __init__(self, backend: "CkksRnsBackend"):
        self.b = backend

    @property
    def delta(self) -> float:
        return self.b.scale

    def scale_of(self, h: RnsCiphertext) -> float:
        return h.scale

    def square(self, h: RnsCiphertext) -> RnsCiphertext:
        return self.b.square(h)

    def mul(self, a: RnsCiphertext, b: RnsCiphertext) -> RnsCiphertext:
        return self.b.mul(a, b)

    def rescale(self, h: RnsCiphertext) -> RnsCiphertext:
        return self.b.rescale(h)

    def add(self, a: RnsCiphertext, b: RnsCiphertext) -> RnsCiphertext:
        return self.b.add(a, b)

    def mul_plain_vec(self, h: RnsCiphertext, consts: np.ndarray, ps: float) -> RnsCiphertext:
        return self.b.ctx.mul_plain_scalar_many(h, consts, ps)

    def add_plain_vec(self, h: RnsCiphertext, consts: np.ndarray) -> RnsCiphertext:
        return self.b.ctx.add_plain_many(h, consts)

    # extended (degree >= 2) ops — lazy-relinearisation interpreter only

    def square_raw(self, h: RnsCiphertext):
        return self.b.ctx.square_raw(h)

    def mul_raw(self, a: RnsCiphertext, b: Any):
        return self.b.ctx.mul_raw(a, b)

    def rescale_ext(self, e: Any, defer_high: bool = False):
        return self.b.rescale_ext(e, defer_high=defer_high)

    def relinearize(self, e: Any) -> RnsCiphertext:
        return self.b.relinearize_ext(e)

    def add_ext(self, a: Any, b: Any):
        return self.b.ctx.add_ext(a, b)

    def mul_plain_vec_ext(self, e: Any, consts: np.ndarray, ps: float):
        return self.b.ctx.mul_plain_scalar_many_ext(e, consts, ps)

    def add_plain_vec_ext(self, e: Any, consts: np.ndarray):
        return self.b.ctx.add_plain_many_ext(e, consts)

    def scale_of_ext(self, e: Any) -> float:
        return e.scale
