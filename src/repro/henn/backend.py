"""HE evaluation backends behind one small interface.

A *handle* is one ciphertext (or its mock) holding a vector of scalars:
slot *i* belongs to image *i* of the batch (SIMD packing).  The network
layers in :mod:`repro.henn.layers` are written against this interface
only, so the same compiled model runs under:

* :class:`MockBackend` — plaintext simulation with identical
  scale/level bookkeeping and weight quantisation; used for
  full-test-set accuracy (verified against real HE by the
  backend-agreement tests).
* :class:`CkksBackend` — multiprecision CKKS (the paper's CNN-HE).
* :class:`CkksRnsBackend` — full-RNS CKKS (CNN-HE-RNS), with a
  vectorised ``weighted_sum`` that batches all taps of a neuron into a
  few channelwise NumPy kernels and dispatches residue channels through
  the context executor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.ckks import CkksContext, CkksParams
from repro.ckksrns import CkksRnsContext, CkksRnsParams, RnsCiphertext
from repro.utils.rng import derive_rng

__all__ = ["HeBackend", "MockBackend", "CkksBackend", "CkksRnsBackend", "EncodedTaps"]


@dataclass
class EncodedTaps:
    """Compile-once constants for one weighted sum (a conv/linear neuron).

    Produced by :meth:`HeBackend.encode_taps` and replayed by
    :meth:`HeBackend.weighted_sum_encoded`; what is precomputed depends
    on the backend — quantized integer weights everywhere, plus the
    ``(taps, k_top)`` residue table for CKKS-RNS.  The encoded form is
    bit-identical to encoding the float weights on every call because
    quantization (``round(w * Δp)``) is deterministic.
    """

    plain_scale: float
    weights: np.ndarray  #: original float weights (generic fallback path)
    consts: list[int]  #: quantized integers ``round(w * plain_scale)``
    keep: list[int]  #: indices of taps with nonzero quantized weight
    residues: np.ndarray | None = None  #: (taps, k_top) int64, RNS only


class HeBackend(ABC):
    """Minimal homomorphic-evaluation interface used by the HE layers."""

    name: str = "abstract"

    #: Whether :meth:`concat_slots` packs requests into genuinely shared
    #: ciphertexts (SIMD slot stacking).  True only where packing is
    #: *exact*: the mock backend concatenates plaintext slot vectors
    #: bit-identically, while the real schemes would need rotations
    #: (keyswitch noise breaks bit-identity with the serial run), so
    #: they serve batches through the structural
    #: :class:`repro.serving.packing.MemberwiseBackend` instead.
    native_slot_concat: bool = False

    @property
    @abstractmethod
    def scale(self) -> float:
        """Base plaintext scale Δ."""

    @property
    @abstractmethod
    def max_batch(self) -> int:
        """Number of SIMD slots (images per ciphertext)."""

    @abstractmethod
    def encrypt(self, values: np.ndarray) -> Any:
        """Encrypt a 1-D value vector into one ciphertext handle (SIMD slots)."""

    @abstractmethod
    def decrypt(self, handle: Any, count: int | None = None) -> np.ndarray:
        """Decrypt *handle*, returning the first *count* slots (all if None)."""

    @abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Ciphertext + ciphertext (scales must match)."""

    @abstractmethod
    def add_plain(self, a: Any, value: float) -> Any:
        """Ciphertext + plaintext scalar, broadcast over slots."""

    @abstractmethod
    def mul_plain_scalar(self, a: Any, scalar: float, plain_scale: float | None = None) -> Any:
        """Ciphertext × plaintext scalar encoded at *plain_scale* (default Δ)."""

    @abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Ciphertext × ciphertext with relinearisation; scale multiplies."""

    @abstractmethod
    def square(self, a: Any) -> Any:
        """Ciphertext squaring (cheaper than ``mul(a, a)`` where supported)."""

    @abstractmethod
    def rescale(self, a: Any) -> Any:
        """Drop one modulus level, dividing the scale back toward Δ."""

    @abstractmethod
    def scale_of(self, a: Any) -> float:
        """Current plaintext scale of *a*."""

    @abstractmethod
    def level_of(self, a: Any) -> int:
        """Remaining multiplicative levels of *a*."""

    def mul_plain_vector(self, a: Any, values: "np.ndarray") -> Any:
        """Slotwise multiply by a plaintext vector (single-image packing)."""
        raise NotImplementedError(f"{self.name} backend has no vector plain-multiply")

    def rotate(self, a: Any, r: int) -> Any:
        """Left-rotate slots by *r* (requires rotation keys where real)."""
        raise NotImplementedError(f"{self.name} backend has no rotations")

    # -- slot packing (serving gateway) -----------------------------------------

    def concat_slots(self, handles: Sequence[Any], counts: Sequence[int]) -> Any:
        """Stack independent request ciphertexts along the slot axis.

        Handle *j* contributes slots ``[offset_j, offset_j + counts[j])``
        of the packed result, where ``offset_j = sum(counts[:j])`` — the
        batching gateway's assembly primitive.  Only backends that can
        do this exactly implement it (``native_slot_concat``); the base
        class refuses so callers fall back to structural packing.
        """
        raise NotImplementedError(f"{self.name} backend has no native slot packing")

    def slice_slots(self, a: Any, start: int, count: int) -> Any:
        """Inverse of :meth:`concat_slots`: one request's slot range."""
        raise NotImplementedError(f"{self.name} backend has no native slot packing")

    # -- composite operations (overridable fast paths) -------------------------

    def weighted_sum(
        self, handles: Sequence[Any], weights: np.ndarray, plain_scale: float | None = None
    ) -> Any:
        """``sum_i weights[i] * handles[i]`` at a common plain scale.

        The generic implementation multiplies and adds pairwise; RNS
        overrides it with a batched channelwise kernel (this is where
        convolutions spend their time).

        Parameters
        ----------
        handles:
            Ciphertext handles of the summands.
        weights:
            Matching plaintext weights (same length as *handles*).
        plain_scale:
            Encoding scale of the weights (defaults to Δ).

        Returns
        -------
        A handle for the weighted sum at scale ``scale * plain_scale``.
        """
        if len(handles) != len(weights):
            raise ValueError("handles/weights length mismatch")
        if len(handles) == 0:
            raise ValueError("weighted_sum needs at least one term")
        ps = float(plain_scale or self.scale)
        # Taps whose weight quantizes to zero contribute exactly nothing
        # (their encoded multiplier is the zero plaintext): skip them.
        keep = [t for t in range(len(handles)) if int(round(float(weights[t]) * ps)) != 0]
        if not keep:
            keep = [0]
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            acc = self.mul_plain_scalar(handles[keep[0]], float(weights[keep[0]]), ps)
            for t in keep[1:]:
                acc = self.add(acc, self.mul_plain_scalar(handles[t], float(weights[t]), ps))
            return acc

    # -- compile-once taps (overridable fast paths) -----------------------------

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        """Precompute the backend-native constants of one weighted sum.

        The returned :class:`EncodedTaps` can be replayed against any
        tap handles via :meth:`weighted_sum_encoded`, skipping the
        per-call quantization (and, on RNS, the residue reduction) that
        :meth:`weighted_sum` performs.
        """
        ps = float(plain_scale or self.scale)
        weights = np.asarray(weights, dtype=np.float64)
        consts = [int(round(float(w) * ps)) for w in weights]
        keep = [t for t, c in enumerate(consts) if c != 0] or [0]
        return EncodedTaps(plain_scale=ps, weights=weights, consts=consts, keep=keep)

    def weighted_sum_encoded(self, handles: Sequence[Any], enc: EncodedTaps) -> Any:
        """Replay a precompiled weighted sum over fresh tap handles.

        Bit-identical to ``weighted_sum(handles, enc.weights,
        enc.plain_scale)`` — backends override this to reuse the
        precomputed constants instead of re-deriving them.
        """
        return self.weighted_sum(handles, enc.weights, enc.plain_scale)

    def poly_eval(self, x: Any, coeffs: np.ndarray) -> Any:
        """Evaluate ``sum_k coeffs[k] x^k`` homomorphically (degree <= 3).

        Power-basis evaluation with per-term plain-scale compensation so
        every branch lands on an identical ciphertext scale; one final
        rescale returns to ~Δ.  Consumes ``degree`` levels.

        Parameters
        ----------
        x:
            Input ciphertext handle.
        coeffs:
            Polynomial coefficients, constant term first (length 2..4).

        Returns
        -------
        Handle for ``p(x)`` rescaled back to ~Δ.
        """
        coeffs = np.asarray(coeffs, dtype=np.float64)
        degree = len(coeffs) - 1
        if degree < 1 or degree > 3:
            raise ValueError("poly_eval supports degrees 1..3")
        with obs.span("henn.poly_eval", backend=self.name, degree=degree):
            return self._poly_eval(x, coeffs, degree)

    def _poly_eval(self, x: Any, coeffs: np.ndarray, degree: int) -> Any:
        powers = {1: x}
        if degree >= 2:
            powers[2] = self.rescale(self.square(x))
        if degree >= 3:
            powers[3] = self.rescale(self.mul(powers[2], x))
        # Deepest power has the smallest scale; align every term to
        # target = scale(x^d) * Δ via adjusted plain scales.
        target = self.scale_of(powers[degree]) * self.scale
        acc = None
        for k in range(degree, 0, -1):
            ps = target / self.scale_of(powers[k])
            term = self.mul_plain_scalar(powers[k], float(coeffs[k]), ps)
            acc = term if acc is None else self.add(acc, term)
        acc = self.add_plain(acc, float(coeffs[0]))
        return self.rescale(acc)


# --------------------------------------------------------------------------- mock


@dataclass
class _MockHandle:
    values: np.ndarray
    scale: float
    level: int


class MockBackend(HeBackend):
    """Plaintext simulation with CKKS bookkeeping.

    Tracks scale and level exactly like the RNS scheme (including the
    slightly-off-Δ rescale primes when ``rescale_primes`` is given) and
    quantises plaintext multipliers to the encoding grid, so results
    match real-HE evaluation to within the scheme's approximation noise.
    """

    name = "mock"

    def __init__(
        self,
        batch: int = 64,
        scale_bits: int = 26,
        levels: int = 16,
        rescale_primes: Sequence[int] | None = None,
        quantize: bool = True,
        fault_injector: "Any | None" = None,
    ):
        self._scale = float(1 << scale_bits)
        self._batch = batch
        self.levels = levels
        self.quantize = quantize
        # Per-level divisors used by rescale (default: exactly Δ).
        self._primes = list(rescale_primes) if rescale_primes else None
        #: Resilience-harness hook; perturbs tracked scales when armed.
        self.fault_injector = fault_injector

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def max_batch(self) -> int:
        return self._batch

    def _q(self, v: np.ndarray | float, s: float) -> np.ndarray | float:
        if not self.quantize:
            return v
        return np.round(np.asarray(v, dtype=np.float64) * s) / s

    def encrypt(self, values: np.ndarray) -> _MockHandle:
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] > self._batch:
            raise ValueError(f"batch {values.shape[0]} exceeds backend capacity {self._batch}")
        scale = self._scale
        if self.fault_injector is not None:
            scale = self.fault_injector.next_scale(scale)
        return _MockHandle(np.array(self._q(values, self._scale)), scale, self.levels)

    def decrypt(self, handle: _MockHandle, count: int | None = None) -> np.ndarray:
        v = handle.values
        return v[:count] if count is not None else v

    def _align(self, a: _MockHandle, b: _MockHandle) -> tuple[_MockHandle, _MockHandle]:
        lvl = min(a.level, b.level)
        return (
            _MockHandle(a.values, a.scale, lvl),
            _MockHandle(b.values, b.scale, lvl),
        )

    def add(self, a: _MockHandle, b: _MockHandle) -> _MockHandle:
        a, b = self._align(a, b)
        if not np.isclose(a.scale, b.scale, rtol=1e-3):
            raise ValueError(f"scale mismatch in add: {a.scale} vs {b.scale}")
        return _MockHandle(a.values + b.values, a.scale, a.level)

    def add_plain(self, a: _MockHandle, value: float) -> _MockHandle:
        return _MockHandle(a.values + self._q(float(value), a.scale), a.scale, a.level)

    def mul_plain_scalar(self, a: _MockHandle, scalar: float, plain_scale: float | None = None) -> _MockHandle:
        ps = float(plain_scale or self._scale)
        w = round(float(scalar) * ps) / ps  # same quantisation as encode
        return _MockHandle(a.values * w, a.scale * ps, a.level)

    def mul(self, a: _MockHandle, b: _MockHandle) -> _MockHandle:
        a, b = self._align(a, b)
        return _MockHandle(a.values * b.values, a.scale * b.scale, a.level)

    def square(self, a: _MockHandle) -> _MockHandle:
        return _MockHandle(a.values * a.values, a.scale * a.scale, a.level)

    def rescale(self, a: _MockHandle) -> _MockHandle:
        if a.level <= 0:
            raise ValueError("mock level budget exhausted (depth overflow)")
        divisor = float(self._primes[a.level - 1]) if self._primes else self._scale
        scale = a.scale / divisor
        if self.fault_injector is not None:
            scale = self.fault_injector.next_scale(scale)
        return _MockHandle(a.values, scale, a.level - 1)

    def scale_of(self, a: _MockHandle) -> float:
        return a.scale

    def level_of(self, a: _MockHandle) -> int:
        return a.level

    def mul_plain_vector(self, a: _MockHandle, values: np.ndarray) -> _MockHandle:
        v = np.asarray(self._q(values[: a.values.shape[0]], self._scale))
        return _MockHandle(a.values * v, a.scale * self._scale, a.level)

    def rotate(self, a: _MockHandle, r: int) -> _MockHandle:
        return _MockHandle(np.roll(a.values, -r), a.scale, a.level)

    # -- slot packing ------------------------------------------------------------

    native_slot_concat = True

    def concat_slots(self, handles: Sequence[_MockHandle], counts: Sequence[int]) -> _MockHandle:
        """Exact SIMD packing: slot vectors concatenate bit-identically.

        Every mock operation is slotwise over ``values``, so evaluating
        the packed handle restricted to one request's slot range equals
        evaluating that request alone — the bit-identity the batching
        gateway's tests assert.  Requests must agree on scale and level
        exactly (fresh encryptions do; a drifted ciphertext is the
        caller's admission-validation problem, reported here as
        :class:`ValueError`).
        """
        if len(handles) != len(counts) or not handles:
            raise ValueError("bad concat_slots arguments")
        head = handles[0]
        for h, c in zip(handles, counts):
            if h.values.shape[0] != c:
                raise ValueError(f"handle holds {h.values.shape[0]} slots, declared {c}")
            if h.level != head.level or h.scale != head.scale:
                raise ValueError("concat_slots requires identical scales and levels")
        total = int(sum(counts))
        if total > self._batch:
            raise ValueError(f"packed batch {total} exceeds backend capacity {self._batch}")
        return _MockHandle(
            np.concatenate([h.values for h in handles]), head.scale, head.level
        )

    def slice_slots(self, a: _MockHandle, start: int, count: int) -> _MockHandle:
        if start < 0 or count < 1 or start + count > a.values.shape[0]:
            raise ValueError(f"slot range [{start}, {start + count}) out of bounds")
        return _MockHandle(a.values[start : start + count].copy(), a.scale, a.level)


# --------------------------------------------------------------------------- multiprecision CKKS


class CkksBackend(HeBackend):
    """The non-RNS baseline (paper "CNN-HE"): multiprecision coefficients."""

    name = "ckks"

    def __init__(self, params: CkksParams, seed: int | np.random.Generator | None = 0):
        self.ctx = CkksContext(params)
        rng = derive_rng(seed)
        self.keys = self.ctx.keygen(rng)
        self._rng = rng

    @property
    def scale(self) -> float:
        return self.ctx.params.scale

    @property
    def max_batch(self) -> int:
        return self.ctx.slots

    def encrypt(self, values: np.ndarray):
        return self.ctx.encrypt(self.keys.pk, np.asarray(values, dtype=np.float64), self._rng)

    def decrypt(self, handle, count: int | None = None) -> np.ndarray:
        return self.ctx.decrypt_real(self.keys.sk, handle, count)

    def add(self, a, b):
        return self.ctx.add(a, b)

    def add_plain(self, a, value: float):
        return self.ctx.add_plain(a, float(value))

    def mul_plain_scalar(self, a, scalar: float, plain_scale: float | None = None):
        return self.ctx.mul_plain_scalar(a, scalar, plain_scale)

    def mul(self, a, b):
        return self.ctx.mul(a, b, self.keys.relin)

    def square(self, a):
        return self.ctx.square(a, self.keys.relin)

    def rescale(self, a):
        return self.ctx.rescale(a)

    def scale_of(self, a) -> float:
        return a.scale

    def level_of(self, a) -> int:
        return a.level

    def mul_plain_vector(self, a, values: np.ndarray):
        return self.ctx.mul_plain(a, np.asarray(values, dtype=np.float64))

    def rotate(self, a, r: int):
        if self.ctx.galois_element(r) not in self.keys.galois:
            self.ctx.add_galois_key(self.keys, r, self._rng)
        return self.ctx.rotate(a, r, self.keys.galois)

    def weighted_sum(self, handles, weights, plain_scale: float | None = None):
        """Accumulate big-int components lazily, reducing mod q once.

        See :meth:`HeBackend.weighted_sum` for the argument contract.
        """
        if len(handles) != len(weights) or not len(handles):
            raise ValueError("bad weighted_sum arguments")
        ps = float(plain_scale or self.scale)
        consts = [int(round(float(w) * ps)) for w in weights]
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self._weighted_sum_consts(handles, consts, ps)

    def weighted_sum_encoded(self, handles, enc: EncodedTaps):
        """Replay precompiled integer weights (no per-call quantization)."""
        if len(handles) != len(enc.consts):
            raise ValueError("bad weighted_sum arguments")
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self._weighted_sum_consts(handles, enc.consts, enc.plain_scale)

    def _weighted_sum_consts(self, handles, consts: list[int], ps: float):
        level = min(h.level for h in handles)
        ring = self.ctx.ring(level)
        acc0 = np.zeros(self.ctx.n, dtype=object)
        acc1 = np.zeros(self.ctx.n, dtype=object)
        for h, c in zip(handles, consts):
            if c == 0:
                continue
            h = self.ctx.mod_switch_to(h, level)
            acc0 = acc0 + h.c0 * c
            acc1 = acc1 + h.c1 * c
        from repro.ckks.ciphertext import Ciphertext

        return Ciphertext(
            np.mod(acc0, ring.q),
            np.mod(acc1, ring.q),
            level,
            handles[0].scale * ps,
            self.ctx.n,
        )


# --------------------------------------------------------------------------- full-RNS CKKS


class CkksRnsBackend(HeBackend):
    """The paper's CNN-HE-RNS backend: residue channels, parallel dispatch."""

    name = "ckks-rns"

    def __init__(
        self,
        params: CkksRnsParams,
        seed: int | np.random.Generator | None = 0,
        executor=None,
        fault_injector: "Any | None" = None,
    ):
        self.ctx = CkksRnsContext(params, executor=executor)
        rng = derive_rng(seed)
        self.keys = self.ctx.keygen(rng)
        self._rng = rng
        #: Resilience-harness hook; corrupts limbs / scales when armed.
        self.fault_injector = fault_injector

    def close(self) -> None:
        """Release the context-owned executor, if any (idempotent)."""
        self.ctx.close()

    def __enter__(self) -> "CkksRnsBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def scale(self) -> float:
        return self.ctx.params.scale

    @property
    def max_batch(self) -> int:
        return self.ctx.slots

    def encrypt(self, values: np.ndarray):
        ct = self.ctx.encrypt(self.keys.pk, np.asarray(values, dtype=np.float64), self._rng)
        if self.fault_injector is not None:
            ct = self.fault_injector.apply_ciphertext_faults(ct)
            ct.scale = self.fault_injector.next_scale(ct.scale)
        return ct

    def decrypt(self, handle, count: int | None = None) -> np.ndarray:
        return self.ctx.decrypt_real(self.keys.sk, handle, count)

    def add(self, a, b):
        return self.ctx.add(a, b)

    def add_plain(self, a, value: float):
        return self.ctx.add_plain(a, float(value))

    def mul_plain_scalar(self, a, scalar: float, plain_scale: float | None = None):
        return self.ctx.mul_plain_scalar(a, scalar, plain_scale)

    def mul(self, a, b):
        return self.ctx.mul(a, b, self.keys.relin)

    def square(self, a):
        return self.ctx.square(a, self.keys.relin)

    def rescale(self, a):
        out = self.ctx.rescale(a)
        if self.fault_injector is not None:
            out.scale = self.fault_injector.next_scale(out.scale)
        return out

    def scale_of(self, a) -> float:
        return a.scale

    def level_of(self, a) -> int:
        return a.level

    def mul_plain_vector(self, a, values: np.ndarray):
        return self.ctx.mul_plain(a, np.asarray(values, dtype=np.float64))

    def rotate(self, a, r: int):
        if self.ctx.galois_element(r) not in self.keys.galois:
            self.ctx.add_galois_key(self.keys, r, self._rng)
        return self.ctx.rotate(a, r, self.keys.galois)

    def weighted_sum(self, handles, weights, plain_scale: float | None = None):
        """Batched channelwise kernel: all taps of a neuron in one sweep.

        For each residue channel *i* the accumulation
        ``sum_t (c_t * [w_t Δ]_{q_i}) mod q_i`` is two NumPy calls over a
        ``(taps, n)`` block; channels fan out through the executor.
        Exactness: per-tap products are reduced, partial sums of up to
        ``2^13`` terms stay below ``2^63``.

        See :meth:`HeBackend.weighted_sum` for the argument contract.
        """
        if len(handles) != len(weights) or not len(handles):
            raise ValueError("bad weighted_sum arguments")
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self.ctx.weighted_sum(list(handles), weights, plain_scale)

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        """Quantize once and pre-reduce residues across the full chain."""
        enc = super().encode_taps(weights, plain_scale)
        enc.residues = np.array(
            [[c % m for m in self.ctx.moduli] for c in enc.consts], dtype=np.int64
        )
        return enc

    def weighted_sum_encoded(self, handles, enc: EncodedTaps) -> RnsCiphertext:
        """Replay precompiled weights: residue table sliced, never rebuilt."""
        if len(handles) != len(enc.consts) or not len(handles):
            raise ValueError("bad weighted_sum arguments")
        with obs.span("henn.weighted_sum", backend=self.name, taps=len(handles)):
            return self.ctx.weighted_sum(
                list(handles),
                None,
                enc.plain_scale,
                consts=enc.consts,
                residues=enc.residues,
            )
