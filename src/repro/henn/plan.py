"""Compile-once / run-many inference plans.

An :class:`InferencePlan` walks a compiled HE graph **once** per
(backend, level schedule, scale) and precomputes everything about the
evaluation that does not depend on the ciphertexts:

* conv/pool/linear **tap programs** — which handles each output position
  gathers and with which weights (:func:`repro.henn.layers.conv_tap_program`);
* the backend-native **encoded taps** for every weighted sum
  (:meth:`repro.henn.backend.HeBackend.encode_taps`): quantized integer
  weights everywhere, plus the ``(taps, k_top)`` residue tables on
  CKKS-RNS — deduplicated through a keyed :class:`PlaintextCache`, so
  the thousands of interior conv positions that share one kernel encode
  it exactly once;
* a :class:`~repro.utils.cache.PlaintextCache` installed on the
  backend's context, which memoizes the scalar plaintexts (biases,
  polynomial constant terms) the first image encodes — every later
  image performs **zero** plaintext encodes, which the CI smoke job
  asserts by counting ``plan.encode.fresh`` / ``plan.cache.miss``, not
  by timing.

Planned evaluation is bit-identical to the unplanned path: tap programs
replicate the inline loops' iteration order exactly, weight quantization
is deterministic, and cached plaintexts are the very objects a fresh
encode would produce (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.henn.backend import EncodedTaps, HeBackend
from repro.henn.layers import (
    HeAvgPool,
    HeConv2d,
    HeFlatten,
    HeLayer,
    HeLinear,
    HePoly,
    conv_tap_program,
)
from repro.nn.layers.conv import conv_output_shape
from repro.nt.kernels import compile_poly_program
from repro.obs.metrics import get_registry
from repro.utils.cache import PlaintextCache

__all__ = ["InferencePlan", "PlannedPoly", "compile_plan", "plan_cache_key"]


def _backend_sig(backend: HeBackend) -> tuple:
    """Content-based identity of a backend's encoding parameters.

    Two backends with the same signature produce identical encodings, so
    cache entries may be shared between them; anything that changes the
    encoding (ring degree, modulus chain, scale) changes the signature.
    Packing wrappers (``SlotPackedBackend`` / ``MemberwiseBackend``)
    resolve to their inner backend's signature: a wrapper encodes
    nothing itself, so packed and serial engines share cache entries —
    the warm packed path performs zero fresh encodes.
    """
    inner = getattr(backend, "inner", None)
    if isinstance(inner, HeBackend):
        return _backend_sig(inner)
    ctx = getattr(backend, "ctx", None)
    sig: tuple = (backend.name, float(backend.scale))
    if ctx is not None:
        sig += (int(getattr(ctx, "n", 0)),)
        moduli = getattr(ctx, "moduli", None)
        if moduli is not None:
            sig += (tuple(int(m) for m in moduli),)
    else:
        sig += (int(getattr(backend, "levels", 0)),)
    return sig


def plan_cache_key(sig: tuple, ps: float, consts: tuple[int, ...]) -> tuple:
    """Cache key of one encoded weighted sum (see ``docs/PERFORMANCE.md``)."""
    return ("taps", sig, float(ps), consts)


class _TapEncoder:
    """Encodes tap weights through the plan cache with content keys."""

    def __init__(self, backend: HeBackend, cache: PlaintextCache):
        self.backend = backend
        self.cache = cache
        self.sig = _backend_sig(backend)
        self.ps = float(backend.scale)

    def __call__(self, weights: np.ndarray) -> EncodedTaps:
        consts = tuple(int(round(float(w) * self.ps)) for w in weights)
        key = plan_cache_key(self.sig, self.ps, consts)
        return self.cache.get_or_encode(
            key, lambda: self.backend.encode_taps(weights, self.ps)
        )


class PlannedConv2d(HeLayer):
    """Replay of :class:`HeConv2d` from precompiled tap programs."""

    depth = 1

    def __init__(self, src: HeConv2d, enc: _TapEncoder, h: int, w: int):
        self.src = src
        oc = src.weight.shape[0]
        self.out_shape: tuple[int, int, int] | None = None
        #: per output channel: list of (i, j, flat tap indices, EncodedTaps)
        self.programs: list[list[tuple[int, int, list[int], EncodedTaps]]] = []
        for o in range(oc):
            oh, ow, program = conv_tap_program(
                src.weight[o], h, w, src.stride, src.padding, src.prune_below
            )
            self.out_shape = (oc, oh, ow)
            self.programs.append(
                [(i, j, idxs, enc(ws)) for i, j, idxs, ws in program]
            )

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        flat = x.reshape(-1)
        out = np.empty(self.out_shape, dtype=object)
        bias = self.src.bias
        accs: list = []
        slots: list[tuple[int, int, int]] = []
        for o, program in enumerate(self.programs):
            for i, j, idxs, etaps in program:
                taps = [flat[t] for t in idxs]
                accs.append(backend.weighted_sum_encoded(taps, etaps))
                slots.append((o, i, j))
        accs = backend.rescale_many(accs)
        if bias is not None:
            accs = backend.add_plain_each(
                accs, np.array([bias[o] for o, _, _ in slots], dtype=np.float64)
            )
        for (o, i, j), acc in zip(slots, accs):
            out[o, i, j] = acc
        return out


class PlannedLinear(HeLayer):
    """Replay of :class:`HeLinear` from precompiled row encodings."""

    depth = 1

    def __init__(self, src: HeLinear, enc: _TapEncoder):
        self.src = src
        out_f, in_f = src.weight.shape
        self.in_features = in_f
        #: per output neuron: (kept input indices or None for all, EncodedTaps)
        self.rows: list[tuple[list[int] | None, EncodedTaps]] = []
        for o in range(out_f):
            row = src.weight[o]
            if src.prune_below > 0:
                kept = np.nonzero(np.abs(row) > src.prune_below)[0]
                if len(kept) == 0:
                    self.rows.append(([0], enc(np.array([0.0]))))
                    continue
                self.rows.append((list(map(int, kept)), enc(row[kept])))
            else:
                self.rows.append((None, enc(row)))

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        handles = list(x)
        out = np.empty(len(self.rows), dtype=object)
        bias = self.src.bias
        accs = [
            backend.weighted_sum_encoded(
                handles if idxs is None else [handles[t] for t in idxs], etaps
            )
            for idxs, etaps in self.rows
        ]
        accs = backend.rescale_many(accs)
        if bias is not None:
            accs = backend.add_plain_each(accs, np.asarray(bias, dtype=np.float64))
        out[:] = accs
        return out


class PlannedAvgPool(HeLayer):
    """Replay of :class:`HeAvgPool`; one encoding serves every window."""

    depth = 1

    def __init__(self, src: HeAvgPool, enc: _TapEncoder):
        self.src = src
        k = src.kernel_size
        self.etaps = enc(np.full(k * k, 1.0 / (k * k)))

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        c, h, w = x.shape
        k, s = self.src.kernel_size, self.src.stride
        oh, ow = conv_output_shape(h, w, k, k, s, 0)
        out = np.empty((c, oh, ow), dtype=object)
        accs = [
            backend.weighted_sum_encoded(
                [x[ci, i * s + di, j * s + dj] for di in range(k) for dj in range(k)],
                self.etaps,
            )
            for ci in range(c)
            for i in range(oh)
            for j in range(ow)
        ]
        out.reshape(-1)[:] = backend.rescale_many(accs)
        return out


class PlannedPoly(HeLayer):
    """Replay of :class:`HePoly` with its BSGS program compiled once.

    The coefficient-row table (one row per flat feature-map position, or
    a single broadcast row for layer-wide coefficients) and the
    :class:`~repro.nt.kernels.PolyProgram` are fixed by the layer and
    the propagated shape, so both are materialized at plan-compile time;
    runtime is a single :meth:`HeBackend.poly_eval_many` call that
    shares the baby-step power basis across all positions.
    """

    def __init__(self, src: HePoly, shape: tuple[int, ...]):
        self.src = src
        self.depth = src.depth
        self.shape = tuple(shape)
        probe = np.empty(self.shape, dtype=object)
        self.rows = src._rows_for(probe)
        self.program = compile_poly_program(src.coeffs.shape[1] - 1)

    def forward(self, backend: HeBackend, x: np.ndarray) -> np.ndarray:
        if x.shape != self.shape:  # planned for a different shape: run unplanned
            return self.src.forward(backend, x)
        results = backend.poly_eval_many(list(x.reshape(-1)), self.rows, self.program)
        out = np.empty(len(results), dtype=object)
        out[:] = results
        return out.reshape(x.shape)


class InferencePlan:
    """Precompiled evaluation artifacts for one engine.

    Attributes
    ----------
    layers:
        Executable layers aligned with the source graph — planned
        replacements for conv/pool/linear, the original objects for
        everything ciphertext-data-dependent (activations, flatten).
    cache:
        The :class:`PlaintextCache` holding deduplicated tap encodings
        and (after the first image) every scalar plaintext; also
        installed as the backend context's ``plain_cache``.
    """

    def __init__(
        self,
        backend: HeBackend,
        source_layers: list[HeLayer],
        layers: list[HeLayer],
        input_shape: tuple[int, int, int],
        cache: PlaintextCache,
    ):
        self.backend = backend
        self.source_layers = source_layers
        self.layers = layers
        self.input_shape = input_shape
        self.cache = cache
        self.signature = _backend_sig(backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        planned = sum(s is not l for s, l in zip(self.source_layers, self.layers))
        return (
            f"InferencePlan(layers={len(self.layers)}, planned={planned}, "
            f"cache_entries={len(self.cache)})"
        )


def compile_plan(
    backend: HeBackend,
    layers: list[HeLayer],
    input_shape: tuple[int, int, int],
    cache: PlaintextCache | None = None,
) -> InferencePlan:
    """Compile the graph's plaintext side once for this backend.

    Walks the layer list with shape propagation, pre-encoding every
    weighted sum through *cache* (deduplicated by quantized content) and
    installing the cache on the backend context so runtime scalar
    encodes (biases, activation constants) are memoized as the first
    image flows through.  Layers the plan does not specialize are kept
    as-is, so a planned engine always evaluates the exact same graph.

    Parameters
    ----------
    backend, layers, input_shape:
        As on :class:`~repro.henn.inference.HeInferenceEngine`.
    cache:
        Cache to (re)use; by default a fresh one per plan.  Sharing one
        cache between plans is safe — keys carry the backend signature.
    """
    cache = cache or PlaintextCache()
    ctx = getattr(backend, "ctx", None)
    if ctx is not None and hasattr(ctx, "plain_cache"):
        ctx.plain_cache = cache
    enc = _TapEncoder(backend, cache)
    shape: tuple = tuple(input_shape)
    planned: list[HeLayer] = []
    with obs.span("henn.plan.compile", layers=len(layers)):
        for layer in layers:
            if isinstance(layer, HeConv2d):
                _, h, w = shape
                pl = PlannedConv2d(layer, enc, h, w)
                planned.append(pl)
                shape = pl.out_shape
            elif isinstance(layer, HeAvgPool):
                c, h, w = shape
                planned.append(PlannedAvgPool(layer, enc))
                oh, ow = conv_output_shape(h, w, layer.kernel_size, layer.kernel_size, layer.stride, 0)
                shape = (c, oh, ow)
            elif isinstance(layer, HeLinear):
                planned.append(PlannedLinear(layer, enc))
                shape = (layer.weight.shape[0],)
            elif isinstance(layer, HeFlatten):
                planned.append(layer)
                shape = (int(np.prod(shape)),)
            elif isinstance(layer, HePoly):
                planned.append(PlannedPoly(layer, shape))
                get_registry().counter("plan.poly.programs").inc()
            else:
                # Anything unknown is data-dependent: run as-is.
                planned.append(layer)
    reg = get_registry()
    reg.counter("plan.compiled").inc()
    # Cache-size gauge next to the hit/miss counters: together they say
    # whether a serving process is still warming or fully steady-state.
    reg.gauge("plan.cache.entries", {"backend": backend.name}).set(len(cache))
    return InferencePlan(backend, layers, planned, input_shape, cache)
