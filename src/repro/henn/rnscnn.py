"""The exact Fig. 2 / Fig. 5 integer-RNS convolution pipeline.

The paper's CNN-RNS figures show: *input image -> RNS decompose -> k
convolution channels processed independently in parallel -> CRT
recompose -> activation -> dense ...*.  This module implements that
data flow exactly over fixed-point integers whose width models the
CKKS ciphertext-coefficient budget (``log q ≈ 366`` in Table II):

1. pixels and convolution weights are scaled to wide integers,
2. the tensor is decomposed into ``k`` residue channels (Fig. 2),
3. each channel runs the same convolution modulo its prime — channels
   are independent, so they can be dispatched to an executor, and
   channels at most ~28 bits ride the fast int64 NumPy kernels while
   wider channels pay genuine multiprecision (Python big-int) cost,
4. CRT recomposes the exact signed convolution output.

``k = 1`` therefore *is* the multiprecision (non-RNS) baseline, and
sweeping ``k`` at a fixed total bit budget reproduces the latency
curves of Tables IV and VI: cost falls as channels narrow toward
machine words, reaches a minimum at the first fully-word-sized
configuration, and creeps back up as per-channel overhead accumulates.

Because convolution is integer-linear and the moduli product exceeds
the output dynamic range, the recomposed result equals the direct
convolution **exactly** — the "RNS does not compromise accuracy"
property of Tables III/V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs.metrics import get_registry
from repro.nt.crt import CrtBasis
from repro.rns.limb import (
    LIMB_BITS,
    LIMB_MASK,
    carry_normalize,
    fold_mod,
    n_limbs,
    partial_residue_limbs,
    split_limbs,
)
from repro.nt.primes import gen_primes
from repro.nn.layers.conv import conv_output_shape, im2col
from repro.parallel import Executor, SerialExecutor
from repro.parallel.shm import dispatch_channels
from repro.resilience.errors import ChannelIntegrityError
from repro.resilience.rrns import RedundantBasis

__all__ = [
    "QuantizedConvSpec",
    "RnsIntegerConv",
    "rns_conv_pipeline",
    "basis_for_budget",
]


def _conv_channel_kernel(
    xl: np.ndarray,
    wl: np.ndarray,
    m: int,
    img_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Multi-limb residue convolution of one channel (see `_conv_channel`).

    Module-level so process workers can run it on shared-memory limb
    views; the inputs are plain int64 arrays plus scalars, nothing that
    drags a context or executor across the pickle boundary.
    """
    dw = wl.shape[0]
    d = xl.shape[0]
    n, c, h, w = img_shape
    oc = wl.shape[1]
    oh, ow = conv_output_shape(h, w, kh, kw, stride, padding)
    cols = im2col(xl.reshape(d * n, c, h, w), kh, kw, stride, padding).reshape(
        d, n, oh * ow, -1
    )
    taps = cols.shape[-1]
    if 2 * LIMB_BITS + int(np.ceil(np.log2(taps))) > 62:  # pragma: no cover
        raise ValueError("too many taps for the limb kernel")
    acc = np.zeros((d + dw, n, oh * ow, oc), dtype=np.int64)
    for i in range(d):
        if not cols[i].any():
            continue  # top limbs of partially-reduced residues are often zero
        for j in range(dw):
            prod = cols[i] @ wl[j].T  # < taps * 2^(2*LIMB_BITS)
            acc[i + j] += prod & LIMB_MASK
            acc[i + j + 1] += prod >> LIMB_BITS
    return fold_mod(carry_normalize(acc), m)  # (N, OH*OW, OC) residues


class _ConvChannelWorker:
    """Picklable per-residue-channel conv task for zero-copy dispatch.

    Receives the shared limb tensor and the per-channel weight limbs as
    shared-memory views (``limbs`` / ``w<i>`` keys); only the moduli and
    geometry scalars travel through pickle.
    """

    __slots__ = ("moduli", "value_bits", "img_shape", "kh", "kw", "stride", "padding")

    def __init__(self, moduli, value_bits, img_shape, kh, kw, stride, padding):
        self.moduli = moduli
        self.value_bits = value_bits
        self.img_shape = img_shape
        self.kh = kh
        self.kw = kw
        self.stride = stride
        self.padding = padding

    def __call__(self, arrays, i: int) -> np.ndarray:
        m = self.moduli[i]
        limbs_full = arrays["limbs"]
        if m.bit_length() > self.value_bits:
            xl = limbs_full  # inputs already canonical below m
        else:
            xl = partial_residue_limbs(limbs_full, m)
        return _conv_channel_kernel(
            xl, arrays[f"w{i}"], m, self.img_shape, self.kh, self.kw, self.stride, self.padding
        )


@dataclass(frozen=True)
class QuantizedConvSpec:
    """Fixed-point quantisation for the integer pipeline.

    ``input_bits``/``weight_bits`` define the (deliberately wide)
    fixed-point precision: pixel integers carry ``input_bits`` and
    weight integers ``weight_bits``, so conv products model
    ciphertext-coefficient-width arithmetic.
    """

    input_bits: int = 96
    weight_bits: int = 128
    weight_frac_bits: int = 20  # resolution of the weight quantisation

    def quantize_input(self, pixels: np.ndarray) -> np.ndarray:
        """uint8-ish pixels -> exact wide integers (object dtype)."""
        base = np.rint(np.asarray(pixels, dtype=np.float64) * 255.0).astype(np.int64)
        shift = self.input_bits - 8
        if shift < 0:
            raise ValueError("input_bits must be >= 8")
        return _shift_pyint(base, shift)

    def quantize_weight(self, weight: np.ndarray) -> np.ndarray:
        frac = np.rint(np.asarray(weight, dtype=np.float64) * (1 << self.weight_frac_bits))
        shift = self.weight_bits - self.weight_frac_bits
        if shift < 0:
            raise ValueError("weight_bits must be >= weight_frac_bits")
        return _shift_pyint(frac.astype(np.int64), shift)

    @property
    def output_scale(self) -> float:
        """Integer-to-real factor of conv outputs:
        ``255 * 2^(input_bits-8) * 2^weight_bits``."""
        return 255.0 * 2.0 ** float((self.input_bits - 8) + self.weight_bits)

    def dequantize_output(self, out_int: np.ndarray) -> np.ndarray:
        """Recomposed integers -> float conv outputs (pixels in [0,1])."""
        return _deq(out_int, self.output_scale)

    def dynamic_range_bits(self, weight: np.ndarray) -> int:
        """Upper bound on ``log2 |conv output|`` for the scaled integers."""
        taps = int(np.prod(weight.shape[1:]))
        wmax = float(np.abs(weight).max()) + 1.0
        return self.input_bits + self.weight_bits + int(np.ceil(np.log2(taps * wmax))) + 1


def _shift_pyint(arr: np.ndarray, shift: int) -> np.ndarray:
    """Box every element as a *Python* int before shifting.

    ``ndarray.astype(object)`` boxes as ``np.int64``, whose arithmetic
    silently overflows at 64 bits; uniform Python ints keep the wide
    fixed-point arithmetic exact.
    """
    flat = [int(v) << shift for v in arr.reshape(-1)]
    return np.array(flat, dtype=object).reshape(arr.shape)


def _deq(out_int: np.ndarray, scale: float) -> np.ndarray:
    flat = np.asarray([float(v) for v in out_int.reshape(-1)], dtype=np.float64)
    return flat.reshape(out_int.shape) / scale


def basis_for_budget(k: int, total_bits: int, exclude: set[int] | None = None) -> CrtBasis:
    """K pairwise-distinct primes splitting ``total_bits`` evenly.

    This is the Table IV/VI sweep knob: a fixed precision budget divided
    into ``k`` co-prime moduli (width ``ceil(total_bits / k) + 1``).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    per = max(4, -(-total_bits // k) + 1)
    return CrtBasis(gen_primes([per] * k, exclude=exclude))


class RnsIntegerConv:
    """One convolution evaluated per residue channel (Fig. 5 stage)."""

    def __init__(
        self,
        weight: np.ndarray,
        base: CrtBasis,
        stride: int = 1,
        padding: int = 0,
        spec: QuantizedConvSpec | None = None,
        executor: Executor | None = None,
        redundancy: int = 0,
        fault_injector: "object | None" = None,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 4:
            raise ValueError("conv weight must be (OC, IC, KH, KW)")
        self.base = base
        self.stride = stride
        self.padding = padding
        self.spec = spec or QuantizedConvSpec()
        self.executor = executor or SerialExecutor()
        self.fault_injector = fault_injector
        self.w_int = self.spec.quantize_weight(self.weight)
        need = self.spec.dynamic_range_bits(self.weight) + 1
        if base.modulus.bit_length() < need:
            raise ValueError(
                f"RNS base too small: need ~{need} bits of dynamic range, "
                f"base has {base.modulus.bit_length()}"
            )
        # RRNS: redundant moduli extend the working basis; ``base`` stays
        # the data basis whose product bounds the legitimate range.
        self.rbasis: RedundantBasis | None = (
            RedundantBasis.extend(base, redundancy) if redundancy else None
        )
        self._work: CrtBasis = self.rbasis.full if self.rbasis else base
        #: Channels erased/corrected during the last ``forward_quantized``.
        self.last_faults: list[int] = []
        # Per-channel reduced weights, split into multiprecision limbs.
        self._w_limbs: list[np.ndarray] = []
        for m in self._work.moduli:
            wm = np.mod(self.w_int, m)  # object, canonical
            dw = n_limbs(m)
            self._w_limbs.append(
                split_limbs(wm.reshape(self.w_int.shape[0], -1), dw)
            )  # (dw, OC, taps)

    def _conv_channel(self, xl: np.ndarray, img_shape: tuple[int, ...], chan_idx: int) -> np.ndarray:
        """Convolution of one residue channel, modulo its prime.

        ``xl`` holds the channel's (possibly partially-reduced) input as
        ``(d, N, C, H, W)`` limbs.  Channels wider than one limb run the
        schoolbook multi-limb kernel — ``d * d_w`` int64 matmuls, the
        genuine multiprecision cost a non-RNS implementation pays on
        full-width integers.
        """
        return _conv_channel_kernel(
            xl,
            self._w_limbs[chan_idx],
            self._work.moduli[chan_idx],
            img_shape,
            self.w_int.shape[2],
            self.w_int.shape[3],
            self.stride,
            self.padding,
        )

    def forward_quantized(self, x_int: np.ndarray) -> np.ndarray:
        """split once -> per-channel residue limbs -> conv -> CRT recompose.

        The wide fixed-point input is limb-split a single time; each
        channel then derives its residue representation with int64 limb
        arithmetic (:func:`~repro.rns.limb.partial_residue_limbs`), so
        the per-channel work is pure vectorised word arithmetic whose
        volume scales with the channel's limb count.
        """
        x_int = np.asarray(x_int, dtype=object)
        img_shape = x_int.shape
        if x_int.ndim != 4 or img_shape[1] != self.w_int.shape[1]:
            raise ValueError(
                f"expected (N, {self.w_int.shape[1]}, H, W) input channels, got {img_shape}"
            )
        n = img_shape[0]
        oc = self.w_int.shape[0]
        oh, ow = conv_output_shape(
            img_shape[2], img_shape[3], self.w_int.shape[2], self.w_int.shape[3], self.stride, self.padding
        )
        value_bits = self.spec.input_bits + 1
        big_d = max(1, -(-value_bits // LIMB_BITS))
        with obs.span("rnscnn.decompose", k=self._work.k):
            limbs_full = split_limbs(x_int, big_d)

        worker = _ConvChannelWorker(
            list(self._work.moduli),
            value_bits,
            tuple(int(s) for s in img_shape),
            self.w_int.shape[2],
            self.w_int.shape[3],
            self.stride,
            self.padding,
        )
        arrays = {"limbs": limbs_full}
        for i, wl in enumerate(self._w_limbs):
            arrays[f"w{i}"] = wl
        with obs.span("rnscnn.conv_channels", k=self._work.k):
            outs = dispatch_channels(
                self.executor, worker, arrays, list(range(self._work.k))
            )
        if self.fault_injector is not None:
            outs = self.fault_injector.apply_channel_faults(outs, self._work.moduli)
        with obs.span("rnscnn.recompose", k=self._work.k):
            if self.rbasis is not None:
                composed, self.last_faults = self.rbasis.recover(outs)
            else:
                dead = [i for i, o in enumerate(outs) if o is None]
                if dead:
                    raise ChannelIntegrityError(
                        f"residue channels {dead} were dropped and the basis "
                        "carries no redundancy",
                        suspects=tuple(dead),
                    )
                self.last_faults = []
                composed = self.base.compose_centered(outs)
        if obs.enabled():
            # Channel-health gauges for the integer pipeline: how many
            # residue channels ran, how wide they are, and whether the
            # RRNS recovery had to repair any this pass.
            reg = get_registry()
            labels = {"backend": "rnscnn"}
            reg.gauge("rnscnn.channels", labels).set(self._work.k)
            reg.gauge("rnscnn.channel_bits", labels).set(
                max(m.bit_length() for m in self._work.moduli)
            )
            reg.gauge("rnscnn.faults.recovered", labels).set(len(self.last_faults))
            reg.counter("rnscnn.conv.calls").inc()
        return composed.transpose(0, 2, 1).reshape(n, oc, oh, ow)

    def _lower(self, x_int: np.ndarray) -> tuple[np.ndarray, tuple]:
        n, c, h, w = x_int.shape
        oc, ic, kh, kw = self.w_int.shape
        if c != ic:
            raise ValueError(f"expected {ic} input channels, got {c}")
        oh, ow = conv_output_shape(h, w, kh, kw, self.stride, self.padding)
        cols = im2col(x_int, kh, kw, self.stride, self.padding).reshape(
            n, oh * ow, ic * kh * kw
        )
        return cols, (n, oc, oh, ow)

    def forward(self, pixels: np.ndarray) -> np.ndarray:
        """Float pixels in [0, 1] -> float conv outputs (exact integer core)."""
        x = np.asarray(pixels, dtype=np.float64)
        if x.ndim == 3:
            x = x[:, None]
        x_int = self.spec.quantize_input(x)
        out_int = self.forward_quantized(x_int)
        return self.spec.dequantize_output(out_int)

    def forward_direct(self, pixels: np.ndarray) -> np.ndarray:
        """Reference: the same quantised conv without RNS decomposition
        (single multiprecision channel)."""
        x = np.asarray(pixels, dtype=np.float64)
        if x.ndim == 3:
            x = x[:, None]
        cols, out_shape = self._lower(self.spec.quantize_input(x))
        wm = self.w_int.reshape(self.w_int.shape[0], -1)
        out = cols.astype(object) @ wm.T.astype(object)
        n, oc, oh, ow = out_shape
        return self.spec.dequantize_output(out.transpose(0, 2, 1).reshape(n, oc, oh, ow))


def rns_conv_pipeline(
    images: np.ndarray,
    weight: np.ndarray,
    k: int,
    total_bits: int | None = None,
    stride: int = 2,
    padding: int = 1,
    spec: QuantizedConvSpec | None = None,
    executor: Executor | None = None,
    redundancy: int = 0,
    fault_injector: "object | None" = None,
) -> dict[str, object]:
    """End-to-end Fig. 5 demonstration on a batch of [0,1] float images.

    Returns RNS and direct outputs plus their max deviation (0 by
    construction — the pipeline is exact, including under recovered
    single-channel faults when ``redundancy > 0``).
    """
    spec = spec or QuantizedConvSpec()
    total = total_bits or (spec.dynamic_range_bits(np.asarray(weight)) + 2)
    base = basis_for_budget(k, total)
    conv = RnsIntegerConv(
        weight,
        base,
        stride=stride,
        padding=padding,
        spec=spec,
        executor=executor,
        redundancy=redundancy,
        fault_injector=fault_injector,
    )
    rns_out = conv.forward(images)
    direct = conv.forward_direct(images)
    return {
        "rns": rns_out,
        "direct": direct,
        "max_dev": float(np.max(np.abs(rns_out - direct))),
        "exact": bool(np.array_equal(rns_out, direct)),
        "moduli_bits": base.k and [m.bit_length() for m in base.moduli],
        "faults": list(conv.last_faults),
    }
