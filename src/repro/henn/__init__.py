"""Core contribution: privacy-preserving CNN inference (CNN-HE / CNN-HE-RNS).

Pipeline (paper §III, §V, Figs. 3-5):

1. Train CNN1/CNN2 in the clear (:mod:`repro.nn`, recipe §V.D).
2. Replace ReLU by degree-3 SLAF and retrain the coefficients only
   (:func:`repro.henn.compiler.slafify`).
3. Compile to an HE layer graph: BatchNorm folded into the adjacent
   linear layer, pooling folded into weights
   (:func:`repro.henn.compiler.compile_model`).
4. Run under a backend: :class:`~repro.henn.backend.MockBackend`
   (plaintext simulation, for full-test-set accuracy),
   :class:`~repro.henn.backend.CkksBackend` (multiprecision CKKS — the
   paper's CNN-HE), or :class:`~repro.henn.backend.CkksRnsBackend`
   (CKKS-RNS with parallel residue channels — CNN-HE-RNS).

Packing is CryptoNets-style SIMD: slot *i* of every ciphertext belongs
to image *i*, one ciphertext per scalar position, so a whole batch is
classified in one network evaluation.
"""

from repro.henn.backend import CkksBackend, CkksRnsBackend, EncodedTaps, HeBackend, MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLayer, HeLinear, HePoly
from repro.henn.compiler import compile_model, slafify
from repro.henn.plan import InferencePlan, compile_plan
from repro.henn.architectures import build_cnn1, build_cnn2, ascii_diagram
from repro.henn.inference import HeInferenceEngine
from repro.henn.security import he_standard_max_logq, validate_security
from repro.henn.rnscnn import RnsIntegerConv, rns_conv_pipeline
from repro.henn.packing import dense_single, encrypt_features, rotations_needed
from repro.henn.hybrid import HybridRnsEngine
from repro.henn.protocol import (
    BatchedCloudService,
    Client,
    CloudResponse,
    CloudService,
    ServiceError,
)

__all__ = [
    "HeBackend",
    "MockBackend",
    "CkksBackend",
    "CkksRnsBackend",
    "HeLayer",
    "HeConv2d",
    "HeLinear",
    "HePoly",
    "HeFlatten",
    "compile_model",
    "slafify",
    "InferencePlan",
    "compile_plan",
    "EncodedTaps",
    "build_cnn1",
    "build_cnn2",
    "ascii_diagram",
    "HeInferenceEngine",
    "he_standard_max_logq",
    "validate_security",
    "RnsIntegerConv",
    "rns_conv_pipeline",
    "encrypt_features",
    "dense_single",
    "rotations_needed",
    "HybridRnsEngine",
    "Client",
    "CloudService",
    "BatchedCloudService",
    "CloudResponse",
    "ServiceError",
]
