"""The Fig. 1 protocol: blind, two-party, non-interactive classification.

* The **client** owns the secret key: it encrypts its images, ships the
  ciphertexts (and evaluation keys) to the cloud, and decrypts the
  returned encrypted scores.
* The **cloud** holds the (plaintext) model and only ever touches
  ciphertexts: it cannot read the inputs, the features, or the scores.

These classes are a thin choreography over
:class:`~repro.henn.inference.HeInferenceEngine`; they exist to make
the trust boundary explicit (and testable: the cloud object never
receives the secret key).
"""

from __future__ import annotations

import numpy as np

from repro.henn.backend import HeBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeLayer

__all__ = ["Client", "CloudService"]


class Client:
    """Data owner: encrypts queries and decrypts responses."""

    def __init__(self, backend: HeBackend, input_shape: tuple[int, int, int]):
        self.backend = backend
        self.input_shape = input_shape
        # Engine used only for its packing logic; layers stay on the cloud.
        self._packer = HeInferenceEngine(backend, [], input_shape)

    def encrypt_request(self, images: np.ndarray) -> np.ndarray:
        """Package a batch of images as ciphertext handles."""
        return self._packer.encrypt_images(images)

    def decrypt_response(self, encrypted_scores: np.ndarray, batch: int) -> np.ndarray:
        """Recover ``(batch, classes)`` logits from encrypted scores."""
        return np.stack(
            [self.backend.decrypt(h, count=batch) for h in encrypted_scores], axis=1
        )


class CloudService:
    """Untrusted evaluator: holds the model, never the secret key."""

    def __init__(self, backend: HeBackend, layers: list[HeLayer], input_shape: tuple[int, int, int]):
        self.engine = HeInferenceEngine(backend, layers, input_shape)

    def classify_encrypted(self, encrypted_images: np.ndarray) -> np.ndarray:
        """Run the CNN homomorphically; inputs and outputs stay encrypted."""
        return self.engine.run_encrypted(encrypted_images)

    @property
    def last_latency(self) -> float:
        """Seconds spent on the most recent encrypted classification."""
        return self.engine.trace.total()
