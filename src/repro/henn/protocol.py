"""The Fig. 1 protocol: blind, two-party, non-interactive classification.

* The **client** owns the secret key: it encrypts its images, ships the
  ciphertexts (and evaluation keys) to the cloud, and decrypts the
  returned encrypted scores.
* The **cloud** holds the (plaintext) model and only ever touches
  ciphertexts: it cannot read the inputs, the features, or the scores.

These classes are a thin choreography over
:class:`~repro.henn.inference.HeInferenceEngine`; they exist to make
the trust boundary explicit (and testable: the cloud object never
receives the secret key).

Fault paths respect the same boundary.  A failing evaluation must not
become a side channel, so :meth:`CloudService.try_classify` answers
with a :class:`ServiceError` built from a **fixed vocabulary** — the
exception *class name* and a canned detail string, never the exception
arguments (which could embed slot values or scales derived from the
client's data).  The client drives bounded retry on top
(:meth:`Client.classify_with_retry`), re-encrypting fresh request
ciphertexts each attempt.

Serving telemetry follows the same rule: every ``try_classify`` call
emits ``henn.request.*`` lifecycle events through
:mod:`repro.obs.logs` (silent until a sink is configured) carrying only
durations, handle counts and sanitised error codes, and
:meth:`CloudService.start_observability` optionally exposes the process
metrics on ``/metrics`` + ``/healthz`` scrape endpoints.

Per-request distributed tracing (:mod:`repro.obs.rtrace`) is opt-in via
``trace_policy``: the gateway mints a :class:`TraceContext` at
admission, the scheduler and cluster dispatcher attribute the serving
stages (gateway, queue wait, pack, compute, split, failover) to it,
sampled batches bring worker-process spans home with the result, and
retained traces appear on ``/debug/traces`` (see
``tools/trace_critical_path.py`` for the breakdown CLI).
"""

from __future__ import annotations

import itertools
import math
import random
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass

import numpy as np

from repro.henn.backend import HeBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeLayer
from repro.obs import health as _obs_health
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.rtrace import RequestTracer, SamplingPolicy, TraceContext, batch_stage
from repro.obs.server import ObservabilityServer
from repro.resilience.errors import (
    ChannelIntegrityError,
    ExecutorExhaustedError,
    ItemTimeoutError,
    ProtocolError,
)
from repro.serving.errors import (
    ClusterUnavailableError,
    DrainTimeoutError,
    RequestValidationError,
    SchedulerClosedError,
    ServiceOverloadedError,
    ServiceShedError,
    WorkerLostError,
)
from repro.serving.scheduler import BatchingScheduler
from repro.serving.shedding import SHED_TIERS, ShedPolicy

__all__ = [
    "Client",
    "CloudService",
    "BatchedCloudService",
    "ClusteredCloudService",
    "ServiceError",
    "CloudResponse",
]


@dataclass(frozen=True)
class ServiceError:
    """Sanitised failure report crossing the cloud -> client boundary.

    Attributes
    ----------
    code:
        The exception class name (type only — no arguments).
    category:
        ``"integrity"`` (residue channels unrecoverable), ``"compute"``
        (executors exhausted / timed out), ``"state"`` (ciphertext
        bookkeeping rejected the request), or ``"internal"``.
    retryable:
        Whether the client may usefully resubmit the request.
    detail:
        One of a fixed set of canned sentences; deliberately never
        interpolates exception arguments, so no plaintext-derived value
        can leak through the error path.
    """

    code: str
    category: str
    retryable: bool
    detail: str


@dataclass(frozen=True)
class CloudResponse:
    """What the cloud returns: encrypted scores, or a sanitised error."""

    ok: bool
    scores: np.ndarray | None = None
    error: ServiceError | None = None


def _sanitize(exc: BaseException) -> ServiceError:
    """Map an internal exception onto the fixed error vocabulary."""
    code = type(exc).__name__
    if isinstance(exc, ChannelIntegrityError):
        return ServiceError(
            code, "integrity", True, "residue channel check failed beyond recovery"
        )
    if isinstance(exc, (ExecutorExhaustedError, ItemTimeoutError)):
        return ServiceError(code, "compute", True, "evaluation resources exhausted")
    if isinstance(exc, ServiceShedError):
        return ServiceError(
            code, "overload", False, "service saturated, route elsewhere"
        )
    if isinstance(exc, ServiceOverloadedError):
        return ServiceError(
            code, "overload", True, "service at capacity, retry with backoff"
        )
    if isinstance(exc, RequestValidationError):
        return ServiceError(code, "state", False, "request rejected at admission")
    if isinstance(exc, DrainTimeoutError):
        return ServiceError(
            code, "unavailable", True, "service drained out before evaluation"
        )
    if isinstance(exc, WorkerLostError):
        return ServiceError(
            code, "compute", True, "evaluation worker lost mid-batch"
        )
    if isinstance(exc, ClusterUnavailableError):
        return ServiceError(
            code, "unavailable", True, "worker pool unavailable"
        )
    if isinstance(exc, SchedulerClosedError):
        return ServiceError(code, "unavailable", False, "service is shutting down")
    if isinstance(exc, ValueError):
        return ServiceError(
            code, "state", True, "ciphertext bookkeeping rejected the request"
        )
    return ServiceError(code, "internal", False, "internal evaluation failure")


class Client:
    """Data owner: encrypts queries and decrypts responses."""

    def __init__(self, backend: HeBackend, input_shape: tuple[int, int, int]):
        self.backend = backend
        self.input_shape = input_shape
        # Engine used only for its packing logic; layers stay on the cloud.
        self._packer = HeInferenceEngine(backend, [], input_shape)

    def encrypt_request(self, images: np.ndarray) -> np.ndarray:
        """Package a batch of images as ciphertext handles."""
        return self._packer.encrypt_images(images)

    def decrypt_response(self, encrypted_scores: np.ndarray, batch: int) -> np.ndarray:
        """Recover ``(batch, classes)`` logits from encrypted scores."""
        return np.stack(
            [self.backend.decrypt(h, count=batch) for h in encrypted_scores], axis=1
        )

    def classify_with_retry(
        self,
        cloud: "CloudService",
        images: np.ndarray,
        max_attempts: int = 3,
        backoff_seconds: float = 0.0,
        *,
        jitter: float = 1.0,
        max_elapsed: float | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Full round trip with bounded client-side retry.

        Each attempt encrypts a *fresh* request (a transient fault may
        have corrupted the previous ciphertexts in flight).  A
        non-retryable :class:`ServiceError`, or ``max_attempts``
        retryable ones, raise
        :class:`~repro.resilience.errors.ProtocolError` carrying the
        sanitised error only.

        ``backoff_seconds`` > 0 backs off exponentially before retry
        *k*, from the base delay ``backoff_seconds * 2^(k-2)`` — the
        polite response to an ``overload`` rejection from a
        backpressured :class:`BatchedCloudService` (its queue needs
        draining, not hammering).  By default the delay is **fully
        jittered** (uniform in ``[0, base]``, AWS-style): a fleet of
        clients rejected together must not retry in lockstep, or every
        backoff wave arrives as the same thundering herd that overloaded
        the gateway in the first place.

        Parameters
        ----------
        jitter:
            Jittered fraction of each backoff delay, in ``[0, 1]``:
            ``1.0`` (default) draws the whole delay uniformly from
            ``[0, base]``; ``0.0`` restores the deterministic
            exponential schedule.
        max_elapsed:
            Wall-clock cap in seconds across *all* attempts and
            backoffs: once the budget cannot cover the next delay the
            client gives up immediately with the last sanitised error
            instead of sleeping past its own deadline.
        seed:
            Seeds the jitter RNG (reproducible tests); ``None`` draws
            from the process RNG.
        """
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if max_elapsed is not None and max_elapsed <= 0:
            raise ValueError("max_elapsed must be positive (or None)")
        images = np.asarray(images, dtype=np.float64)
        rng = random.Random(seed)
        started = time.monotonic()
        error: ServiceError | None = None
        for attempt in range(1, max_attempts + 1):
            if attempt > 1:
                base = backoff_seconds * 2 ** (attempt - 2)
                delay = base * (1.0 - jitter) + rng.uniform(0.0, base * jitter)
                if max_elapsed is not None:
                    remaining = max_elapsed - (time.monotonic() - started)
                    if remaining <= delay:
                        raise ProtocolError(error, attempts=attempt - 1)
                get_registry().counter("resilience.protocol_retries").inc()
                if delay > 0:
                    time.sleep(delay)
            response = cloud.try_classify(self.encrypt_request(images))
            if response.ok:
                return self.decrypt_response(response.scores, images.shape[0])
            error = response.error
            if not error.retryable:
                raise ProtocolError(error, attempts=attempt)
        raise ProtocolError(error, attempts=max_attempts)


class CloudService:
    """Untrusted evaluator: holds the model, never the secret key.

    Request tracing is opt-in: pass a
    :class:`~repro.obs.rtrace.SamplingPolicy` as *trace_policy* and the
    service mints a per-request :class:`~repro.obs.rtrace.TraceContext`
    at admission, attributes the serving stages to it, and retains
    sampled / errored / slow-tail records in :attr:`rtrace`'s store
    (exposed on ``/debug/traces`` by :meth:`start_observability`).
    Without a policy the request path stays trace-free.
    """

    def __init__(
        self,
        backend: HeBackend,
        layers: list[HeLayer],
        input_shape: tuple[int, int, int],
        *,
        trace_policy: SamplingPolicy | None = None,
    ):
        self.engine = HeInferenceEngine(backend, layers, input_shape)
        self._obs_server: ObservabilityServer | None = None
        self.rtrace = RequestTracer(policy=trace_policy)
        # Request ids must stay unique under concurrent try_classify
        # calls: itertools.count.__next__ is atomic under the GIL, and
        # the served/latency bookkeeping shares one lock.
        self._request_ids = itertools.count(1)
        self._state_lock = threading.Lock()
        self._requests_served = 0
        self._last_latency = 0.0

    def classify_encrypted(self, encrypted_images: np.ndarray) -> np.ndarray:
        """Run the CNN homomorphically; inputs and outputs stay encrypted."""
        return self.engine.run_encrypted(encrypted_images)

    def try_classify(self, encrypted_images: np.ndarray) -> CloudResponse:
        """Like :meth:`classify_encrypted`, but failures come back as a
        structured :class:`CloudResponse` instead of a raw exception.

        Each call is one request-lifecycle: ``henn.request.start`` then
        ``henn.request.ok`` / ``henn.request.error`` JSON log events
        (with handle counts, latency and the sanitised error code —
        never exception arguments), plus ``henn.requests`` counters
        labelled by outcome.
        """
        log = get_logger()
        reg = get_registry()
        rid = next(self._request_ids)
        ctx = self.rtrace.mint(rid)
        handles = int(np.asarray(encrypted_images).size)
        log.event("henn.request.start", request=rid, handles=handles)
        t0 = time.perf_counter()
        try:
            scores = self.classify_encrypted(encrypted_images)
        except Exception as exc:
            seconds = time.perf_counter() - t0
            reg.counter("resilience.service_errors").inc()
            error = _sanitize(exc)
            reg.counter("henn.requests", {"outcome": "error"}).inc()
            with self._state_lock:
                self._requests_served += 1
            if ctx is not None:
                ctx.add_stage("compute", t0, t0 + seconds, outcome="error")
            self.rtrace.finish(ctx, "error", error_code=error.code)
            log.event(
                "henn.request.error",
                request=rid,
                seconds=seconds,
                code=error.code,
                category=error.category,
                retryable=error.retryable,
            )
            return CloudResponse(ok=False, error=error)
        seconds = time.perf_counter() - t0
        reg.counter("henn.requests", {"outcome": "ok"}).inc()
        reg.histogram("henn.request.seconds").observe(seconds)
        if ctx is not None:
            ctx.add_stage("compute", t0, t0 + seconds, outcome="ok")
        self.rtrace.finish(ctx, "ok")
        # Snapshot per request under the lock: reading the engine's
        # mutable trace here would race concurrent classifications.
        with self._state_lock:
            self._requests_served += 1
            self._last_latency = seconds
        log.event(
            "henn.request.ok", request=rid, seconds=seconds, scores=int(len(scores))
        )
        return CloudResponse(ok=True, scores=scores)

    # -- scrape endpoints --------------------------------------------------------

    def start_observability(
        self, port: int = 0, host: str = "127.0.0.1"
    ) -> ObservabilityServer:
        """Expose ``/metrics`` + ``/healthz`` for this service (opt-in).

        ``/healthz`` reports ready=true once at least one request has
        been served, along with request counts and the last latency.
        When request tracing is enabled (``trace_policy``), the retained
        per-request traces are also served on ``/debug/traces``.
        Returns the running :class:`ObservabilityServer`; read its
        ``port``/``url`` for the bound address (``port=0`` = ephemeral).
        Idempotent while running.
        """
        if self._obs_server is not None and self._obs_server.running:
            return self._obs_server
        self._obs_server = ObservabilityServer(
            port=port,
            host=host,
            health_fn=self._health,
            trace_store=self.rtrace.store if self.rtrace.enabled else None,
        ).start()
        return self._obs_server

    def stop_observability(self) -> None:
        """Shut down the scrape endpoints, if running."""
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None

    def _health(self) -> dict:
        with self._state_lock:
            served = self._requests_served
        return {
            "ok": True,
            "ready": served > 0,
            "requests": served,
            "backend": self.engine.backend.name,
            "last_latency_seconds": self.last_latency,
        }

    @property
    def last_latency(self) -> float:
        """Seconds spent on the most recent encrypted classification.

        Snapshotted per request inside :meth:`try_classify` (reading
        the engine's shared trace would race concurrent requests); for
        direct :meth:`classify_encrypted` callers that bypass the
        request path it falls back to the engine's layer-span total.
        """
        with self._state_lock:
            if self._requests_served:
                return self._last_latency
        return self.engine.trace.total()


class BatchedCloudService(CloudService):
    """Dynamic-batching gateway: coalesces requests into slot-packed runs.

    The serving-throughput problem this solves: a CKKS classification
    costs nearly the same wall-clock whether 1 or ``max_batch`` SIMD
    slots are filled, yet :meth:`CloudService.try_classify` evaluates
    one request per call — single-image clients pay full price and
    throughput is ``1/latency``.  This gateway admits requests into a
    bounded queue, a :class:`~repro.serving.scheduler.BatchingScheduler`
    worker coalesces them (fire on slots-full or ``max_wait_ms``
    deadline of the oldest request), the engine evaluates the packed
    batch **once**, and the score ciphertexts are split back so each
    response carries only its own slot range.

    Guarantees:

    * **Error isolation** — shapes, levels and scales are validated at
      admission; a poisoned request is rejected alone (non-retryable
      ``state`` error) and never joins a batch.  A backend fault while
      a batch runs fails all its members with the same *retryable*
      sanitised error.
    * **Backpressure** — beyond ``max_queue_depth`` pending requests,
      admission answers the retryable ``overload``
      :class:`ServiceError`, which
      :meth:`Client.classify_with_retry` backs off on.
    * **Exactness** — packing is exact: native slot concatenation where
      the backend supports it bit-identically (mock), lane-stacked SIMD
      packing on the real CKKS schemes (one evaluation per batch,
      bit-identical per lane), structural memberwise dispatch as the
      fallback for anything else; see :mod:`repro.serving.packing`.
    * **Telemetry** — ``serving.*`` gauges/histograms plus the same
      ``henn.request.*`` lifecycle events and counters as the serial
      service, all visible on ``/metrics`` and ``/healthz``.

    Parameters
    ----------
    backend, layers, input_shape:
        As for :class:`CloudService`; *backend* is what the clients
        share (the gateway wraps it for packing as needed).
    max_batch_slots:
        Slot capacity of one coalesced batch (default: the backend's
        ``max_batch``).
    max_wait_ms:
        Most latency a partial batch may add waiting for batchmates.
    max_queue_depth:
        Admission bound (requests) before overload rejections start.
    request_timeout_s:
        Upper bound a blocking :meth:`try_classify` waits on its
        future before answering with a ``compute`` error.
    shed_policy:
        Optional :class:`~repro.serving.shedding.ShedPolicy` replacing
        the single hard queue bound with the tiered
        accept/defer/reject/shed ladder (see
        :mod:`repro.serving.shedding`); saturation input comes from
        :meth:`_pool_saturation` (0 here; the cluster gateway overrides
        it with the worker pool's busy fraction).
    """

    def __init__(
        self,
        backend: HeBackend,
        layers: list[HeLayer],
        input_shape: tuple[int, int, int],
        *,
        max_batch_slots: int | None = None,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 64,
        request_timeout_s: float = 120.0,
        shed_policy: ShedPolicy | None = None,
        trace_policy: SamplingPolicy | None = None,
    ):
        # Deferred: repro.serving.packing subclasses HeBackend, so a
        # module-level import would close an import cycle through the
        # repro.henn package init.
        from repro.serving.packing import serving_backend_for

        self.client_backend = backend
        super().__init__(
            serving_backend_for(backend), layers, input_shape, trace_policy=trace_policy
        )
        self.request_timeout_s = float(request_timeout_s)
        self._expected_level = _obs_health._top_level(backend)
        self._expected_scale = float(backend.scale)
        self.scheduler = BatchingScheduler(
            self._run_batch,
            max_batch_slots=int(max_batch_slots or backend.max_batch),
            max_wait_ms=max_wait_ms,
            max_queue_depth=max_queue_depth,
            shed_policy=shed_policy,
            saturation_fn=self._pool_saturation,
            name="henn-serving",
        )

    def _pool_saturation(self) -> float:
        """Worker-pool busy fraction feeding the shed ladder (0 = none)."""
        return 0.0

    # -- admission ----------------------------------------------------------------

    def _request_slots(self, encrypted_images: np.ndarray, count: int | None) -> int:
        """Slots a request claims: declared, or discovered from the mock
        handles (real ciphertexts hide their occupancy — that is the
        point of HE — so multi-image clients must declare)."""
        if count is not None:
            return int(count)
        cell = encrypted_images.reshape(-1)[0] if encrypted_images.size else None
        values = getattr(cell, "values", None)
        if values is not None:
            return int(np.asarray(values).shape[0])
        return 1

    def _validate_request(self, encrypted_images: object, count: int) -> np.ndarray:
        """Admission gate: shape/level/scale checks, *before* batching.

        Raises :class:`~repro.serving.errors.RequestValidationError`
        (index-only messages — never slot values) so one malformed or
        drifted request cannot poison its batchmates mid-batch.
        """
        enc = np.asarray(encrypted_images, dtype=object)
        if enc.shape != self.engine.input_shape:
            raise RequestValidationError(
                f"request shape {enc.shape} != expected {self.engine.input_shape}"
            )
        if not 1 <= count <= self.scheduler.max_batch_slots:
            raise RequestValidationError(
                f"request claims {count} slots, capacity {self.scheduler.max_batch_slots}"
            )
        backend = self.client_backend
        for i, cell in enumerate(enc.reshape(-1)):
            try:
                level = int(backend.level_of(cell))
                scale = float(backend.scale_of(cell))
            except Exception as exc:
                raise RequestValidationError(f"handle {i} is not a ciphertext") from exc
            if self._expected_level is not None and level != self._expected_level:
                raise RequestValidationError(
                    f"handle {i} at level {level}, expected {self._expected_level}"
                )
            if scale != self._expected_scale:
                raise RequestValidationError(f"handle {i} off the base scale")
            values = getattr(cell, "values", None)
            if values is not None and np.asarray(values).shape[0] != count:
                raise RequestValidationError(
                    f"handle {i} holds a different slot count than declared"
                )
        return enc

    def submit(self, encrypted_images: object, count: int | None = None) -> Future:
        """Non-blocking admission: returns a future of the
        :class:`CloudResponse`.

        Admission failures (validation, overload, shutdown) resolve the
        future immediately with the sanitised error response — callers
        never need to distinguish sync from async rejection.

        When request tracing is on, a :class:`TraceContext` is minted
        here (the ``gateway`` stage covers admission validation) and
        rides the scheduler payload; the trace is finished from the
        future's done-callback, after the scheduler has attributed the
        queue-wait and compute stages.
        """
        log = get_logger()
        reg = get_registry()
        rid = next(self._request_ids)
        ctx = self.rtrace.mint(rid)
        t_adm = time.perf_counter()
        try:
            enc = np.asarray(encrypted_images, dtype=object)
            slots = self._request_slots(enc, count)
            log.event("henn.request.start", request=rid, handles=int(enc.size))
            validated = self._validate_request(enc, slots)
            if ctx is not None:
                ctx.add_stage("gateway", t_adm, time.perf_counter())
            future = self.scheduler.submit(
                (rid, validated, time.perf_counter(), ctx), slots, trace=ctx
            )
            if ctx is not None:
                future.add_done_callback(
                    lambda fut, c=ctx: self._finish_trace(c, fut)
                )
            return future
        except Exception as exc:
            error = _sanitize(exc)
            reg.counter("henn.requests", {"outcome": "rejected"}).inc()
            self.rtrace.finish(ctx, "rejected", error_code=error.code)
            log.event(
                "henn.request.rejected",
                request=rid,
                code=error.code,
                category=error.category,
                retryable=error.retryable,
            )
            future = Future()
            future.set_result(CloudResponse(ok=False, error=error))
            return future

    def _finish_trace(self, ctx: TraceContext, fut: Future) -> None:
        """Close one request's trace from its future's final state.

        Runs as a done-callback, i.e. *after* the scheduler recorded the
        queue-wait and compute stages — the last writer on every path
        (success, batch failure, drain timeout, shutdown).
        """
        try:
            if fut.cancelled():
                self.rtrace.finish(ctx, "error", error_code="CancelledError")
                return
            exc = fut.exception()
            if exc is not None:
                self.rtrace.finish(ctx, "error", error_code=_sanitize(exc).code)
                return
            response = fut.result()
            if getattr(response, "ok", False):
                self.rtrace.finish(ctx, "ok")
            else:
                error = getattr(response, "error", None)
                self.rtrace.finish(
                    ctx, "error", error_code=error.code if error else None
                )
        except Exception:  # telemetry must never fail a served request
            get_registry().counter("rtrace.finish_errors").inc()

    # -- request path --------------------------------------------------------------

    def try_classify(self, encrypted_images: np.ndarray, count: int | None = None) -> CloudResponse:
        """Blocking classify through the batching queue.

        Same contract as :meth:`CloudService.try_classify` — the
        coalescing is invisible apart from the throughput — plus the
        ``overload`` rejection when the queue is full.
        """
        future = self.submit(encrypted_images, count)
        try:
            return future.result(timeout=self.request_timeout_s)
        except Exception as exc:  # scheduler fault or timeout: still sanitised
            return CloudResponse(ok=False, error=_sanitize(exc))

    def classify_encrypted(self, encrypted_images: np.ndarray) -> np.ndarray:
        """Single-request evaluation, routed through the batch path.

        The gateway's engine only understands assembled batches, so the
        inherited direct call is re-pointed at the queue; a failure
        raises :class:`~repro.resilience.errors.ProtocolError` carrying
        the sanitised error.
        """
        response = self.try_classify(encrypted_images)
        if not response.ok:
            raise ProtocolError(response.error, attempts=1)
        return response.scores

    def _run_batch(self, payloads: list, slots: list[int]) -> list[CloudResponse]:
        """Scheduler callback: assemble -> run once -> split.

        Runs on the single scheduler worker thread, so the engine never
        sees concurrent evaluations.
        """
        log = get_logger()
        reg = get_registry()
        rids = [rid for rid, _, _, _ in payloads]
        requests = [enc for _, enc, _, _ in payloads]
        ctxs = [ctx for _, _, _, ctx in payloads]
        t0 = time.perf_counter()
        try:
            with batch_stage(ctxs, "pack"):
                assembled = self.engine.assemble_batch(requests, slots)
            score_handles = self.engine.run_encrypted(assembled)
            with batch_stage(ctxs, "split"):
                per_request = self.engine.split_scores(score_handles, slots)
        except Exception as exc:
            seconds = time.perf_counter() - t0
            reg.counter("resilience.service_errors").inc()
            error = _sanitize(exc)
            for rid in rids:
                reg.counter("henn.requests", {"outcome": "error"}).inc()
                log.event(
                    "henn.request.error",
                    request=rid,
                    seconds=seconds,
                    code=error.code,
                    category=error.category,
                    retryable=error.retryable,
                )
            with self._state_lock:
                self._requests_served += len(rids)
            return [CloudResponse(ok=False, error=error)] * len(rids)
        seconds = time.perf_counter() - t0
        responses = []
        for rid, scores in zip(rids, per_request):
            reg.counter("henn.requests", {"outcome": "ok"}).inc()
            reg.histogram("henn.request.seconds").observe(seconds)
            log.event(
                "henn.request.ok", request=rid, seconds=seconds, scores=int(len(scores))
            )
            responses.append(CloudResponse(ok=True, scores=scores))
        with self._state_lock:
            self._requests_served += len(rids)
            self._last_latency = seconds
        return responses

    # -- lifecycle -----------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Drain (default) or abort the queue, then stop scrapes.

        The drain is bounded: past *timeout* seconds still-pending
        futures fail with the retryable
        :class:`~repro.serving.errors.DrainTimeoutError` (see
        :meth:`BatchingScheduler.close`).
        """
        self.scheduler.close(drain=drain, timeout=timeout)
        self.stop_observability()

    def __enter__(self) -> "BatchedCloudService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _health(self) -> dict:
        status = super()._health()
        status["serving"] = self.scheduler.stats()
        reg = get_registry()
        # Padding-waste visibility: cumulative slot accounting of every
        # batch this process assembled (see BatchLayout.record).
        snap = reg.snapshot()
        status["packing"] = {
            "strategy": self.engine.backend.name,
            "batches": int(snap.get("serving.pack.batches", {}).get("value", 0)),
            "images": int(snap.get("serving.pack.images", {}).get("value", 0)),
            "slots": int(snap.get("serving.pack.slots", {}).get("value", 0)),
            "pad_slots": int(snap.get("serving.pack.pad_slots", {}).get("value", 0)),
        }
        return status


class _ClusterEngineFactory:
    """Rebuilds the gateway's engine inside a cluster worker child.

    Fork inheritance carries the backend (same key material the clients
    encrypted against); the plan is recompiled per worker — that compile
    *is* the warm-up the pool's ``warming`` state covers — and with a
    shared cache (rebuilt from shm refs by the pool) every tap encoding
    is a cache hit onto a zero-copy view of the parent's arena, so the
    whole pool shares one physical copy of the encoded model.
    """

    __slots__ = ("backend", "layers", "input_shape")

    def __init__(
        self, backend: HeBackend, layers: list[HeLayer], input_shape: tuple[int, int, int]
    ):
        self.backend = backend
        self.layers = layers
        self.input_shape = input_shape

    def __call__(self, cache: object | None = None) -> HeInferenceEngine:
        from repro.henn.plan import compile_plan

        plan = compile_plan(self.backend, self.layers, self.input_shape, cache=cache)
        return HeInferenceEngine(self.backend, self.layers, self.input_shape, plan=plan)


class ClusteredCloudService(BatchedCloudService):
    """Multi-worker serving gateway: the batching queue feeds a pool.

    Same trust boundary, admission checks and sanitised error vocabulary
    as :class:`BatchedCloudService`; the difference is what happens
    after a batch fires.  Instead of evaluating on the scheduler thread,
    :meth:`_run_batch` hands the batch to a
    :class:`~repro.serving.cluster.Dispatcher` over a
    :class:`~repro.serving.cluster.WorkerPool` of process-backed
    engines and returns a future — the scheduler's pipelined mode — so
    one gateway keeps all N workers busy at once.

    Robustness contract (the point of the cluster):

    * A worker killed mid-batch never drops a future: the dispatcher
      requeues the orphaned batch onto a survivor within a bounded
      retry budget, while the pool respawns and re-warms the dead
      worker in the background.
    * Whole-pool loss degrades to serial in-process evaluation on the
      gateway's own engine (disable with ``serial_fallback=False`` to
      get the retryable ``unavailable`` error instead).
    * Overload is shed in tiers (:class:`ShedPolicy`, on by default
      here) driven by queue depth *and* pool saturation.
    * ``/healthz`` reports pool size, per-worker state
      (warming/ready/dead/respawning), health and in-flight counts,
      plus the current shed tier.

    Parameters (beyond :class:`BatchedCloudService`)
    ------------------------------------------------
    workers:
        Pool size (process-backed engine workers).
    max_inflight:
        Batches one worker may hold at once (>1 hides pipe latency
        behind the current evaluation).
    respawn:
        Background-respawn dead workers (the whole-pool-loss tests
        disable this).
    serial_fallback:
        Degrade to in-process serial evaluation when the pool is lost.
    share_cache:
        Pack the compiled plan's encoded taps into shared memory so
        workers warm up against zero-copy views (falls back silently
        when shm is unavailable).
    fault_injector:
        Seeded :class:`~repro.resilience.FaultInjector` armed with
        ``kill_cluster_worker`` for failover tests.
    failover_policy:
        :class:`~repro.resilience.ResiliencePolicy` bounding the
        per-batch failover budget (``max_retries``) and its backoff.
    wait_ready:
        Block construction until all workers report ready (bounded by
        ``spawn_timeout_s``); with ``False`` traffic may arrive while
        workers warm — the dispatcher simply waits for the first ready
        worker.
    """

    def __init__(
        self,
        backend: HeBackend,
        layers: list[HeLayer],
        input_shape: tuple[int, int, int],
        *,
        workers: int = 3,
        max_inflight: int = 1,
        respawn: bool = True,
        serial_fallback: bool = True,
        share_cache: bool = True,
        fault_injector: object | None = None,
        failover_policy: object | None = None,
        wait_ready: bool = True,
        spawn_timeout_s: float = 120.0,
        heartbeat_interval_s: float = 0.25,
        shed_policy: ShedPolicy | None = None,
        **batched_kwargs: object,
    ):
        # Deferred import: repro.serving.cluster pulls in multiprocessing
        # machinery the serial protocol never needs.
        from repro.serving.cluster import Dispatcher, WorkerPool, share_plan_cache

        super().__init__(
            backend,
            layers,
            input_shape,
            shed_policy=shed_policy or ShedPolicy(),
            **batched_kwargs,  # type: ignore[arg-type]
        )
        arena = refs = None
        if share_cache and self.engine.plan is not None:
            arena, refs = share_plan_cache(self.engine.plan.cache)
        self._cache_arena = arena
        self._serial_lock = threading.Lock()
        self.pool = WorkerPool(
            _ClusterEngineFactory(self.engine.backend, layers, input_shape),
            workers,
            max_inflight=max_inflight,
            respawn=respawn,
            fault_injector=fault_injector,
            shared_cache_refs=refs,
            spawn_timeout_s=spawn_timeout_s,
            heartbeat_interval_s=heartbeat_interval_s,
            name="henn-cluster",
        ).start()
        self.dispatcher = Dispatcher(
            self.pool,
            policy=failover_policy,
            fallback=self._serial_fallback if serial_fallback else None,
        )
        if wait_ready:
            self.pool.wait_ready(timeout=spawn_timeout_s)

    def _pool_saturation(self) -> float:
        # During __init__ the base class builds the scheduler before the
        # pool exists; admission starts only after __init__ returns, but
        # guard anyway.
        pool = getattr(self, "pool", None)
        return pool.saturation() if pool is not None else 0.0

    def _serial_fallback(self, requests: list, slots: list[int]) -> list:
        """Whole-pool-loss degradation: evaluate on the gateway's engine.

        Serialised by a lock — failover threads may race here, and the
        engine is not re-entrant.  Slow, but alive: exactly the PR 5
        single-engine behaviour the cluster normally improves on.
        """
        with self._serial_lock:
            assembled = self.engine.assemble_batch(requests, slots)
            scores = self.engine.run_encrypted(assembled)
            return self.engine.split_scores(scores, slots)

    # -- request path --------------------------------------------------------------

    def _run_batch(self, payloads: list, slots: list[int]) -> Future:
        """Scheduler callback, pipelined: dispatch and return the future.

        The scheduler registers a completion callback on the returned
        future and immediately fires the next batch — this is what
        spreads consecutive batches across the pool.
        """
        rids = [rid for rid, _, _, _ in payloads]
        requests = [enc for _, enc, _, _ in payloads]
        ctxs = [ctx for _, _, _, ctx in payloads]
        t0 = time.perf_counter()
        out: Future = Future()
        inner = self.dispatcher.dispatch(requests, slots, traces=ctxs)
        inner.add_done_callback(
            lambda fut: self._finish_cluster_batch(fut, rids, t0, out)
        )
        return out

    def _finish_cluster_batch(
        self, fut: Future, rids: list[int], t0: float, out: Future
    ) -> None:
        """Turn one dispatched batch's outcome into per-request responses."""
        log = get_logger()
        reg = get_registry()
        seconds = time.perf_counter() - t0
        error: ServiceError | None = None
        if fut.cancelled():
            error = _sanitize(SchedulerClosedError("dispatch cancelled during shutdown"))
        elif fut.exception() is not None:
            reg.counter("resilience.service_errors").inc()
            error = _sanitize(fut.exception())
        if error is not None:
            for rid in rids:
                reg.counter("henn.requests", {"outcome": "error"}).inc()
                log.event(
                    "henn.request.error",
                    request=rid,
                    seconds=seconds,
                    code=error.code,
                    category=error.category,
                    retryable=error.retryable,
                )
            responses = [CloudResponse(ok=False, error=error)] * len(rids)
        else:
            responses = []
            for rid, scores in zip(rids, fut.result()):
                reg.counter("henn.requests", {"outcome": "ok"}).inc()
                reg.histogram("henn.request.seconds").observe(seconds)
                log.event(
                    "henn.request.ok", request=rid, seconds=seconds, scores=int(len(scores))
                )
                responses.append(CloudResponse(ok=True, scores=scores))
        with self._state_lock:
            self._requests_served += len(rids)
            if error is None:
                self._last_latency = seconds
        try:
            out.set_result(responses)
        except InvalidStateError:
            pass  # the drain timeout already failed this batch's futures

    # -- lifecycle / health ----------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Drain the queue through the pool, then tear the pool down."""
        super().close(drain=drain, timeout=timeout)
        self.pool.close()
        if self._cache_arena is not None:
            self._cache_arena.close()

    def _health(self) -> dict:
        status = super()._health()
        tier_value = get_registry().gauge("serving.shed.tier").value
        status["cluster"] = {
            **self.pool.stats(),
            "degraded_serial": self.dispatcher.degraded,
            "shed_tier": (
                "accept" if math.isnan(tier_value) else SHED_TIERS[int(tier_value)]
            ),
        }
        return status
