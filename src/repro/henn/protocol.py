"""The Fig. 1 protocol: blind, two-party, non-interactive classification.

* The **client** owns the secret key: it encrypts its images, ships the
  ciphertexts (and evaluation keys) to the cloud, and decrypts the
  returned encrypted scores.
* The **cloud** holds the (plaintext) model and only ever touches
  ciphertexts: it cannot read the inputs, the features, or the scores.

These classes are a thin choreography over
:class:`~repro.henn.inference.HeInferenceEngine`; they exist to make
the trust boundary explicit (and testable: the cloud object never
receives the secret key).

Fault paths respect the same boundary.  A failing evaluation must not
become a side channel, so :meth:`CloudService.try_classify` answers
with a :class:`ServiceError` built from a **fixed vocabulary** — the
exception *class name* and a canned detail string, never the exception
arguments (which could embed slot values or scales derived from the
client's data).  The client drives bounded retry on top
(:meth:`Client.classify_with_retry`), re-encrypting fresh request
ciphertexts each attempt.

Serving telemetry follows the same rule: every ``try_classify`` call
emits ``henn.request.*`` lifecycle events through
:mod:`repro.obs.logs` (silent until a sink is configured) carrying only
durations, handle counts and sanitised error codes, and
:meth:`CloudService.start_observability` optionally exposes the process
metrics on ``/metrics`` + ``/healthz`` scrape endpoints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.henn.backend import HeBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeLayer
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.server import ObservabilityServer
from repro.resilience.errors import (
    ChannelIntegrityError,
    ExecutorExhaustedError,
    ItemTimeoutError,
    ProtocolError,
)

__all__ = ["Client", "CloudService", "ServiceError", "CloudResponse"]


@dataclass(frozen=True)
class ServiceError:
    """Sanitised failure report crossing the cloud -> client boundary.

    Attributes
    ----------
    code:
        The exception class name (type only — no arguments).
    category:
        ``"integrity"`` (residue channels unrecoverable), ``"compute"``
        (executors exhausted / timed out), ``"state"`` (ciphertext
        bookkeeping rejected the request), or ``"internal"``.
    retryable:
        Whether the client may usefully resubmit the request.
    detail:
        One of a fixed set of canned sentences; deliberately never
        interpolates exception arguments, so no plaintext-derived value
        can leak through the error path.
    """

    code: str
    category: str
    retryable: bool
    detail: str


@dataclass(frozen=True)
class CloudResponse:
    """What the cloud returns: encrypted scores, or a sanitised error."""

    ok: bool
    scores: np.ndarray | None = None
    error: ServiceError | None = None


def _sanitize(exc: BaseException) -> ServiceError:
    """Map an internal exception onto the fixed error vocabulary."""
    code = type(exc).__name__
    if isinstance(exc, ChannelIntegrityError):
        return ServiceError(
            code, "integrity", True, "residue channel check failed beyond recovery"
        )
    if isinstance(exc, (ExecutorExhaustedError, ItemTimeoutError)):
        return ServiceError(code, "compute", True, "evaluation resources exhausted")
    if isinstance(exc, ValueError):
        return ServiceError(
            code, "state", True, "ciphertext bookkeeping rejected the request"
        )
    return ServiceError(code, "internal", False, "internal evaluation failure")


class Client:
    """Data owner: encrypts queries and decrypts responses."""

    def __init__(self, backend: HeBackend, input_shape: tuple[int, int, int]):
        self.backend = backend
        self.input_shape = input_shape
        # Engine used only for its packing logic; layers stay on the cloud.
        self._packer = HeInferenceEngine(backend, [], input_shape)

    def encrypt_request(self, images: np.ndarray) -> np.ndarray:
        """Package a batch of images as ciphertext handles."""
        return self._packer.encrypt_images(images)

    def decrypt_response(self, encrypted_scores: np.ndarray, batch: int) -> np.ndarray:
        """Recover ``(batch, classes)`` logits from encrypted scores."""
        return np.stack(
            [self.backend.decrypt(h, count=batch) for h in encrypted_scores], axis=1
        )

    def classify_with_retry(
        self, cloud: "CloudService", images: np.ndarray, max_attempts: int = 3
    ) -> np.ndarray:
        """Full round trip with bounded client-side retry.

        Each attempt encrypts a *fresh* request (a transient fault may
        have corrupted the previous ciphertexts in flight).  A
        non-retryable :class:`ServiceError`, or ``max_attempts``
        retryable ones, raise
        :class:`~repro.resilience.errors.ProtocolError` carrying the
        sanitised error only.
        """
        images = np.asarray(images, dtype=np.float64)
        error: ServiceError | None = None
        for attempt in range(1, max_attempts + 1):
            if attempt > 1:
                get_registry().counter("resilience.protocol_retries").inc()
            response = cloud.try_classify(self.encrypt_request(images))
            if response.ok:
                return self.decrypt_response(response.scores, images.shape[0])
            error = response.error
            if not error.retryable:
                raise ProtocolError(error, attempts=attempt)
        raise ProtocolError(error, attempts=max_attempts)


class CloudService:
    """Untrusted evaluator: holds the model, never the secret key."""

    def __init__(self, backend: HeBackend, layers: list[HeLayer], input_shape: tuple[int, int, int]):
        self.engine = HeInferenceEngine(backend, layers, input_shape)
        self._obs_server: ObservabilityServer | None = None
        self._request_seq = 0

    def classify_encrypted(self, encrypted_images: np.ndarray) -> np.ndarray:
        """Run the CNN homomorphically; inputs and outputs stay encrypted."""
        return self.engine.run_encrypted(encrypted_images)

    def try_classify(self, encrypted_images: np.ndarray) -> CloudResponse:
        """Like :meth:`classify_encrypted`, but failures come back as a
        structured :class:`CloudResponse` instead of a raw exception.

        Each call is one request-lifecycle: ``henn.request.start`` then
        ``henn.request.ok`` / ``henn.request.error`` JSON log events
        (with handle counts, latency and the sanitised error code —
        never exception arguments), plus ``henn.requests`` counters
        labelled by outcome.
        """
        log = get_logger()
        reg = get_registry()
        self._request_seq += 1
        rid = self._request_seq
        handles = int(np.asarray(encrypted_images).size)
        log.event("henn.request.start", request=rid, handles=handles)
        t0 = time.perf_counter()
        try:
            scores = self.classify_encrypted(encrypted_images)
        except Exception as exc:
            reg.counter("resilience.service_errors").inc()
            error = _sanitize(exc)
            reg.counter("henn.requests", {"outcome": "error"}).inc()
            log.event(
                "henn.request.error",
                request=rid,
                seconds=time.perf_counter() - t0,
                code=error.code,
                category=error.category,
                retryable=error.retryable,
            )
            return CloudResponse(ok=False, error=error)
        seconds = time.perf_counter() - t0
        reg.counter("henn.requests", {"outcome": "ok"}).inc()
        reg.histogram("henn.request.seconds").observe(seconds)
        log.event(
            "henn.request.ok", request=rid, seconds=seconds, scores=int(len(scores))
        )
        return CloudResponse(ok=True, scores=scores)

    # -- scrape endpoints --------------------------------------------------------

    def start_observability(
        self, port: int = 0, host: str = "127.0.0.1"
    ) -> ObservabilityServer:
        """Expose ``/metrics`` + ``/healthz`` for this service (opt-in).

        ``/healthz`` reports ready=true once at least one request has
        been served, along with request counts and the last latency.
        Returns the running :class:`ObservabilityServer`; read its
        ``port``/``url`` for the bound address (``port=0`` = ephemeral).
        Idempotent while running.
        """
        if self._obs_server is not None and self._obs_server.running:
            return self._obs_server
        self._obs_server = ObservabilityServer(
            port=port, host=host, health_fn=self._health
        ).start()
        return self._obs_server

    def stop_observability(self) -> None:
        """Shut down the scrape endpoints, if running."""
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None

    def _health(self) -> dict:
        return {
            "ok": True,
            "ready": self._request_seq > 0,
            "requests": self._request_seq,
            "backend": self.engine.backend.name,
            "last_latency_seconds": self.last_latency,
        }

    @property
    def last_latency(self) -> float:
        """Seconds spent on the most recent encrypted classification."""
        return self.engine.trace.total()
