"""CNN1 / CNN2 builders (paper Figs. 3-4) and their reduced presets.

* **CNN1** (Fig. 3) — the Lo-La-variant: one 5x5 stride-2 convolution
  (5 maps, padding 1 -> 13x13, i.e. CryptoNets' 845 features), an
  activation, Dense(845 -> 100), an activation, Dense(100 -> 10).
* **CNN2** (Fig. 4) — the CryptoNets-based model: two 5x5 stride-2
  convolutions with a BatchNorm before each activation, then
  Dense -> BN -> activation -> Dense.  With degree-3 activations its
  multiplicative depth is 1+3+1+3+1+3+1 = 13 = Table II's ``L``.

Reduced presets (``reduced=True``) shrink spatial size/width so the HE
benchmarks complete in CI time; the architecture *shape* (layer kinds,
activation placement, depth profile) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.nn.layers.conv import conv_output_shape
from repro.utils.rng import derive_rng

__all__ = ["build_cnn1", "build_cnn2", "ascii_diagram", "input_shape_for"]


_VARIANTS = ("tiny", "reduced", "full")


def _check_variant(variant: str) -> str:
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}, got {variant!r}")
    return variant


def input_shape_for(variant: str = "full") -> tuple[int, int, int]:
    """Model input shape ``(C, H, W)`` per size variant."""
    _check_variant(variant)
    return {"tiny": (1, 12, 12), "reduced": (1, 14, 14), "full": (1, 28, 28)}[variant]


def build_cnn1(
    variant: str = "full", seed: int | np.random.Generator | None = 0
) -> Sequential:
    """CNN1: single conv + two dense layers, activations after conv and
    the first dense layer (in contrast to Lo-La, which activates only
    once — §V.D).  The ``full`` variant matches Fig. 3 / CryptoNets
    geometry (5 maps of 13x13 = 845 features, 100 hidden units)."""
    rng = derive_rng(_check_variant(variant) and seed)
    _, h, w = input_shape_for(variant)
    k = 3 if variant == "tiny" else 5
    maps = {"tiny": 2, "reduced": 3, "full": 5}[variant]
    hidden = {"tiny": 16, "reduced": 32, "full": 100}[variant]
    oh, ow = conv_output_shape(h, w, k, k, 2, 1)
    return Sequential(
        Conv2d(1, maps, k, stride=2, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Linear(maps * oh * ow, hidden, rng=rng),
        ReLU(),
        Linear(hidden, 10, rng=rng),
    )


def build_cnn2(
    variant: str = "full", seed: int | np.random.Generator | None = 0
) -> Sequential:
    """CNN2: CryptoNets-based, two convs, BatchNorm before each activation
    (Fig. 4).  With degree-3 SLAFs its depth is 13 — Table II's L."""
    rng = derive_rng(_check_variant(variant) and seed)
    _, h, w = input_shape_for(variant)
    k1 = 3 if variant == "tiny" else 5
    maps1 = {"tiny": 2, "reduced": 3, "full": 5}[variant]
    maps2 = {"tiny": 3, "reduced": 5, "full": 10}[variant]
    hidden = {"tiny": 8, "reduced": 32, "full": 64}[variant]
    oh1, ow1 = conv_output_shape(h, w, k1, k1, 2, 1)
    k2 = 3 if variant != "full" else 5
    oh2, ow2 = conv_output_shape(oh1, ow1, k2, k2, 2, 1)
    return Sequential(
        Conv2d(1, maps1, k1, stride=2, padding=1, rng=rng),
        BatchNorm2d(maps1),
        ReLU(),
        Conv2d(maps1, maps2, k2, stride=2, padding=1, rng=rng),
        BatchNorm2d(maps2),
        ReLU(),
        Flatten(),
        Linear(maps2 * oh2 * ow2, hidden, rng=rng),
        BatchNorm2d(hidden),
        ReLU(),
        Linear(hidden, 10, rng=rng),
    )


_GLYPH = {
    "Conv2d": "▦ conv",
    "BatchNorm2d": "≋ batchnorm",
    "ReLU": "◯ ReLU",
    "SLAF": "◉ SLAF poly",
    "Square": "◉ square",
    "Flatten": "─ flatten",
    "Linear": "█ dense",
    "AvgPool2d": "▽ avgpool",
}


def ascii_diagram(model: Sequential, title: str = "", rns_channels: int | None = None) -> str:
    """Render the architecture as the paper's block diagrams (Figs. 3-5).

    With ``rns_channels`` set, the convolutional stage is drawn as the
    Fig. 5 RNS pipeline: decompose -> k parallel conv channels ->
    CRT recompose.
    """
    lines = [f"== {title or 'architecture'} =="]
    first_conv_done = False
    for layer in model:
        name = type(layer).__name__
        glyph = _GLYPH.get(name, f"? {name}")
        detail = repr(layer)
        if name == "Conv2d" and rns_channels and not first_conv_done:
            lines.append("  input ──► RNS decompose ─┬─► residue ch 1 ─ conv ─┐")
            for c in range(2, rns_channels + 1):
                lines.append(
                    f"                            ├─► residue ch {c} ─ conv ─┤"
                )
            lines.append("                            └────────► CRT recompose ─► ")
            lines.append(f"        [{detail} applied per-channel, in parallel]")
            first_conv_done = True
        else:
            lines.append(f"  {glyph:<16} {detail}")
    return "\n".join(lines)
