"""Typed failures of the serving gateway.

Like :mod:`repro.resilience.errors`, every condition a caller can react
to gets its own class, so the protocol layer can map failures onto the
fixed :class:`~repro.henn.protocol.ServiceError` vocabulary without
parsing messages (and without leaking request data into error strings).
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "ServiceOverloadedError",
    "SchedulerClosedError",
    "RequestValidationError",
]


class ServingError(RuntimeError):
    """Base class of all serving-gateway failures."""


class ServiceOverloadedError(ServingError):
    """The admission queue is at capacity; the request was not enqueued.

    This is the *backpressure* signal: it is retryable by design —
    :meth:`repro.henn.protocol.Client.classify_with_retry` backs off and
    resubmits, and a load balancer can route elsewhere.
    """


class SchedulerClosedError(ServingError):
    """The scheduler is shut down; no further requests are accepted.

    Pending futures failed by a non-draining :meth:`close` also carry
    this error, so a waiting client always gets an answer — the
    scheduler never drops a future silently.
    """


class RequestValidationError(ServingError):
    """A request was rejected at admission (shape / level / scale).

    Raised *before* the request joins a batch: a poisoned request must
    fail alone, never its batchmates.  Not retryable — resubmitting the
    same malformed ciphertexts cannot succeed.
    """
