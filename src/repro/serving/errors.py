"""Typed failures of the serving gateway.

Like :mod:`repro.resilience.errors`, every condition a caller can react
to gets its own class, so the protocol layer can map failures onto the
fixed :class:`~repro.henn.protocol.ServiceError` vocabulary without
parsing messages (and without leaking request data into error strings).
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "ServiceOverloadedError",
    "ServiceShedError",
    "SchedulerClosedError",
    "DrainTimeoutError",
    "RequestValidationError",
    "WorkerLostError",
    "ClusterUnavailableError",
    "PackingError",
    "PackingNestingError",
    "LaneSliceError",
]


class ServingError(RuntimeError):
    """Base class of all serving-gateway failures."""


class ServiceOverloadedError(ServingError):
    """The admission queue is at capacity; the request was not enqueued.

    This is the *backpressure* signal: it is retryable by design —
    :meth:`repro.henn.protocol.Client.classify_with_retry` backs off and
    resubmits, and a load balancer can route elsewhere.
    """


class SchedulerClosedError(ServingError):
    """The scheduler is shut down; no further requests are accepted.

    Pending futures failed by a non-draining :meth:`close` also carry
    this error, so a waiting client always gets an answer — the
    scheduler never drops a future silently.
    """


class ServiceShedError(ServingError):
    """The hard shedding tier rejected the request outright.

    Unlike :class:`ServiceOverloadedError` this is the *load-shedding
    endgame*: the queue and the worker pool are both saturated beyond
    the retryable tier, so an immediate resubmit is guaranteed to be
    wasted work.  Deliberately **not** retryable — clients should route
    elsewhere or surface the failure, not pile on.
    """


class DrainTimeoutError(ServingError):
    """Shutdown drain gave up before this request could be evaluated.

    Raised into every future still pending when
    :meth:`~repro.serving.scheduler.BatchingScheduler.close` exhausts
    its drain ``timeout``.  Retryable by design: the request itself was
    fine, the service instance simply went away — resubmitting against
    a healthy replica succeeds.
    """


class RequestValidationError(ServingError):
    """A request was rejected at admission (shape / level / scale).

    Raised *before* the request joins a batch: a poisoned request must
    fail alone, never its batchmates.  Not retryable — resubmitting the
    same malformed ciphertexts cannot succeed.
    """


class WorkerLostError(ServingError):
    """An engine worker died (or its pipe broke) while holding a batch.

    The dispatcher raises this into a batch's future only after the
    failover retry budget is spent — a single worker death is normally
    absorbed by requeueing onto a survivor.  Retryable: the request
    ciphertexts were never the problem.
    """


class ClusterUnavailableError(ServingError):
    """No live worker remains and serial degradation is disabled.

    The whole-pool-loss terminal state: every worker is dead, respawn
    is not succeeding, and the dispatcher has no in-process fallback to
    degrade to.  Retryable — a supervisor may yet restore the pool.
    """


class PackingError(ServingError):
    """Base class of slot-packing failures (layout / wrapping misuse)."""


class PackingNestingError(PackingError, TypeError):
    """A packing wrapper was asked to wrap an already-wrapped backend.

    Stacking :class:`~repro.serving.packing.SlotPackedBackend` or
    :class:`~repro.serving.packing.MemberwiseBackend` would double-pack
    lanes and silently corrupt slot accounting, so
    :func:`~repro.serving.packing.serving_backend_for` refuses outright.
    Subclasses ``TypeError``: nesting is a programming error, not a
    runtime condition.
    """


class LaneSliceError(PackingError, ValueError):
    """``slice_slots`` asked for a lane the packed layout does not hold.

    Raised instead of a bare ``IndexError`` when a slice request is out
    of range or does not land on a packed-member boundary, so gateway
    code can map it onto the serving error vocabulary.  Subclasses
    ``ValueError`` to stay compatible with boundary checks that predate
    the typed hierarchy.
    """
