"""Tiered overload shedding: accept -> defer -> reject -> shed.

A single hard queue bound (PR 5's ``max_queue_depth``) answers every
overload the same way; under a sustained spike that is either too eager
(rejecting load a draining queue could still absorb) or too polite
(accepting requests that will time out anyway while the pool is
saturated).  :class:`ShedPolicy` grades the response into four tiers,
driven by a single *load index* combining queue fill and worker-pool
saturation:

* ``accept`` — normal admission.
* ``defer`` — admit, but stamp the request with a shedding deadline:
  if no batch picks it up within ``defer_deadline_s`` the scheduler
  fails it with the retryable overload error instead of evaluating a
  request whose client has likely given up.
* ``reject`` — retryable :class:`~repro.serving.errors.ServiceOverloadedError`
  at admission (the PR 5 backpressure signal, now fired *before* the
  queue is completely full).
* ``shed`` — non-retryable :class:`~repro.serving.errors.ServiceShedError`:
  queue and pool are saturated beyond recovery-by-retry, so clients
  must route elsewhere rather than pile on.

Telemetry: the ``serving.shed.tier`` gauge tracks the tier of the most
recent admission decision (0–3), and ``serving.shed.deferred`` /
``serving.shed.rejected`` / ``serving.shed.hard`` /
``serving.shed.expired`` counters record every non-accept outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShedPolicy", "SHED_TIERS"]

#: Tier names in escalation order; index = the ``serving.shed.tier`` gauge value.
SHED_TIERS = ("accept", "defer", "reject", "shed")


@dataclass(frozen=True)
class ShedPolicy:
    """Thresholds of the tiered shedding ladder.

    The load index is ``queue_fill + saturation_weight * saturation``
    where ``queue_fill`` is the admission queue's fill fraction and
    ``saturation`` is the worker pool's busy fraction (0 when unknown).
    A policy therefore starts shedding *earlier* when the pool is
    already saturated — queue depth alone lags the actual overload.

    Attributes
    ----------
    defer_fill:
        Load index at which admissions are deferred-with-deadline.
    reject_fill:
        Load index at which admissions get the retryable overload error.
    shed_fill:
        Load index at which admissions are hard-shed (non-retryable).
    saturation_weight:
        How strongly pool saturation advances the ladder (0 disables).
    defer_deadline_s:
        Extra queueing a deferred request tolerates before the
        scheduler expires it with the retryable overload error.
    """

    defer_fill: float = 0.5
    reject_fill: float = 0.8
    shed_fill: float = 1.0
    saturation_weight: float = 0.5
    defer_deadline_s: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.defer_fill <= self.reject_fill <= self.shed_fill:
            raise ValueError("need 0 <= defer_fill <= reject_fill <= shed_fill")
        if self.saturation_weight < 0:
            raise ValueError("saturation_weight must be >= 0")
        if self.defer_deadline_s <= 0:
            raise ValueError("defer_deadline_s must be positive")

    def load_index(self, queue_depth: int, max_depth: int, saturation: float) -> float:
        """The scalar the tier thresholds are compared against."""
        fill = queue_depth / max_depth if max_depth > 0 else 1.0
        return fill + self.saturation_weight * max(0.0, min(1.0, saturation))

    def tier(self, queue_depth: int, max_depth: int, saturation: float = 0.0) -> str:
        """Tier name for one admission decision (see :data:`SHED_TIERS`)."""
        load = self.load_index(queue_depth, max_depth, saturation)
        if load >= self.shed_fill:
            return "shed"
        if load >= self.reject_fill:
            return "reject"
        if load >= self.defer_fill:
            return "defer"
        return "accept"
