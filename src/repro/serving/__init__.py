"""Dynamic request batching and multi-worker serving for the HE path.

``repro.serving`` turns the one-request-per-call
:class:`~repro.henn.protocol.CloudService` into a throughput-oriented
gateway: independent client requests are coalesced into slot-packed
batches (:mod:`repro.serving.packing`), fired by a fill-or-deadline
scheduler with bounded-queue backpressure and tiered overload shedding
(:mod:`repro.serving.scheduler`, :mod:`repro.serving.shedding`), routed
across a fault-tolerant pool of process-backed engine workers with
health-weighted dispatch and failover (:mod:`repro.serving.cluster`),
and observed end to end through :mod:`repro.obs` (``serving.*`` /
``cluster.*`` metrics, Prometheus export, ``/healthz``).

The protocol-level entry points are
:class:`repro.henn.protocol.BatchedCloudService` (single engine) and
:class:`repro.henn.protocol.ClusteredCloudService` (worker pool); this
package holds the reusable machinery beneath them.
"""

from repro.serving.cluster import ClusterWorker, Dispatcher, WorkerPool
from repro.serving.errors import (
    ClusterUnavailableError,
    DrainTimeoutError,
    LaneSliceError,
    PackingError,
    PackingNestingError,
    RequestValidationError,
    SchedulerClosedError,
    ServiceOverloadedError,
    ServiceShedError,
    ServingError,
    WorkerLostError,
)
from repro.serving.scheduler import BatchingScheduler
from repro.serving.shedding import SHED_TIERS, ShedPolicy
from repro.serving.packing import (
    LaneHandle,
    MemberwiseBackend,
    PackedHandle,
    SlotPackedBackend,
    serving_backend_for,
)

__all__ = [
    "BatchingScheduler",
    "ClusterWorker",
    "Dispatcher",
    "WorkerPool",
    "LaneHandle",
    "MemberwiseBackend",
    "PackedHandle",
    "SlotPackedBackend",
    "serving_backend_for",
    "PackingError",
    "PackingNestingError",
    "LaneSliceError",
    "ShedPolicy",
    "SHED_TIERS",
    "ServingError",
    "ServiceOverloadedError",
    "ServiceShedError",
    "SchedulerClosedError",
    "DrainTimeoutError",
    "RequestValidationError",
    "WorkerLostError",
    "ClusterUnavailableError",
]
