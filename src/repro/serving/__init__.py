"""Dynamic request batching for the HE serving path.

``repro.serving`` turns the one-request-per-call
:class:`~repro.henn.protocol.CloudService` into a throughput-oriented
gateway: independent client requests are coalesced into slot-packed
batches (:mod:`repro.serving.packing`), fired by a fill-or-deadline
scheduler with bounded-queue backpressure
(:mod:`repro.serving.scheduler`), and observed end to end through
:mod:`repro.obs` (``serving.*`` gauges and histograms, Prometheus
export, ``/healthz``).

The protocol-level entry point is
:class:`repro.henn.protocol.BatchedCloudService`; this package holds
the reusable machinery beneath it.
"""

from repro.serving.errors import (
    RequestValidationError,
    SchedulerClosedError,
    ServiceOverloadedError,
    ServingError,
)
from repro.serving.scheduler import BatchingScheduler
from repro.serving.packing import MemberwiseBackend, PackedHandle, serving_backend_for

__all__ = [
    "BatchingScheduler",
    "MemberwiseBackend",
    "PackedHandle",
    "serving_backend_for",
    "ServingError",
    "ServiceOverloadedError",
    "SchedulerClosedError",
    "RequestValidationError",
]
