"""Slot-packed coalescing scheduler: Triton/TF-Serving-style batching.

A CKKS classification costs nearly the same wall-clock whether one or
all of the ciphertext's SIMD slots are filled, so serving throughput is
won by *coalescing*: independent requests claim slots of one batch and
the engine runs once.  :class:`BatchingScheduler` implements the
generic half of that bargain, with no knowledge of HE:

* ``submit(payload, slots)`` enqueues a request and returns a
  :class:`concurrent.futures.Future`; admission is bounded by
  ``max_queue_depth`` and over-capacity submits raise the retryable
  :class:`~repro.serving.errors.ServiceOverloadedError` (backpressure,
  never silent queueing without bound).  An optional
  :class:`~repro.serving.shedding.ShedPolicy` grades that response into
  the accept / defer / reject / shed ladder, fed by queue fill and a
  pool-saturation callback.
* A single worker thread fires a batch when either the pending prefix
  fills ``max_batch_slots`` (or the next request no longer fits), or
  the *oldest* pending request has waited ``max_wait_ms`` — the classic
  fill-or-deadline policy.  While the worker is busy evaluating one
  batch, new arrivals accumulate, so the batch size adapts to offered
  load by itself.
* ``process_batch(payloads, slots)`` — the owner's callback — returns
  one result per request (an exception instance fails just that
  request); the scheduler distributes results to the futures.  When the
  callback instead returns a :class:`~concurrent.futures.Future` of the
  results (a dispatcher shipping the batch to a worker pool), the
  scheduler registers a completion callback and immediately moves on to
  the next batch — that *pipelined* mode is what lets one scheduler
  keep N cluster workers busy at once.  Every admitted future is
  resolved on every path, including worker faults and shutdown: the
  scheduler never deadlocks a waiting client.

Telemetry (:mod:`repro.obs.metrics`): ``serving.queue.depth``,
``serving.slot_utilization`` and ``serving.shed.tier`` gauges,
``serving.batch.size`` / ``serving.batch.slots`` /
``serving.batch.wait_seconds`` histograms, the outcome-labelled
``serving.batch.compute_seconds`` histogram (failed-batch latency in
its own series), the ``serving.requests`` outcome-labelled counter and
the ``serving.shed.*`` shedding counters, all exported through the
existing Prometheus path.  Per-request attribution (queue wait and
compute stages of one particular request) flows through the optional
``trace`` context accepted by :meth:`BatchingScheduler.submit`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.obs.metrics import get_registry
from repro.serving.errors import (
    DrainTimeoutError,
    SchedulerClosedError,
    ServiceOverloadedError,
    ServiceShedError,
)
from repro.serving.shedding import SHED_TIERS, ShedPolicy

__all__ = ["BatchingScheduler"]


@dataclass
class _Pending:
    """One admitted request waiting for a batch slot."""

    payload: Any
    slots: int
    future: Future
    enqueued_at: float
    #: Shedding deadline of a tier-``defer`` admission (None = firm).
    shed_deadline: float | None = None
    #: Optional request-trace context (duck-typed: anything with
    #: ``add_stage(name, start, end, **tags)``); the scheduler records
    #: per-request ``queue_wait`` and ``compute`` stages into it.
    trace: Any | None = None
    #: ``perf_counter`` at admission, clocking the queue-wait stage.
    enqueued_pc: float = 0.0


def _resolve(future: Future, result: Any = None, error: BaseException | None = None) -> None:
    """Resolve a future exactly once; later resolutions are no-ops.

    Pipelined dispatch and shutdown race by design (a drain timeout may
    fail a future the dispatcher resolves a moment later); losing that
    race must never crash either side.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class BatchingScheduler:
    """Bounded-queue request coalescer with a fill-or-deadline worker.

    Parameters
    ----------
    process_batch:
        ``(payloads, slots) -> results`` callback evaluating one fired
        batch; must return one result per payload, in order.  A result
        that is an exception instance fails only its own request; a
        raised exception fails the whole batch (every future gets it).
        Returning a :class:`~concurrent.futures.Future` of the results
        switches that batch to pipelined mode: the scheduler fires the
        next batch without waiting, and distributes this batch's results
        when the future completes.
    max_batch_slots:
        Slot capacity of one batch (for the HE gateway: the backend's
        SIMD slot count).  A batch fires early once its pending prefix
        can grow no further.
    max_wait_ms:
        Deadline of the *oldest* pending request: a partial batch fires
        at most this long after its first request was admitted.  ``0``
        fires immediately with whatever accumulated while the worker
        was busy (pure adaptive batching, minimal added latency).
    max_queue_depth:
        Admission bound (in requests).  Submits beyond it raise
        :class:`ServiceOverloadedError` — backpressure the client can
        retry on.
    shed_policy:
        Optional :class:`~repro.serving.shedding.ShedPolicy` grading
        admission into the accept/defer/reject/shed tiers.  Without
        one, only the hard ``max_queue_depth`` bound applies (the PR 5
        behaviour).
    saturation_fn:
        Zero-argument callable reporting the downstream worker pool's
        busy fraction in ``[0, 1]`` (advances the shedding ladder);
        ``None`` means queue fill alone drives the tiers.
    name:
        Thread / telemetry name prefix.
    start:
        Start the worker thread immediately (tests may defer).
    """

    def __init__(
        self,
        process_batch: Callable[[list[Any], list[int]], Sequence[Any]],
        *,
        max_batch_slots: int,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 64,
        shed_policy: ShedPolicy | None = None,
        saturation_fn: Callable[[], float] | None = None,
        name: str = "serving",
        start: bool = True,
    ):
        if max_batch_slots < 1:
            raise ValueError("max_batch_slots must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self._process_batch = process_batch
        self.max_batch_slots = int(max_batch_slots)
        self.max_wait = float(max_wait_ms) / 1e3
        self.max_queue_depth = int(max_queue_depth)
        self.shed_policy = shed_policy
        self.saturation_fn = saturation_fn
        self.name = name
        self._queue: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._batches = 0
        self._completed = 0
        self._rejected = 0
        self._shed_expired = 0
        self._last_utilization = 0.0
        #: Batches handed to a pipelined dispatcher, not yet distributed.
        self._inflight: dict[Future, list[_Pending]] = {}
        #: Batch currently inside a synchronous process_batch call.
        self._firing: list[_Pending] = []
        self._worker = threading.Thread(
            target=self._loop, name=f"{name}-batcher", daemon=True
        )
        if start:
            self._worker.start()

    # -- admission ---------------------------------------------------------------

    def _saturation(self) -> float:
        if self.saturation_fn is None:
            return 0.0
        try:
            return float(self.saturation_fn())
        except Exception:  # a sick pool must not break admission
            return 1.0

    def _admission_tier(self, depth: int) -> str:
        """Shedding tier of one admission attempt (under the lock)."""
        if self.shed_policy is None:
            return "reject" if depth >= self.max_queue_depth else "accept"
        if depth >= self.max_queue_depth:
            return "shed"
        return self.shed_policy.tier(depth, self.max_queue_depth, self._saturation())

    def submit(self, payload: Any, slots: int = 1, trace: Any | None = None) -> Future:
        """Enqueue one request claiming *slots*; returns its future.

        *trace* optionally attaches a request-trace context (an object
        with ``add_stage(name, start, end, **tags)``, e.g. a
        :class:`~repro.obs.rtrace.TraceContext`): the scheduler then
        attributes this request's queue wait and batch compute time to
        it.  ``None`` (the default) keeps the hot path trace-free.

        Raises
        ------
        ValueError
            *slots* is not in ``1..max_batch_slots`` (can never fit).
        SchedulerClosedError
            The scheduler is shut down.
        ServiceOverloadedError
            The queue is at capacity, or the shed policy's ``reject``
            tier fired (backpressure; retry with backoff).
        ServiceShedError
            The shed policy's hard tier fired — do not retry here.
        """
        slots = int(slots)
        if not 1 <= slots <= self.max_batch_slots:
            raise ValueError(
                f"request claims {slots} slots, capacity is {self.max_batch_slots}"
            )
        reg = get_registry()
        with self._cond:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            tier = self._admission_tier(len(self._queue))
            reg.gauge("serving.shed.tier").set(SHED_TIERS.index(tier))
            if tier in ("reject", "shed"):
                self._rejected += 1
                reg.counter("serving.requests", {"outcome": "rejected"}).inc()
                if tier == "shed":
                    reg.counter("serving.shed.hard").inc()
                    raise ServiceShedError(
                        "service saturated beyond the retryable tier"
                    )
                reg.counter("serving.shed.rejected").inc()
                raise ServiceOverloadedError(
                    f"queue at capacity ({self.max_queue_depth} requests)"
                )
            now = time.monotonic()
            deadline = None
            if tier == "defer":
                deadline = now + self.shed_policy.defer_deadline_s
                reg.counter("serving.shed.deferred").inc()
            future: Future = Future()
            self._queue.append(
                _Pending(
                    payload,
                    slots,
                    future,
                    now,
                    deadline,
                    trace=trace,
                    enqueued_pc=time.perf_counter() if trace is not None else 0.0,
                )
            )
            reg.gauge("serving.queue.depth").set(len(self._queue))
            self._cond.notify_all()
            return future

    # -- worker ------------------------------------------------------------------

    def _expire_deferred(self, now: float) -> None:
        """Fail deferred requests whose shedding deadline passed (locked).

        A deferred admission promised "we will evaluate you soon, or
        tell you to retry elsewhere" — this is the second half.  The
        error is the *retryable* overload, matching the promise.
        """
        if not any(p.shed_deadline is not None for p in self._queue):
            return
        kept: deque[_Pending] = deque()
        expired: list[_Pending] = []
        for pending in self._queue:
            if pending.shed_deadline is not None and now >= pending.shed_deadline:
                expired.append(pending)
            else:
                kept.append(pending)
        if not expired:
            return
        self._queue = kept
        reg = get_registry()
        reg.gauge("serving.queue.depth").set(len(self._queue))
        for pending in expired:
            self._shed_expired += 1
            reg.counter("serving.shed.expired").inc()
            reg.counter("serving.requests", {"outcome": "rejected"}).inc()
            if pending.future.set_running_or_notify_cancel():
                _resolve(
                    pending.future,
                    error=ServiceOverloadedError(
                        "deferred request expired before a batch could take it"
                    ),
                )

    def _fillable(self) -> tuple[list[_Pending], int, bool]:
        """Greedy FIFO prefix that fits the slot budget (under the lock).

        Returns ``(prefix, slots, blocked)`` where *blocked* means a
        queued request exists beyond the prefix — the batch cannot grow
        further, so waiting for the deadline would only add latency.
        """
        batch: list[_Pending] = []
        slots = 0
        for pending in self._queue:
            if slots + pending.slots > self.max_batch_slots:
                return batch, slots, True
            batch.append(pending)
            slots += pending.slots
        return batch, slots, False

    def _next_batch(self) -> list[_Pending] | None:
        """Block until a batch should fire; ``None`` means shut down."""
        with self._cond:
            while True:
                if not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                now = time.monotonic()
                self._expire_deferred(now)
                if not self._queue:
                    continue
                deadline = self._queue[0].enqueued_at + self.max_wait
                batch, slots, blocked = self._fillable()
                full = slots >= self.max_batch_slots
                if self._closed or full or blocked or now >= deadline:
                    for _ in batch:
                        self._queue.popleft()
                    get_registry().gauge("serving.queue.depth").set(len(self._queue))
                    live = [p for p in batch if p.future.set_running_or_notify_cancel()]
                    if live:
                        return live
                    continue  # everything in the prefix was cancelled
                self._cond.wait(timeout=deadline - now)

    def _loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._fire(batch)

    def _fire(self, batch: list[_Pending]) -> None:
        reg = get_registry()
        now = time.monotonic()
        slots = sum(p.slots for p in batch)
        utilization = slots / self.max_batch_slots
        reg.histogram("serving.batch.size").observe(len(batch))
        reg.histogram("serving.batch.slots").observe(slots)
        reg.histogram("serving.batch.wait_seconds").observe_many(
            now - p.enqueued_at for p in batch
        )
        reg.gauge("serving.slot_utilization").set(utilization)
        t0 = time.perf_counter()
        for p in batch:
            if p.trace is not None:
                p.trace.add_stage("queue_wait", p.enqueued_pc, t0)
        error: BaseException | None = None
        results: Any = None
        with self._cond:
            self._firing = list(batch)
        try:
            results = self._process_batch(
                [p.payload for p in batch], [p.slots for p in batch]
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to the futures
            error = exc
        finally:
            with self._cond:
                self._firing = []
        if error is None and isinstance(results, Future):
            # Pipelined mode: the dispatcher owns the evaluation; track
            # the batch so shutdown can fail it if the pool never
            # answers, and move straight on to the next batch.
            with self._cond:
                self._inflight[results] = batch
                self._last_utilization = utilization
            results.add_done_callback(
                lambda fut, b=batch, t=t0: self._on_dispatched(fut, b, t)
            )
            return
        self._observe_compute(batch, t0, error)
        self._distribute(batch, results, error, utilization)

    def _observe_compute(
        self, batch: list[_Pending], t0: float, error: BaseException | None
    ) -> None:
        """Batch compute time: outcome-labelled histogram + trace stages.

        The ``outcome`` label keeps failed-batch latency out of the
        success compute series (a fast-failing pool would otherwise
        drag the apparent compute p50 down).
        """
        t1 = time.perf_counter()
        outcome = "ok" if error is None else "error"
        get_registry().histogram(
            "serving.batch.compute_seconds", {"outcome": outcome}
        ).observe(t1 - t0)
        for p in batch:
            if p.trace is not None:
                p.trace.add_stage("compute", t0, t1, outcome=outcome)

    def _on_dispatched(self, fut: Future, batch: list[_Pending], t0: float) -> None:
        """Completion callback of a pipelined batch (dispatcher thread)."""
        with self._cond:
            if self._inflight.pop(fut, None) is None:
                return  # shutdown already failed this batch
        error: BaseException | None = None
        results: Sequence[Any] | None = None
        if fut.cancelled():
            error = SchedulerClosedError("dispatch cancelled during shutdown")
        elif fut.exception() is not None:
            error = fut.exception()
        else:
            results = fut.result()
        self._observe_compute(batch, t0, error)
        self._distribute(batch, results, error, self._last_utilization)

    def _distribute(
        self,
        batch: list[_Pending],
        results: Sequence[Any] | None,
        error: BaseException | None,
        utilization: float,
    ) -> None:
        """Hand one batch's results (or its shared failure) to the futures."""
        if error is None and (results is None or len(results) != len(batch)):
            error = RuntimeError(
                f"process_batch returned {0 if results is None else len(results)} "
                f"results for {len(batch)} requests"
            )
        for i, pending in enumerate(batch):
            if error is not None:
                _resolve(pending.future, error=error)
            elif isinstance(results[i], BaseException):
                _resolve(pending.future, error=results[i])
            else:
                _resolve(pending.future, results[i])
        with self._cond:
            self._batches += 1
            self._completed += len(batch)
            self._last_utilization = utilization
            self._cond.notify_all()

    # -- lifecycle / introspection -----------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Shut down the worker; idempotent.

        With ``drain=True`` (default) every pending request is still
        evaluated (the worker fires residual batches until the queue is
        empty, ignoring the deadline), bounded by *timeout* seconds:
        when the budget elapses — a wedged pool, a stuck callback — all
        still-unresolved futures fail with the **retryable**
        :class:`~repro.serving.errors.DrainTimeoutError` instead of
        leaving callers blocked.  With ``drain=False`` pending futures
        fail with :class:`SchedulerClosedError` immediately.  Either
        way no future is ever left unresolved past the timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            if not drain:
                while self._queue:
                    pending = self._queue.popleft()
                    if pending.future.set_running_or_notify_cancel():
                        _resolve(
                            pending.future,
                            error=SchedulerClosedError(
                                "scheduler closed before evaluation"
                            ),
                        )
                for batch in self._inflight.values():
                    for pending in batch:
                        _resolve(
                            pending.future,
                            error=SchedulerClosedError(
                                "scheduler closed before evaluation"
                            ),
                        )
                self._inflight.clear()
            self._cond.notify_all()
        if self._worker.is_alive():
            self._worker.join(
                timeout=None if deadline is None else max(0.0, deadline - time.monotonic())
            )
        if drain:
            # Wait out pipelined batches still with the dispatcher.
            with self._cond:
                while self._queue or self._inflight or self._firing:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    if not self._cond.wait(timeout=remaining):
                        break
                stranded = list(self._queue)
                self._queue.clear()
                for batch in self._inflight.values():
                    stranded.extend(batch)
                self._inflight.clear()
                stranded.extend(self._firing)
                get_registry().gauge("serving.queue.depth").set(0)
            for pending in stranded:
                fut = pending.future
                # Queued futures are still PENDING; batch futures are
                # already RUNNING — only the former need the transition.
                if not fut.running() and not fut.done():
                    if not fut.set_running_or_notify_cancel():
                        continue  # cancelled by the caller: already resolved
                if not fut.done():
                    _resolve(
                        fut,
                        error=DrainTimeoutError(
                            "shutdown drain timed out before evaluation"
                        ),
                    )

    def __enter__(self) -> "BatchingScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted but not yet fired."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict[str, Any]:
        """Counters for health endpoints: batches, sizes, rejections."""
        with self._cond:
            batches = self._batches
            completed = self._completed
            return {
                "queue_depth": len(self._queue),
                "inflight_batches": len(self._inflight),
                "batches": batches,
                "requests_completed": completed,
                "requests_rejected": self._rejected,
                "requests_shed_expired": self._shed_expired,
                "mean_batch_size": (completed / batches) if batches else 0.0,
                "last_slot_utilization": self._last_utilization,
                "max_batch_slots": self.max_batch_slots,
                "max_wait_ms": self.max_wait * 1e3,
                "shed_tiers": self.shed_policy is not None,
                "closed": self._closed,
            }
