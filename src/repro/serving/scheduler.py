"""Slot-packed coalescing scheduler: Triton/TF-Serving-style batching.

A CKKS classification costs nearly the same wall-clock whether one or
all of the ciphertext's SIMD slots are filled, so serving throughput is
won by *coalescing*: independent requests claim slots of one batch and
the engine runs once.  :class:`BatchingScheduler` implements the
generic half of that bargain, with no knowledge of HE:

* ``submit(payload, slots)`` enqueues a request and returns a
  :class:`concurrent.futures.Future`; admission is bounded by
  ``max_queue_depth`` and over-capacity submits raise the retryable
  :class:`~repro.serving.errors.ServiceOverloadedError` (backpressure,
  never silent queueing without bound).
* A single worker thread fires a batch when either the pending prefix
  fills ``max_batch_slots`` (or the next request no longer fits), or
  the *oldest* pending request has waited ``max_wait_ms`` — the classic
  fill-or-deadline policy.  While the worker is busy evaluating one
  batch, new arrivals accumulate, so the batch size adapts to offered
  load by itself.
* ``process_batch(payloads, slots)`` — the owner's callback — returns
  one result per request (an exception instance fails just that
  request); the scheduler distributes results to the futures.  Every
  admitted future is resolved on every path, including worker faults
  and shutdown: the scheduler never deadlocks a waiting client.

Telemetry (:mod:`repro.obs.metrics`): ``serving.queue.depth`` and
``serving.slot_utilization`` gauges, ``serving.batch.size`` /
``serving.batch.slots`` / ``serving.batch.wait_seconds`` /
``serving.batch.compute_seconds`` histograms and the
``serving.requests`` outcome-labelled counter, all exported through the
existing Prometheus path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.obs.metrics import get_registry
from repro.serving.errors import SchedulerClosedError, ServiceOverloadedError

__all__ = ["BatchingScheduler"]


@dataclass
class _Pending:
    """One admitted request waiting for a batch slot."""

    payload: Any
    slots: int
    future: Future
    enqueued_at: float


class BatchingScheduler:
    """Bounded-queue request coalescer with a fill-or-deadline worker.

    Parameters
    ----------
    process_batch:
        ``(payloads, slots) -> results`` callback evaluating one fired
        batch; must return one result per payload, in order.  A result
        that is an exception instance fails only its own request; a
        raised exception fails the whole batch (every future gets it).
    max_batch_slots:
        Slot capacity of one batch (for the HE gateway: the backend's
        SIMD slot count).  A batch fires early once its pending prefix
        can grow no further.
    max_wait_ms:
        Deadline of the *oldest* pending request: a partial batch fires
        at most this long after its first request was admitted.  ``0``
        fires immediately with whatever accumulated while the worker
        was busy (pure adaptive batching, minimal added latency).
    max_queue_depth:
        Admission bound (in requests).  Submits beyond it raise
        :class:`ServiceOverloadedError` — backpressure the client can
        retry on.
    name:
        Thread / telemetry name prefix.
    start:
        Start the worker thread immediately (tests may defer).
    """

    def __init__(
        self,
        process_batch: Callable[[list[Any], list[int]], Sequence[Any]],
        *,
        max_batch_slots: int,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 64,
        name: str = "serving",
        start: bool = True,
    ):
        if max_batch_slots < 1:
            raise ValueError("max_batch_slots must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self._process_batch = process_batch
        self.max_batch_slots = int(max_batch_slots)
        self.max_wait = float(max_wait_ms) / 1e3
        self.max_queue_depth = int(max_queue_depth)
        self.name = name
        self._queue: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._batches = 0
        self._completed = 0
        self._rejected = 0
        self._last_utilization = 0.0
        self._worker = threading.Thread(
            target=self._loop, name=f"{name}-batcher", daemon=True
        )
        if start:
            self._worker.start()

    # -- admission ---------------------------------------------------------------

    def submit(self, payload: Any, slots: int = 1) -> Future:
        """Enqueue one request claiming *slots*; returns its future.

        Raises
        ------
        ValueError
            *slots* is not in ``1..max_batch_slots`` (can never fit).
        SchedulerClosedError
            The scheduler is shut down.
        ServiceOverloadedError
            The queue is at ``max_queue_depth`` (backpressure; retry).
        """
        slots = int(slots)
        if not 1 <= slots <= self.max_batch_slots:
            raise ValueError(
                f"request claims {slots} slots, capacity is {self.max_batch_slots}"
            )
        reg = get_registry()
        with self._cond:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            if len(self._queue) >= self.max_queue_depth:
                self._rejected += 1
                reg.counter("serving.requests", {"outcome": "rejected"}).inc()
                raise ServiceOverloadedError(
                    f"queue at capacity ({self.max_queue_depth} requests)"
                )
            future: Future = Future()
            self._queue.append(_Pending(payload, slots, future, time.monotonic()))
            reg.gauge("serving.queue.depth").set(len(self._queue))
            self._cond.notify_all()
            return future

    # -- worker ------------------------------------------------------------------

    def _fillable(self) -> tuple[list[_Pending], int, bool]:
        """Greedy FIFO prefix that fits the slot budget (under the lock).

        Returns ``(prefix, slots, blocked)`` where *blocked* means a
        queued request exists beyond the prefix — the batch cannot grow
        further, so waiting for the deadline would only add latency.
        """
        batch: list[_Pending] = []
        slots = 0
        for pending in self._queue:
            if slots + pending.slots > self.max_batch_slots:
                return batch, slots, True
            batch.append(pending)
            slots += pending.slots
        return batch, slots, False

    def _next_batch(self) -> list[_Pending] | None:
        """Block until a batch should fire; ``None`` means shut down."""
        with self._cond:
            while True:
                if not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                now = time.monotonic()
                deadline = self._queue[0].enqueued_at + self.max_wait
                batch, slots, blocked = self._fillable()
                full = slots >= self.max_batch_slots
                if self._closed or full or blocked or now >= deadline:
                    for _ in batch:
                        self._queue.popleft()
                    get_registry().gauge("serving.queue.depth").set(len(self._queue))
                    live = [p for p in batch if p.future.set_running_or_notify_cancel()]
                    if live:
                        return live
                    continue  # everything in the prefix was cancelled
                self._cond.wait(timeout=deadline - now)

    def _loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._fire(batch)

    def _fire(self, batch: list[_Pending]) -> None:
        reg = get_registry()
        now = time.monotonic()
        slots = sum(p.slots for p in batch)
        utilization = slots / self.max_batch_slots
        reg.histogram("serving.batch.size").observe(len(batch))
        reg.histogram("serving.batch.slots").observe(slots)
        reg.histogram("serving.batch.wait_seconds").observe_many(
            now - p.enqueued_at for p in batch
        )
        reg.gauge("serving.slot_utilization").set(utilization)
        t0 = time.perf_counter()
        error: BaseException | None = None
        results: Sequence[Any] | None = None
        try:
            results = self._process_batch(
                [p.payload for p in batch], [p.slots for p in batch]
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to the futures
            error = exc
        reg.histogram("serving.batch.compute_seconds").observe(time.perf_counter() - t0)
        if error is None and (results is None or len(results) != len(batch)):
            error = RuntimeError(
                f"process_batch returned {0 if results is None else len(results)} "
                f"results for {len(batch)} requests"
            )
        for i, pending in enumerate(batch):
            if error is not None:
                pending.future.set_exception(error)
            elif isinstance(results[i], BaseException):
                pending.future.set_exception(results[i])
            else:
                pending.future.set_result(results[i])
        with self._cond:
            self._batches += 1
            self._completed += len(batch)
            self._last_utilization = utilization

    # -- lifecycle / introspection -----------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Shut down the worker; idempotent.

        With ``drain=True`` (default) every pending request is still
        evaluated (the worker fires residual batches until the queue is
        empty, ignoring the deadline).  With ``drain=False`` pending
        futures fail with :class:`SchedulerClosedError` immediately.
        Either way no future is ever left unresolved.
        """
        with self._cond:
            self._closed = True
            if not drain:
                while self._queue:
                    pending = self._queue.popleft()
                    if pending.future.set_running_or_notify_cancel():
                        pending.future.set_exception(
                            SchedulerClosedError("scheduler closed before evaluation")
                        )
            self._cond.notify_all()
        if self._worker.is_alive():
            self._worker.join(timeout=timeout)

    def __enter__(self) -> "BatchingScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted but not yet fired."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict[str, Any]:
        """Counters for health endpoints: batches, sizes, rejections."""
        with self._cond:
            batches = self._batches
            completed = self._completed
            return {
                "queue_depth": len(self._queue),
                "batches": batches,
                "requests_completed": completed,
                "requests_rejected": self._rejected,
                "mean_batch_size": (completed / batches) if batches else 0.0,
                "last_slot_utilization": self._last_utilization,
                "max_batch_slots": self.max_batch_slots,
                "max_wait_ms": self.max_wait * 1e3,
                "closed": self._closed,
            }
