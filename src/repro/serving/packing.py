"""Batch assembly for the serving gateway: exact slot packing.

Three packing strategies sit behind one interface
(:meth:`repro.henn.backend.HeBackend.concat_slots` /
:meth:`~repro.henn.backend.HeBackend.slice_slots`):

* **Native SIMD packing** — backends whose slot concatenation is exact
  (``native_slot_concat``) stack N requests into genuinely shared
  ciphertexts; the engine then evaluates the network **once** for the
  whole batch.  The mock backend does this (its handles are plaintext
  slot vectors), which is where the near-``max_batch``× serving
  throughput gain comes from.
* **Lane packing** — the real CKKS backends get the same
  one-evaluation-per-batch behaviour from :class:`SlotPackedBackend`:
  the members' ciphertext components are stacked along a new *lane*
  axis (``(k, B, n)`` residues on CKKS-RNS, ``(B, n)`` big-int
  coefficients on CKKS) described by a
  :class:`~repro.henn.packing.BatchLayout`, and every primitive issues
  **one** inner-backend call on the stacked components — the NTT plans,
  key switch, rescale and fused weighted-sum kernels are all
  shape-generic over the lane axis, so per-op cost is amortized across
  the batch while each lane's arithmetic stays instruction-identical to
  its serial evaluation (bit-identity by construction, asserted per
  backend).  Rotation-based *slot-range* concatenation is deliberately
  not used: a Galois rotation's key-switch noise would break
  bit-identity with the serial run.
* **Structural packing** — the fallback for unknown backends:
  :class:`MemberwiseBackend` wraps the backend so a "packed handle" is
  the tuple of member ciphertexts and every primitive fans out
  memberwise (per-image cost flat in batch size, correctness
  preserved).  It remains the baseline the packed-vs-memberwise
  benchmarks compare against.

:func:`serving_backend_for` picks the strategy; the gateway and the
engine's :meth:`~repro.henn.inference.HeInferenceEngine.assemble_batch`
/ :meth:`~repro.henn.inference.HeInferenceEngine.split_scores` hooks
are agnostic to which one is active.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.ckks.ciphertext import Ciphertext, CiphertextExt
from repro.ckksrns import RnsCiphertext
from repro.henn.backend import (
    CkksBackend,
    CkksRnsBackend,
    EncodedTaps,
    HeBackend,
)
from repro.henn.packing import BatchLayout
from repro.serving.errors import LaneSliceError, PackingError, PackingNestingError

__all__ = [
    "PackedHandle",
    "LaneHandle",
    "MemberwiseBackend",
    "SlotPackedBackend",
    "serving_backend_for",
]


class PackedHandle:
    """A batch-of-requests ciphertext: one member handle per request.

    ``counts[j]`` is the number of SIMD slots (images) member *j*
    claims, so the packed handle presents the same "slot axis" contract
    as a natively packed ciphertext: request *j* owns slot range
    ``[sum(counts[:j]), sum(counts[:j+1]))``.
    """

    __slots__ = ("members", "counts")

    def __init__(self, members: Sequence[Any], counts: Sequence[int]):
        if len(members) != len(counts) or not len(members):
            raise ValueError("bad PackedHandle arguments")
        self.members = list(members)
        self.counts = [int(c) for c in counts]

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedHandle(members={len(self.members)}, counts={self.counts})"


def _unwrap(a: Any) -> PackedHandle:
    if not isinstance(a, PackedHandle):
        raise TypeError(
            f"expected a PackedHandle, got {type(a).__name__} — memberwise "
            "backends only evaluate batches assembled via concat_slots"
        )
    return a


class MemberwiseBackend(HeBackend):
    """Structural packing: every primitive fans out over the members.

    Wraps an inner :class:`~repro.henn.backend.HeBackend` so the
    inference engine sees a backend whose handles are
    :class:`PackedHandle` tuples.  Each operation applies the inner
    backend's operation to every member with identical arguments, so
    the evaluation of member *j* is instruction-for-instruction the
    serial evaluation of request *j* — bit-identical results by
    construction (the packing-equivalence tests assert this on both
    real schemes).

    Plaintext-side work is *not* duplicated: :meth:`encode_taps`
    delegates to the inner backend once, and the replayed
    :class:`~repro.henn.backend.EncodedTaps` are shared by all members
    (and by the compiled inference plan).

    Attribute access falls through to the inner backend (``ctx``,
    ``levels``, …), so health telemetry and parameter introspection
    keep working unchanged.
    """

    native_slot_concat = True  # packs structurally, still exact

    def __init__(self, inner: HeBackend):
        if isinstance(inner, (MemberwiseBackend, SlotPackedBackend)):
            raise PackingNestingError(
                "refusing to nest packing wrappers: "
                f"{inner.name} is already batch-packed"
            )
        self.inner = inner
        self.name = f"packed+{inner.name}"

    def __getattr__(self, item: str) -> Any:
        if item == "inner":  # guard unpickling / partial construction
            raise AttributeError(item)
        return getattr(self.inner, item)

    # -- packing -----------------------------------------------------------------

    def concat_slots(self, handles: Sequence[Any], counts: Sequence[int]) -> PackedHandle:
        return PackedHandle(handles, counts)

    def slice_slots(self, a: PackedHandle, start: int, count: int) -> Any:
        """Member lookup: slices are only defined at request boundaries."""
        a = _unwrap(a)
        offset = 0
        for member, c in zip(a.members, a.counts):
            if offset == start and c == count:
                return member
            offset += c
        raise LaneSliceError(
            f"slot range [{start}, {start + count}) does not match a member "
            f"boundary of counts {a.counts}"
        )

    # -- scalars / capacity --------------------------------------------------------

    @property
    def scale(self) -> float:
        return self.inner.scale

    @property
    def max_batch(self) -> int:
        return self.inner.max_batch

    def scale_of(self, a: Any) -> float:
        return self.inner.scale_of(_unwrap(a).members[0])

    def level_of(self, a: Any) -> int:
        return self.inner.level_of(_unwrap(a).members[0])

    # -- memberwise primitives -----------------------------------------------------

    def encrypt(self, values: np.ndarray) -> Any:
        return self.inner.encrypt(values)

    def decrypt(self, handle: Any, count: int | None = None) -> np.ndarray:
        if not isinstance(handle, PackedHandle):
            return self.inner.decrypt(handle, count)
        parts = [
            np.asarray(self.inner.decrypt(m, count=c))
            for m, c in zip(handle.members, handle.counts)
        ]
        values = np.concatenate(parts)
        return values[:count] if count is not None else values

    def add(self, a: Any, b: Any) -> PackedHandle:
        a, b = _unwrap(a), _unwrap(b)
        return PackedHandle(
            [self.inner.add(x, y) for x, y in zip(a.members, b.members)], a.counts
        )

    def add_plain(self, a: Any, value: float) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.add_plain(m, value) for m in a.members], a.counts)

    def mul_plain_scalar(
        self, a: Any, scalar: float, plain_scale: float | None = None
    ) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle(
            [self.inner.mul_plain_scalar(m, scalar, plain_scale) for m in a.members],
            a.counts,
        )

    def mul(self, a: Any, b: Any) -> PackedHandle:
        a, b = _unwrap(a), _unwrap(b)
        return PackedHandle(
            [self.inner.mul(x, y) for x, y in zip(a.members, b.members)], a.counts
        )

    def square(self, a: Any) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.square(m) for m in a.members], a.counts)

    def rescale(self, a: Any) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.rescale(m) for m in a.members], a.counts)

    def mul_plain_vector(self, a: Any, values: np.ndarray) -> PackedHandle:
        """Slotwise plain multiply: each member sees its own slot range."""
        a = _unwrap(a)
        values = np.asarray(values)
        out, offset = [], 0
        for member, c in zip(a.members, a.counts):
            out.append(self.inner.mul_plain_vector(member, values[offset : offset + c]))
            offset += c
        return PackedHandle(out, a.counts)

    def rotate(self, a: Any, r: int) -> Any:
        raise NotImplementedError(
            "packed handles do not rotate: slot ranges belong to distinct requests"
        )

    # -- raw / extended ops (lazy relinearisation) --------------------------------
    #
    # An extended packed handle is simply a PackedHandle of inner
    # extended handles; every raw primitive fans out memberwise, so the
    # lazy evaluation of member *j* stays instruction-identical to its
    # serial lazy evaluation.

    @property
    def supports_lazy_relin(self) -> bool:  # type: ignore[override]
        return self.inner.supports_lazy_relin

    def _use_lazy(self) -> bool:
        return self.inner._use_lazy()

    def square_raw(self, a: Any) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.square_raw(m) for m in a.members], a.counts)

    def mul_raw(self, a: Any, b: Any) -> PackedHandle:
        a, b = _unwrap(a), _unwrap(b)
        return PackedHandle(
            [self.inner.mul_raw(x, y) for x, y in zip(a.members, b.members)], a.counts
        )

    def rescale_ext(self, e: Any, defer_high: bool = False) -> PackedHandle:
        e = _unwrap(e)
        return PackedHandle(
            [self.inner.rescale_ext(m, defer_high=defer_high) for m in e.members],
            e.counts,
        )

    def relinearize_ext(self, e: Any) -> PackedHandle:
        e = _unwrap(e)
        return PackedHandle([self.inner.relinearize_ext(m) for m in e.members], e.counts)

    def add_ext(self, a: Any, b: Any) -> PackedHandle:
        a, b = _unwrap(a), _unwrap(b)
        return PackedHandle(
            [self.inner.add_ext(x, y) for x, y in zip(a.members, b.members)], a.counts
        )

    def mul_plain_scalar_ext(
        self, e: Any, scalar: float, plain_scale: float | None = None
    ) -> PackedHandle:
        e = _unwrap(e)
        return PackedHandle(
            [self.inner.mul_plain_scalar_ext(m, scalar, plain_scale) for m in e.members],
            e.counts,
        )

    def add_plain_ext(self, e: Any, value: float) -> PackedHandle:
        e = _unwrap(e)
        return PackedHandle([self.inner.add_plain_ext(m, value) for m in e.members], e.counts)

    def scale_of_ext(self, e: Any) -> float:
        return self.inner.scale_of_ext(_unwrap(e).members[0])

    # -- composite fast paths ------------------------------------------------------

    def weighted_sum(
        self, handles: Sequence[Any], weights: np.ndarray, plain_scale: float | None = None
    ) -> PackedHandle:
        packed = [_unwrap(h) for h in handles]
        counts = packed[0].counts
        return PackedHandle(
            [
                self.inner.weighted_sum([p.members[j] for p in packed], weights, plain_scale)
                for j in range(len(counts))
            ],
            counts,
        )

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        return self.inner.encode_taps(weights, plain_scale)

    def weighted_sum_encoded(self, handles: Sequence[Any], enc: EncodedTaps) -> PackedHandle:
        packed = [_unwrap(h) for h in handles]
        counts = packed[0].counts
        return PackedHandle(
            [
                self.inner.weighted_sum_encoded([p.members[j] for p in packed], enc)
                for j in range(len(counts))
            ],
            counts,
        )


# --------------------------------------------------------------------- lane packing


class LaneHandle:
    """A lane-stacked batch ciphertext plus the layout describing it.

    ``ct`` is a single inner-backend ciphertext whose components carry
    an extra *lane* axis (one lane per packed request); ``layout`` is
    the :class:`~repro.henn.packing.BatchLayout` mapping request *b* to
    lane *b* with its slot count, so slot-range slices resolve back to
    members without touching ciphertext data.
    """

    __slots__ = ("ct", "layout")

    def __init__(self, ct: Any, layout: BatchLayout):
        self.ct = ct
        self.layout = layout

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LaneHandle(lanes={self.layout.lanes}, counts={self.layout.counts})"


def _unwrap_lane(a: Any) -> LaneHandle:
    if not isinstance(a, LaneHandle):
        raise TypeError(
            f"expected a LaneHandle, got {type(a).__name__} — slot-packed "
            "backends only evaluate batches assembled via concat_slots"
        )
    return a


class _RnsLanes:
    """Lane adapter for CKKS-RNS: stack ``(k, n)`` components to ``(k, B, n)``.

    The lane axis sits where the batched BSGS machinery already packs
    positions (axis 1), so every context kernel — NTT plans, keyswitch,
    rescale, fused weighted sums — rides over it unchanged, and
    ciphertext–ciphertext multiplication is native on the stacked form.
    """

    native_ct_mul = True

    @staticmethod
    def stack(cts: Sequence[RnsCiphertext]) -> RnsCiphertext:
        first = cts[0]
        return RnsCiphertext(
            np.stack([c.c0 for c in cts], axis=1),
            np.stack([c.c1 for c in cts], axis=1),
            first.level,
            first.scale,
        )

    @staticmethod
    def extract(ct: RnsCiphertext, lane: int) -> RnsCiphertext:
        return RnsCiphertext(
            np.ascontiguousarray(ct.c0[:, lane]),
            np.ascontiguousarray(ct.c1[:, lane]),
            ct.level,
            ct.scale,
        )


class _CkksLanes:
    """Lane adapter for multiprecision CKKS: stack ``(n,)`` rows to ``(B, n)``.

    The big-int coefficientwise operations (add, plain multiply,
    centered lift, rounded division, modulus switch) broadcast over the
    leading lane axis; Kronecker multiplication is inherently 1-D, so
    ciphertext–ciphertext products loop lanes (``native_ct_mul`` False).
    """

    native_ct_mul = False

    @staticmethod
    def stack(cts: Sequence[Ciphertext]) -> Ciphertext:
        first = cts[0]
        return Ciphertext(
            np.stack([c.c0 for c in cts], axis=0),
            np.stack([c.c1 for c in cts], axis=0),
            first.level,
            first.scale,
            first.n,
        )

    @staticmethod
    def extract(ct: Ciphertext, lane: int) -> Ciphertext:
        return Ciphertext(
            np.ascontiguousarray(ct.c0[lane]),
            np.ascontiguousarray(ct.c1[lane]),
            ct.level,
            ct.scale,
            ct.n,
        )

    @staticmethod
    def stack_ext(cts: Sequence[CiphertextExt]) -> CiphertextExt:
        first = cts[0]
        return CiphertextExt(
            np.stack([c.c0 for c in cts], axis=0),
            np.stack([c.c1 for c in cts], axis=0),
            np.stack([c.c2 for c in cts], axis=0),
            first.level,
            first.scale,
            first.n,
            c3=(
                np.stack([c.c3 for c in cts], axis=0) if first.c3 is not None else None
            ),
            deferred=first.deferred,
        )

    @staticmethod
    def extract_ext(ct: CiphertextExt, lane: int) -> CiphertextExt:
        return CiphertextExt(
            np.ascontiguousarray(ct.c0[lane]),
            np.ascontiguousarray(ct.c1[lane]),
            np.ascontiguousarray(ct.c2[lane]),
            ct.level,
            ct.scale,
            ct.n,
            c3=(np.ascontiguousarray(ct.c3[lane]) if ct.c3 is not None else None),
            deferred=ct.deferred,
        )

    @classmethod
    def extract_any(cls, ct: "Ciphertext | CiphertextExt", lane: int):
        if isinstance(ct, CiphertextExt):
            return cls.extract_ext(ct, lane)
        return cls.extract(ct, lane)


class SlotPackedBackend(HeBackend):
    """True SIMD lane packing: B member ciphertexts in one stacked handle.

    Wraps a real CKKS backend so a packed batch is a *single*
    :class:`LaneHandle` whose ciphertext components carry a lane axis.
    Every primitive issues **one** inner-backend call on the stacked
    components (two lane loops excepted: big-int CKKS ct–ct multiply and
    decryption), so conv / SLAF / dense evaluation cost per layer is
    constant in the batch size — the amortized per-image win the
    serving benchmarks record.

    Exactness: all stacked arithmetic is elementwise or
    coefficientwise-broadcast over the lane axis, so lane *b*'s residues
    (or big-int coefficients) after any operation equal the serial
    evaluation of member *b* bit for bit — the packing-equivalence tests
    assert this against the serial engine on both real schemes.

    Plaintext-side work is shared, not duplicated: :meth:`encode_taps`
    delegates to the inner backend, encoded taps broadcast across lanes,
    and :func:`repro.henn.plan._backend_sig` resolves through ``inner``
    so packed and serial engines share one
    :class:`~repro.utils.cache.PlaintextCache` (zero fresh encodes on
    the warm path, count-asserted in CI).

    Attribute access falls through to the inner backend (``ctx``,
    ``keys``, …), so health telemetry and parameter introspection keep
    working unchanged.
    """

    native_slot_concat = True  # lane-stacked, still exact

    def __init__(self, inner: HeBackend):
        if isinstance(inner, (MemberwiseBackend, SlotPackedBackend)):
            raise PackingNestingError(
                "refusing to nest packing wrappers: "
                f"{inner.name} is already batch-packed"
            )
        if isinstance(inner, CkksRnsBackend):
            self._lanes = _RnsLanes()
        elif isinstance(inner, CkksBackend):
            self._lanes = _CkksLanes()
        else:
            raise PackingError(
                f"no lane adapter for backend {inner.name!r}: slot packing "
                "needs lane-generic ciphertext components (CKKS or CKKS-RNS)"
            )
        self.inner = inner
        self.name = f"slotpack+{inner.name}"

    def __getattr__(self, item: str) -> Any:
        if item in ("inner", "_lanes"):  # guard unpickling / partial construction
            raise AttributeError(item)
        return getattr(self.inner, item)

    # -- packing -----------------------------------------------------------------

    def concat_slots(self, handles: Sequence[Any], counts: Sequence[int]) -> LaneHandle:
        """Stack member ciphertexts along the lane axis (exact, no rotation).

        Members must agree on level and scale exactly — fresh
        encryptions do; a drifted ciphertext is the gateway's
        admission-validation problem, reported here as
        :class:`~repro.serving.errors.PackingError` so it can never
        silently corrupt lane-mates.
        """
        if len(handles) != len(counts) or not len(handles):
            raise PackingError("bad concat_slots arguments")
        layout = BatchLayout(tuple(counts), self.inner.max_batch)
        head = handles[0]
        for h in handles:
            if self.inner.level_of(h) != self.inner.level_of(head) or float(
                self.inner.scale_of(h)
            ) != float(self.inner.scale_of(head)):
                raise PackingError(
                    "concat_slots requires identical scales and levels"
                )
        return LaneHandle(self._lanes.stack(list(handles)), layout)

    def slice_slots(self, a: LaneHandle, start: int, count: int) -> Any:
        """One member's ciphertext back out of the lane stack."""
        a = _unwrap_lane(a)
        try:
            lane = a.layout.lane_for_range(start, count)
        except ValueError as exc:
            raise LaneSliceError(str(exc)) from None
        return self._lanes.extract(a.ct, lane)

    # -- scalars / capacity --------------------------------------------------------

    @property
    def scale(self) -> float:
        return self.inner.scale

    @property
    def max_batch(self) -> int:
        return self.inner.max_batch

    def scale_of(self, a: Any) -> float:
        return self.inner.scale_of(_unwrap_lane(a).ct)

    def level_of(self, a: Any) -> int:
        return self.inner.level_of(_unwrap_lane(a).ct)

    # -- stacked primitives --------------------------------------------------------

    def encrypt(self, values: np.ndarray) -> Any:
        return self.inner.encrypt(values)

    def decrypt(self, handle: Any, count: int | None = None) -> np.ndarray:
        if not isinstance(handle, LaneHandle):
            return self.inner.decrypt(handle, count)
        layout = handle.layout
        parts = [
            np.asarray(
                self.inner.decrypt(self._lanes.extract(handle.ct, b), count=c)
            )
            for b, c in enumerate(layout.counts)
        ]
        values = np.concatenate(parts)
        return values[:count] if count is not None else values

    def _rewrap(self, a: LaneHandle, ct: Any) -> LaneHandle:
        return LaneHandle(ct, a.layout)

    @staticmethod
    def _common_layout(a: LaneHandle, b: LaneHandle) -> BatchLayout:
        if a.layout.counts != b.layout.counts:
            raise PackingError(
                f"lane layouts differ: {a.layout.counts} vs {b.layout.counts}"
            )
        return a.layout

    def add(self, a: Any, b: Any) -> LaneHandle:
        a, b = _unwrap_lane(a), _unwrap_lane(b)
        return LaneHandle(self.inner.add(a.ct, b.ct), self._common_layout(a, b))

    def add_plain(self, a: Any, value: float) -> LaneHandle:
        a = _unwrap_lane(a)
        return self._rewrap(a, self.inner.add_plain(a.ct, value))

    def mul_plain_scalar(
        self, a: Any, scalar: float, plain_scale: float | None = None
    ) -> LaneHandle:
        a = _unwrap_lane(a)
        return self._rewrap(a, self.inner.mul_plain_scalar(a.ct, scalar, plain_scale))

    def mul(self, a: Any, b: Any) -> LaneHandle:
        a, b = _unwrap_lane(a), _unwrap_lane(b)
        layout = self._common_layout(a, b)
        if self._lanes.native_ct_mul:
            return LaneHandle(self.inner.mul(a.ct, b.ct), layout)
        # Kronecker multiplication is single-polynomial: loop lanes.
        return LaneHandle(
            self._lanes.stack(
                [
                    self.inner.mul(
                        self._lanes.extract(a.ct, i), self._lanes.extract(b.ct, i)
                    )
                    for i in range(layout.lanes)
                ]
            ),
            layout,
        )

    def square(self, a: Any) -> LaneHandle:
        a = _unwrap_lane(a)
        if self._lanes.native_ct_mul:
            return self._rewrap(a, self.inner.square(a.ct))
        return self._rewrap(
            a,
            self._lanes.stack(
                [
                    self.inner.square(self._lanes.extract(a.ct, i))
                    for i in range(a.layout.lanes)
                ]
            ),
        )

    def rescale(self, a: Any) -> LaneHandle:
        a = _unwrap_lane(a)
        return self._rewrap(a, self.inner.rescale(a.ct))

    def rotate(self, a: Any, r: int) -> Any:
        raise NotImplementedError(
            "packed handles do not rotate: lanes belong to distinct requests"
        )

    # -- raw / extended ops (lazy relinearisation) --------------------------------
    #
    # An extended lane handle stacks the members' extended ciphertexts
    # along the lane axis.  Componentwise primitives (rescale, add,
    # plain ops) are lane-generic and issue one inner call; the Kronecker
    # products and keyswitch of big-int CKKS loop lanes, exactly like
    # the eager ``mul`` / ``square`` above.

    @property
    def supports_lazy_relin(self) -> bool:  # type: ignore[override]
        return self.inner.supports_lazy_relin

    def _use_lazy(self) -> bool:
        return self.inner._use_lazy()

    def square_raw(self, a: Any) -> LaneHandle:
        a = _unwrap_lane(a)
        if self._lanes.native_ct_mul:
            return self._rewrap(a, self.inner.square_raw(a.ct))
        return self._rewrap(
            a,
            self._lanes.stack_ext(
                [
                    self.inner.square_raw(self._lanes.extract(a.ct, i))
                    for i in range(a.layout.lanes)
                ]
            ),
        )

    def mul_raw(self, a: Any, b: Any) -> LaneHandle:
        a, b = _unwrap_lane(a), _unwrap_lane(b)
        layout = self._common_layout(a, b)
        if self._lanes.native_ct_mul:
            return LaneHandle(self.inner.mul_raw(a.ct, b.ct), layout)
        return LaneHandle(
            self._lanes.stack_ext(
                [
                    self.inner.mul_raw(
                        self._lanes.extract(a.ct, i), self._lanes.extract_any(b.ct, i)
                    )
                    for i in range(layout.lanes)
                ]
            ),
            layout,
        )

    def rescale_ext(self, e: Any, defer_high: bool = False) -> LaneHandle:
        e = _unwrap_lane(e)
        return self._rewrap(e, self.inner.rescale_ext(e.ct, defer_high=defer_high))

    def relinearize_ext(self, e: Any) -> LaneHandle:
        e = _unwrap_lane(e)
        if self._lanes.native_ct_mul:
            return self._rewrap(e, self.inner.relinearize_ext(e.ct))
        return self._rewrap(
            e,
            self._lanes.stack(
                [
                    self.inner.relinearize_ext(self._lanes.extract_ext(e.ct, i))
                    for i in range(e.layout.lanes)
                ]
            ),
        )

    def add_ext(self, a: Any, b: Any) -> LaneHandle:
        a, b = _unwrap_lane(a), _unwrap_lane(b)
        return LaneHandle(self.inner.add_ext(a.ct, b.ct), self._common_layout(a, b))

    def mul_plain_scalar_ext(
        self, e: Any, scalar: float, plain_scale: float | None = None
    ) -> LaneHandle:
        e = _unwrap_lane(e)
        return self._rewrap(e, self.inner.mul_plain_scalar_ext(e.ct, scalar, plain_scale))

    def add_plain_ext(self, e: Any, value: float) -> LaneHandle:
        e = _unwrap_lane(e)
        return self._rewrap(e, self.inner.add_plain_ext(e.ct, value))

    def scale_of_ext(self, e: Any) -> float:
        return self.inner.scale_of_ext(_unwrap_lane(e).ct)

    # -- composite fast paths ------------------------------------------------------

    def weighted_sum(
        self, handles: Sequence[Any], weights: np.ndarray, plain_scale: float | None = None
    ) -> LaneHandle:
        packed = [_unwrap_lane(h) for h in handles]
        layout = packed[0].layout
        return LaneHandle(
            self.inner.weighted_sum([p.ct for p in packed], weights, plain_scale),
            layout,
        )

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        return self.inner.encode_taps(weights, plain_scale)

    def weighted_sum_encoded(self, handles: Sequence[Any], enc: EncodedTaps) -> LaneHandle:
        packed = [_unwrap_lane(h) for h in handles]
        layout = packed[0].layout
        return LaneHandle(
            self.inner.weighted_sum_encoded([p.ct for p in packed], enc), layout
        )

    def poly_eval_many(
        self,
        handles: Sequence[Any],
        rows: np.ndarray,
        program: Any = None,
    ) -> list[Any]:
        """All positions × all lanes through the inner batched BSGS path.

        On CKKS-RNS the inner backend stacks positions on axis 1 of each
        handle's ``(k, B, n)`` components, giving ``(k, P, B, n)`` packs
        — one BSGS program run covers every feature-map position *and*
        every lane.  On big-int CKKS the generic per-position loop runs,
        with each primitive lane-stacked through this wrapper.
        """
        packed = [_unwrap_lane(h) for h in handles]
        if not self._lanes.native_ct_mul:
            return super().poly_eval_many(handles, rows, program)
        layout = packed[0].layout
        res = self.inner.poly_eval_many([p.ct for p in packed], rows, program)
        return [LaneHandle(ct, layout) for ct in res]

    def rescale_many(self, handles: Sequence[Any]) -> list[Any]:
        packed = [_unwrap_lane(h) for h in handles]
        if not self._lanes.native_ct_mul:
            return super().rescale_many(handles)
        res = self.inner.rescale_many([p.ct for p in packed])
        return [LaneHandle(ct, p.layout) for ct, p in zip(res, packed)]

    def add_plain_each(self, handles: Sequence[Any], values: np.ndarray) -> list[Any]:
        packed = [_unwrap_lane(h) for h in handles]
        if not self._lanes.native_ct_mul:
            return super().add_plain_each(handles, values)
        res = self.inner.add_plain_each([p.ct for p in packed], values)
        return [LaneHandle(ct, p.layout) for ct, p in zip(res, packed)]


def serving_backend_for(backend: HeBackend) -> HeBackend:
    """The backend a batching gateway should run its engine on.

    * Already-wrapped backends are **rejected** with
      :class:`~repro.serving.errors.PackingNestingError` — stacking
      packing wrappers would double-pack lanes and corrupt slot
      accounting.
    * Backends with exact native slot concatenation serve as-is (mock).
    * The real CKKS schemes get :class:`SlotPackedBackend` lane packing
      — one evaluation per batch, amortized per-image cost.
    * Anything else falls back to :class:`MemberwiseBackend` fan-out
      (correct, but per-image cost flat in batch size).
    """
    if isinstance(backend, (MemberwiseBackend, SlotPackedBackend)):
        raise PackingNestingError(
            f"{backend.name} is already a packing wrapper; wrap the raw backend"
        )
    if backend.native_slot_concat:
        return backend
    if isinstance(backend, (CkksBackend, CkksRnsBackend)):
        return SlotPackedBackend(backend)
    return MemberwiseBackend(backend)
