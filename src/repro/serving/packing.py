"""Batch assembly for the serving gateway: exact slot packing.

Two packing strategies sit behind one interface
(:meth:`repro.henn.backend.HeBackend.concat_slots` /
:meth:`~repro.henn.backend.HeBackend.slice_slots`):

* **Native SIMD packing** — backends whose slot concatenation is exact
  (``native_slot_concat``) stack N requests into genuinely shared
  ciphertexts; the engine then evaluates the network **once** for the
  whole batch.  The mock backend does this (its handles are plaintext
  slot vectors), which is where the near-``max_batch``× serving
  throughput gain comes from.
* **Structural packing** — the real CKKS backends cannot concatenate
  slots exactly (moving a fresh ciphertext's payload to a different
  slot range needs a Galois rotation, whose key-switch noise breaks
  bit-identity with the serial evaluation).  For them,
  :class:`MemberwiseBackend` wraps the backend so a "packed handle" is
  the tuple of member ciphertexts and every primitive fans out
  memberwise.  Results are *exactly* the serial computation — same
  ops, same order, same constants — so correctness is preserved while
  the batch still shares one graph traversal, one compiled
  :class:`~repro.henn.plan.InferencePlan` and one telemetry span tree.
  True rotation-based packing (approximate, Triton-style) is a
  documented future extension, not silently substituted.

:func:`serving_backend_for` picks the strategy; the gateway and the
engine's :meth:`~repro.henn.inference.HeInferenceEngine.assemble_batch`
/ :meth:`~repro.henn.inference.HeInferenceEngine.split_scores` hooks
are agnostic to which one is active.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.henn.backend import EncodedTaps, HeBackend

__all__ = ["PackedHandle", "MemberwiseBackend", "serving_backend_for"]


class PackedHandle:
    """A batch-of-requests ciphertext: one member handle per request.

    ``counts[j]`` is the number of SIMD slots (images) member *j*
    claims, so the packed handle presents the same "slot axis" contract
    as a natively packed ciphertext: request *j* owns slot range
    ``[sum(counts[:j]), sum(counts[:j+1]))``.
    """

    __slots__ = ("members", "counts")

    def __init__(self, members: Sequence[Any], counts: Sequence[int]):
        if len(members) != len(counts) or not len(members):
            raise ValueError("bad PackedHandle arguments")
        self.members = list(members)
        self.counts = [int(c) for c in counts]

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedHandle(members={len(self.members)}, counts={self.counts})"


def _unwrap(a: Any) -> PackedHandle:
    if not isinstance(a, PackedHandle):
        raise TypeError(
            f"expected a PackedHandle, got {type(a).__name__} — memberwise "
            "backends only evaluate batches assembled via concat_slots"
        )
    return a


class MemberwiseBackend(HeBackend):
    """Structural packing: every primitive fans out over the members.

    Wraps an inner :class:`~repro.henn.backend.HeBackend` so the
    inference engine sees a backend whose handles are
    :class:`PackedHandle` tuples.  Each operation applies the inner
    backend's operation to every member with identical arguments, so
    the evaluation of member *j* is instruction-for-instruction the
    serial evaluation of request *j* — bit-identical results by
    construction (the packing-equivalence tests assert this on both
    real schemes).

    Plaintext-side work is *not* duplicated: :meth:`encode_taps`
    delegates to the inner backend once, and the replayed
    :class:`~repro.henn.backend.EncodedTaps` are shared by all members
    (and by the compiled inference plan).

    Attribute access falls through to the inner backend (``ctx``,
    ``levels``, …), so health telemetry and parameter introspection
    keep working unchanged.
    """

    native_slot_concat = True  # packs structurally, still exact

    def __init__(self, inner: HeBackend):
        if isinstance(inner, MemberwiseBackend):
            raise TypeError("refusing to nest MemberwiseBackend")
        self.inner = inner
        self.name = f"packed+{inner.name}"

    def __getattr__(self, item: str) -> Any:
        if item == "inner":  # guard unpickling / partial construction
            raise AttributeError(item)
        return getattr(self.inner, item)

    # -- packing -----------------------------------------------------------------

    def concat_slots(self, handles: Sequence[Any], counts: Sequence[int]) -> PackedHandle:
        return PackedHandle(handles, counts)

    def slice_slots(self, a: PackedHandle, start: int, count: int) -> Any:
        """Member lookup: slices are only defined at request boundaries."""
        a = _unwrap(a)
        offset = 0
        for member, c in zip(a.members, a.counts):
            if offset == start and c == count:
                return member
            offset += c
        raise ValueError(
            f"slot range [{start}, {start + count}) does not match a member "
            f"boundary of counts {a.counts}"
        )

    # -- scalars / capacity --------------------------------------------------------

    @property
    def scale(self) -> float:
        return self.inner.scale

    @property
    def max_batch(self) -> int:
        return self.inner.max_batch

    def scale_of(self, a: Any) -> float:
        return self.inner.scale_of(_unwrap(a).members[0])

    def level_of(self, a: Any) -> int:
        return self.inner.level_of(_unwrap(a).members[0])

    # -- memberwise primitives -----------------------------------------------------

    def encrypt(self, values: np.ndarray) -> Any:
        return self.inner.encrypt(values)

    def decrypt(self, handle: Any, count: int | None = None) -> np.ndarray:
        if not isinstance(handle, PackedHandle):
            return self.inner.decrypt(handle, count)
        parts = [
            np.asarray(self.inner.decrypt(m, count=c))
            for m, c in zip(handle.members, handle.counts)
        ]
        values = np.concatenate(parts)
        return values[:count] if count is not None else values

    def add(self, a: Any, b: Any) -> PackedHandle:
        a, b = _unwrap(a), _unwrap(b)
        return PackedHandle(
            [self.inner.add(x, y) for x, y in zip(a.members, b.members)], a.counts
        )

    def add_plain(self, a: Any, value: float) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.add_plain(m, value) for m in a.members], a.counts)

    def mul_plain_scalar(
        self, a: Any, scalar: float, plain_scale: float | None = None
    ) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle(
            [self.inner.mul_plain_scalar(m, scalar, plain_scale) for m in a.members],
            a.counts,
        )

    def mul(self, a: Any, b: Any) -> PackedHandle:
        a, b = _unwrap(a), _unwrap(b)
        return PackedHandle(
            [self.inner.mul(x, y) for x, y in zip(a.members, b.members)], a.counts
        )

    def square(self, a: Any) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.square(m) for m in a.members], a.counts)

    def rescale(self, a: Any) -> PackedHandle:
        a = _unwrap(a)
        return PackedHandle([self.inner.rescale(m) for m in a.members], a.counts)

    def mul_plain_vector(self, a: Any, values: np.ndarray) -> PackedHandle:
        """Slotwise plain multiply: each member sees its own slot range."""
        a = _unwrap(a)
        values = np.asarray(values)
        out, offset = [], 0
        for member, c in zip(a.members, a.counts):
            out.append(self.inner.mul_plain_vector(member, values[offset : offset + c]))
            offset += c
        return PackedHandle(out, a.counts)

    def rotate(self, a: Any, r: int) -> Any:
        raise NotImplementedError(
            "packed handles do not rotate: slot ranges belong to distinct requests"
        )

    # -- composite fast paths ------------------------------------------------------

    def weighted_sum(
        self, handles: Sequence[Any], weights: np.ndarray, plain_scale: float | None = None
    ) -> PackedHandle:
        packed = [_unwrap(h) for h in handles]
        counts = packed[0].counts
        return PackedHandle(
            [
                self.inner.weighted_sum([p.members[j] for p in packed], weights, plain_scale)
                for j in range(len(counts))
            ],
            counts,
        )

    def encode_taps(self, weights: np.ndarray, plain_scale: float | None = None) -> EncodedTaps:
        return self.inner.encode_taps(weights, plain_scale)

    def weighted_sum_encoded(self, handles: Sequence[Any], enc: EncodedTaps) -> PackedHandle:
        packed = [_unwrap(h) for h in handles]
        counts = packed[0].counts
        return PackedHandle(
            [
                self.inner.weighted_sum_encoded([p.members[j] for p in packed], enc)
                for j in range(len(counts))
            ],
            counts,
        )


def serving_backend_for(backend: HeBackend) -> HeBackend:
    """The backend a batching gateway should run its engine on.

    Backends with exact native slot concatenation serve as-is; the rest
    are wrapped in :class:`MemberwiseBackend`.  Idempotent for already
    serving-capable backends.
    """
    if backend.native_slot_concat:
        return backend
    return MemberwiseBackend(backend)
