"""Multi-worker serving cluster: pool, health-weighted dispatch, failover.

PR 5's gateway coalesces requests but still evaluates every batch on a
single in-process engine — one stuck or crashed engine takes the whole
service down.  This module puts a pool of **process-backed engine
workers** behind the :class:`~repro.serving.scheduler.BatchingScheduler`:

* :class:`WorkerPool` owns N engine workers.  Each worker is a forked
  process that builds its engine on spawn (plan compile = warm-up,
  optionally against a shared-memory plaintext cache packed once by the
  parent via :mod:`repro.parallel.shm`), answers batches over a duplex
  pipe, and reports liveness through heartbeat pings.  The pool watches
  every worker two ways — a receiver thread per pipe (broken pipe /
  EOF = death) and a heartbeat thread (``is_alive`` + idle pings) — and
  respawns dead workers in the background.
* :class:`Dispatcher` routes each coalesced batch to a worker chosen by
  **health-weighted load balancing**: among workers with spare
  in-flight capacity, the highest ``health / (1 + inflight)`` score
  wins, where health decays with recent faults and recovers with
  successful batches (exported as ``cluster.worker.health`` gauges).
  Robustness is the contract: a worker killed mid-batch never drops a
  future — the in-flight batch is requeued onto a survivor with a
  bounded retry budget (:class:`~repro.resilience.ResiliencePolicy`
  semantics: seeded backoff, bounded attempts), and if the *whole* pool
  is lost the dispatcher degrades to serial in-process evaluation
  through the owner's fallback callable.

Everything observable lands in the process registry: ``cluster.*``
counters (dispatches, failovers, respawns, worker deaths, serial
degradations, heartbeat kills), per-worker gauges (state, health,
inflight) and the ``cluster.batch.seconds`` histogram — all scraped
through the existing Prometheus path and summarised on ``/healthz`` by
:class:`~repro.henn.protocol.ClusteredCloudService`.  Worker-side
telemetry ships home too: every batch reply carries the child's
:meth:`~repro.obs.metrics.MetricsRegistry.to_delta` document, which the
receiver :meth:`~repro.obs.metrics.MetricsRegistry.merge_delta`-folds
into the gateway registry under a stable ``worker-<index>`` ledger id —
so ``/metrics`` reflects worker-side NTT/keyswitch/plan-cache counters —
and a batch holding sampled request traces additionally ships the
worker's finished spans for the gateway to merge into the per-request
cross-process traces (:mod:`repro.obs.rtrace`).

Fault injection: arm a seeded
:class:`~repro.resilience.FaultInjector` with
:meth:`~repro.resilience.FaultInjector.kill_cluster_worker` and pass it
to the pool — the chosen worker SIGKILLs itself at the start of its
n-th batch, which is exactly the mid-batch death the failover tests and
``tools/ci_cluster_smoke.py`` count-assert recovery from.
"""

from __future__ import annotations

import itertools
import os
import random
import signal
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Sequence

try:  # pragma: no cover - platform guard
    import multiprocessing as _mp
except ImportError:  # pragma: no cover
    _mp = None  # type: ignore[assignment]

import numpy as np

from repro.obs.metrics import get_registry
from repro.resilience.policy import ResiliencePolicy
from repro.serving.errors import (
    ClusterUnavailableError,
    SchedulerClosedError,
    ServiceOverloadedError,
    WorkerLostError,
)

__all__ = [
    "WorkerPool",
    "Dispatcher",
    "ClusterWorker",
    "share_plan_cache",
    "WORKER_STATES",
]

#: Worker lifecycle states, in the order the failover machine walks them.
WORKER_STATES = ("warming", "ready", "dead", "respawning")


def _count(event: str, n: int = 1) -> None:
    get_registry().counter(f"cluster.{event}").inc(n)


# ------------------------------------------------------------------ shared cache


def share_plan_cache(cache: Any) -> tuple[Any, dict | None]:
    """Pack a plan's :class:`~repro.henn.backend.EncodedTaps` arrays into shm.

    Walks *cache* (a :class:`~repro.utils.cache.PlaintextCache`) and
    copies the NumPy payload of every encoded-taps entry — the float
    weights and, on CKKS-RNS, the big ``(taps, k_top)`` residue tables —
    into **one** :class:`~repro.parallel.shm.ShmArena` segment.  Returns
    ``(arena, refs)`` where *refs* is a picklable description each
    worker rebuilds into a warm cache of zero-copy views via
    :func:`rebuild_plan_cache` — the whole pool then shares a single
    physical copy of the encoded model instead of N.

    Returns ``(None, None)`` when shared memory is unavailable or the
    cache holds nothing shareable; workers then simply recompile their
    own encodings (correct, just not shared).
    """
    from repro.henn.backend import EncodedTaps
    from repro.parallel import shm as _shm

    if cache is None or not _shm.shm_available():
        return None, None
    arrays: dict[str, np.ndarray] = {}
    entries: list[tuple[Any, dict]] = []
    with cache._lock:
        items = list(cache._store.items())
    for i, (key, value) in enumerate(items):
        if not isinstance(value, EncodedTaps):
            continue
        meta: dict[str, Any] = {
            "plain_scale": float(value.plain_scale),
            "consts": list(value.consts),
            "keep": list(value.keep),
            "weights": f"w{i}",
            "residues": None,
        }
        arrays[f"w{i}"] = np.asarray(value.weights)
        if value.residues is not None:
            meta["residues"] = f"r{i}"
            arrays[f"r{i}"] = np.asarray(value.residues)
        entries.append((key, meta))
    if not entries:
        return None, None
    try:
        arena = _shm.ShmArena(arrays)
    except Exception:
        return None, None
    refs = {
        "entries": [
            (key, {**meta,
                   "weights": arena.refs[meta["weights"]],
                   "residues": arena.refs[meta["residues"]] if meta["residues"] else None})
            for key, meta in entries
        ]
    }
    _count("shared_cache.entries", len(entries))
    _count("shared_cache.bytes", arena.nbytes)
    return arena, refs


def rebuild_plan_cache(refs: dict | None) -> Any:
    """Worker side of :func:`share_plan_cache`: refs -> warm cache of views."""
    from repro.henn.backend import EncodedTaps
    from repro.parallel.shm import resolve
    from repro.utils.cache import PlaintextCache

    cache = PlaintextCache()
    if not refs:
        return cache
    for key, meta in refs["entries"]:
        enc = EncodedTaps(
            plain_scale=meta["plain_scale"],
            weights=resolve(meta["weights"]),
            consts=list(meta["consts"]),
            keep=list(meta["keep"]),
            residues=resolve(meta["residues"]) if meta["residues"] else None,
        )
        cache.get_or_encode(key, lambda e=enc: e)
    return cache


# ------------------------------------------------------------------ worker child


def _worker_main(index: int, conn: Any, engine_factory: Callable[[], Any],
                 kill_batches: Sequence[int]) -> None:
    """Child-process loop: build engine, answer batches until stopped.

    First act: install a *fresh* metrics registry and RNG-free state so
    a lock the parent held at fork time can never deadlock the child.
    The engine build (plan compile against the shared cache) is the
    per-worker warm-up; ``("ready", ...)`` is only sent once it is done,
    so the pool's ``warming`` state covers the whole expensive part.

    Every batch reply carries the worker's metric delta for that batch
    (the registry is swapped fresh after each send, so deltas stay small
    and merge cleanly parent-side; the first one also carries the
    warm-up metrics).  When the batch message flags sampled request
    traces, the worker additionally activates a fresh
    :class:`~repro.obs.tracer.Tracer` around the evaluation — the
    engine's internal ``henn.*``/``ckksrns.*`` spans land under
    ``rtrace.worker.*`` phase spans — and ships the finished spans back
    with the result for the gateway to merge into the request traces.
    """
    from repro.obs import metrics as _metrics
    from repro.obs import tracer as _tracer

    _metrics.set_registry(_metrics.MetricsRegistry())
    try:
        engine = engine_factory()
    except BaseException as exc:  # noqa: BLE001 - reported, then exit
        try:
            conn.send(("spawn_error", None, RuntimeError(type(exc).__name__)))
        except Exception:
            pass
        return
    try:
        conn.send(("ready", None, os.getpid()))
    except Exception:
        return

    def take_delta() -> dict:
        delta = _metrics.get_registry().to_delta()
        _metrics.set_registry(_metrics.MetricsRegistry())
        return delta

    batches = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind, job_id, payload = msg
        if kind == "stop":
            return
        if kind == "ping":
            try:
                conn.send(("pong", job_id, None))
            except Exception:
                return
            continue
        batches += 1
        if batches in kill_batches:
            # Seeded mid-batch death: the job was received but will
            # never be answered — exactly what failover must absorb.
            os.kill(os.getpid(), signal.SIGKILL)
        requests, slots, sampled = payload
        tracer: Any = None
        prev_tracer: Any = None
        if sampled:
            tracer = _tracer.Tracer()
            prev_tracer = _tracer.set_tracer(tracer)
        t0 = time.perf_counter()
        try:
            if tracer is not None:
                with tracer.span("rtrace.worker.pack", batch=len(requests)):
                    assembled = engine.assemble_batch(requests, slots)
                with tracer.span("rtrace.worker.evaluate"):
                    scores = engine.run_encrypted(assembled)
                with tracer.span("rtrace.worker.split"):
                    per_request = engine.split_scores(scores, slots)
            else:
                assembled = engine.assemble_batch(requests, slots)
                scores = engine.run_encrypted(assembled)
                per_request = engine.split_scores(scores, slots)
            seconds = time.perf_counter() - t0
            span_dicts = (
                [s.to_dict() for s in tracer.finished()] if tracer is not None else []
            )
            reply = ("result", job_id, (per_request, seconds, take_delta(), span_dicts))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            delta = take_delta()
            try:
                reply = ("error", job_id, (exc, delta))
                conn.send(reply)
                continue
            except Exception:
                reply = (
                    "error",
                    job_id,
                    (RuntimeError(f"{type(exc).__name__} (unpicklable)"), delta),
                )
        finally:
            if tracer is not None:
                _tracer.set_tracer(prev_tracer)
        try:
            conn.send(reply)
        except Exception:
            return


class _Job:
    """One dispatched batch: payload + the future the dispatcher returned."""

    __slots__ = (
        "job_id",
        "requests",
        "slots",
        "traces",
        "future",
        "attempts",
        "created_at",
    )

    def __init__(
        self,
        job_id: int,
        requests: Sequence[Any],
        slots: Sequence[int],
        traces: Sequence[Any] | None = None,
    ):
        self.job_id = job_id
        self.requests = requests
        self.slots = list(slots)
        #: Per-request trace contexts (same order as *requests*; members
        #: may be ``None``).  Sampled members receive the worker's
        #: shipped spans when the result arrives.
        self.traces: list[Any] = list(traces) if traces is not None else []
        self.future: Future = Future()
        self.future.set_running_or_notify_cancel()
        self.attempts = 0
        self.created_at = time.monotonic()

    @property
    def sampled(self) -> bool:
        """Whether any member wants worker-side spans shipped back."""
        return any(getattr(ctx, "sampled", False) for ctx in self.traces if ctx is not None)


class ClusterWorker:
    """Parent-side handle of one engine worker process."""

    def __init__(self, index: int):
        self.index = index
        self.generation = 0
        self.proc: Any = None
        self.conn: Any = None
        self.state = "warming"
        self.pid: int | None = None
        self.send_lock = threading.Lock()
        self.inflight: dict[int, _Job] = {}
        self.batches = 0
        self.faults = 0.0  # decays on success, bumps on death/error
        self.ewma_seconds = 0.0
        self.spawned_at = 0.0
        self.ready_at = 0.0
        self.ping_sent: float | None = None
        self.last_pong = 0.0

    # -- health-weighted balancing -------------------------------------------------

    def health(self) -> float:
        """Dispatch weight in ``(0, 1]``: 1 = pristine, decays with faults."""
        return 1.0 / (1.0 + self.faults)

    def score(self) -> float:
        """Selection score: health discounted by queued work."""
        return self.health() / (1.0 + len(self.inflight))

    def describe(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "state": self.state,
            "pid": self.pid,
            "generation": self.generation,
            "inflight": len(self.inflight),
            "batches": self.batches,
            "health": round(self.health(), 4),
            "ewma_batch_seconds": round(self.ewma_seconds, 6),
        }


class WorkerPool:
    """N process-backed engine workers with spawn/respawn lifecycle.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building the worker's
        :class:`~repro.henn.inference.HeInferenceEngine`; runs in the
        child after fork (closures over the parent's backend are fine —
        fork inheritance carries the key material).
    size:
        Worker count.
    max_inflight:
        Batches a single worker may hold (1 = strict one-at-a-time;
        2 lets the pipe hide IPC latency behind the current evaluation).
    respawn:
        Respawn dead workers in the background (bounded attempts); with
        ``False`` a dead worker stays dead — the whole-pool-loss
        degradation tests rely on this.
    heartbeat_interval_s / heartbeat_timeout_s:
        Liveness cadence: every interval the monitor checks
        ``Process.is_alive`` and pings *idle* workers; an idle worker
        whose pong is overdue by the timeout is SIGKILLed and treated
        as dead (a hung worker is as lost as a crashed one).
    spawn_timeout_s:
        Budget for one worker to report ready before spawn counts as
        failed.
    respawn_max_attempts:
        Spawn attempts per death before that slot is abandoned; when
        every slot is abandoned the pool reports itself lost.
    fault_injector:
        Optional seeded :class:`~repro.resilience.FaultInjector` (armed
        via ``kill_cluster_worker``); consulted parent-side at every
        (re)spawn, handing matching armed kills to the child as an
        explicit SIGKILL schedule.
    """

    def __init__(
        self,
        engine_factory: Callable[[], Any],
        size: int = 3,
        *,
        max_inflight: int = 1,
        respawn: bool = True,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 10.0,
        spawn_timeout_s: float = 120.0,
        respawn_max_attempts: int = 3,
        fault_injector: Any | None = None,
        shared_cache_refs: dict | None = None,
        name: str = "cluster",
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.engine_factory = engine_factory
        self.size = int(size)
        self.max_inflight = int(max_inflight)
        self.respawn = respawn
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.respawn_max_attempts = int(respawn_max_attempts)
        self.fault_injector = fault_injector
        self.shared_cache_refs = shared_cache_refs
        self.name = name
        self.cond = threading.Condition()
        self.workers = [ClusterWorker(i) for i in range(self.size)]
        self._closed = False
        self._abandoned: set[int] = set()
        self._respawns = 0
        self._deaths = 0
        #: Dispatcher callback for jobs orphaned by a worker death.
        self.on_job_orphaned: Callable[[_Job], None] | None = None
        self._ctx = None
        if _mp is not None:
            try:
                self._ctx = _mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                self._ctx = _mp.get_context()
        self._recv_threads: dict[int, threading.Thread] = {}
        self._monitor = threading.Thread(
            target=self._heartbeat_loop, name=f"{name}-heartbeat", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn every worker and start the heartbeat monitor."""
        for worker in self.workers:
            self._spawn(worker)
        self._monitor.start()
        get_registry().gauge("cluster.pool.size").set(self.size)
        return self

    def _spawn(self, worker: ClusterWorker) -> None:
        """Fork one worker (caller ensures the slot is free); may raise."""
        if self._ctx is None:
            raise ClusterUnavailableError("multiprocessing unavailable")
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        factory = self.engine_factory
        if self.shared_cache_refs is not None:
            factory = _SharedCacheFactory(factory, self.shared_cache_refs)
        kill_batches: list[int] = []
        if self.fault_injector is not None:
            kill_batches = self.fault_injector.take_cluster_kills(worker.index)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker.index, child_conn, factory, kill_batches),
            name=f"{self.name}-worker-{worker.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent's copy must go or EOF never arrives
        with self.cond:
            worker.generation += 1
            worker.proc = proc
            worker.conn = parent_conn
            worker.pid = proc.pid
            worker.state = "warming"
            worker.inflight = {}
            worker.spawned_at = time.monotonic()
            worker.ping_sent = None
            self._publish(worker)
        thread = threading.Thread(
            target=self._recv_loop,
            args=(worker, worker.generation),
            name=f"{self.name}-recv-{worker.index}",
            daemon=True,
        )
        self._recv_threads[worker.index] = thread
        thread.start()

    def wait_ready(self, timeout: float | None = None, count: int | None = None) -> bool:
        """Block until *count* workers (default: all) report ready."""
        want = self.size if count is None else count
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while sum(1 for w in self.workers if w.state == "ready") < want:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                if self._closed:
                    return False
                self.cond.wait(timeout=remaining)
            return True

    def close(self) -> None:
        """Stop every worker (idempotent): polite stop, then SIGKILL."""
        with self.cond:
            if self._closed:
                return
            self._closed = True
            self.cond.notify_all()
        for worker in self.workers:
            conn, proc = worker.conn, worker.proc
            if conn is not None:
                try:
                    with worker.send_lock:
                        conn.send(("stop", None, None))
                except Exception:
                    pass
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
            if conn is not None:
                try:
                    conn.close()
                except Exception:
                    pass
            with self.cond:
                worker.state = "dead"
        for thread in self._recv_threads.values():
            thread.join(timeout=2.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- receive / death ------------------------------------------------------------

    def _recv_loop(self, worker: ClusterWorker, generation: int) -> None:
        conn = worker.conn
        reg = get_registry()
        while True:
            try:
                kind, job_id, payload = conn.recv()
            except (EOFError, OSError):
                self._handle_death(worker, generation)
                return
            if kind == "ready":
                with self.cond:
                    if worker.generation != generation:
                        return
                    worker.state = "ready"
                    worker.ready_at = time.monotonic()
                    self._publish(worker)
                    self.cond.notify_all()
                reg.histogram("cluster.worker.warmup_seconds").observe(
                    worker.ready_at - worker.spawned_at
                )
                continue
            if kind == "spawn_error":
                # The child could not build its engine; it exits next,
                # which lands in the EOF path -> death handling.
                continue
            if kind == "pong":
                with self.cond:
                    worker.last_pong = time.monotonic()
                    worker.ping_sent = None
                continue
            # result / error for one job
            with self.cond:
                job = worker.inflight.pop(job_id, None)
                if job is not None:
                    worker.batches += 1
                    worker.faults = max(0.0, worker.faults * 0.5 - 0.05)
                    self._publish(worker)
                    self.cond.notify_all()
            if job is None:
                continue  # job was already failed over elsewhere
            if kind == "result":
                per_request, seconds, delta, span_dicts = payload
                self._merge_worker_delta(worker, delta)
                if span_dicts:
                    self._absorb_worker_spans(worker, job, span_dicts)
                with self.cond:
                    worker.ewma_seconds = (
                        seconds if worker.ewma_seconds == 0.0
                        else 0.8 * worker.ewma_seconds + 0.2 * seconds
                    )
                reg.histogram("cluster.batch.seconds").observe(seconds)
                if not job.future.cancelled():
                    job.future.set_result(per_request)
            else:  # error: the evaluation itself failed — not a worker loss
                exc, delta = payload
                self._merge_worker_delta(worker, delta)
                with self.cond:
                    worker.faults += 0.5
                    self._publish(worker)
                if not job.future.cancelled():
                    job.future.set_exception(exc)

    def _merge_worker_delta(self, worker: ClusterWorker, delta: dict | None) -> None:
        """Fold one batch's worker-side metrics into the gateway registry.

        Keyed by the worker *slot* index (stable across respawns, unlike
        the pid), so ``/metrics`` reflects worker-side NTT / keyswitch /
        plan-cache counters and the per-worker ledgers stay coherent
        through failover.
        """
        if not delta:
            return
        try:
            get_registry().merge_delta(delta, worker=f"worker-{worker.index}")
        except Exception:
            _count("delta.merge_errors")

    def _absorb_worker_spans(
        self, worker: ClusterWorker, job: _Job, span_dicts: list
    ) -> None:
        """Hand shipped spans to every sampled request trace of *job*.

        A coalesced batch evaluates once for all members, so each
        sampled member's trace receives the batch's worker spans (its
        own copy, re-idded by the context's two-pass remap).  The
        receive-time clock aligns the worker's ``perf_counter`` domain
        onto the gateway's.
        """
        align_end = time.perf_counter()
        for ctx in job.traces:
            if ctx is None or not getattr(ctx, "sampled", False):
                continue
            try:
                ctx.absorb_worker_spans(
                    span_dicts,
                    worker=f"worker-{worker.index}",
                    pid=worker.pid,
                    align_end=align_end,
                )
            except Exception:
                _count("span.merge_errors")

    def _handle_death(self, worker: ClusterWorker, generation: int) -> None:
        """Mark a worker dead, orphan its jobs, kick off the respawn."""
        with self.cond:
            if self._closed or worker.generation != generation:
                return
            if worker.state == "dead":
                return
            worker.state = "dead"
            worker.faults += 1.0
            orphans = list(worker.inflight.values())
            worker.inflight = {}
            self._deaths += 1
            self._publish(worker)
            self.cond.notify_all()
        _count("worker.deaths")
        get_registry().counter(
            "cluster.worker.deaths_by", {"worker": worker.index}
        ).inc()
        for job in orphans:
            if self.on_job_orphaned is not None:
                self.on_job_orphaned(job)
            else:
                job.future.set_exception(
                    WorkerLostError(f"worker {worker.index} died mid-batch")
                )
        if self.respawn:
            threading.Thread(
                target=self._respawn_loop,
                args=(worker,),
                name=f"{self.name}-respawn-{worker.index}",
                daemon=True,
            ).start()
        else:
            with self.cond:
                self._abandoned.add(worker.index)
                self.cond.notify_all()

    def _respawn_loop(self, worker: ClusterWorker) -> None:
        backoff = 0.05
        for attempt in range(1, self.respawn_max_attempts + 1):
            with self.cond:
                if self._closed:
                    return
                worker.state = "respawning"
                self._publish(worker)
            try:
                self._spawn(worker)
            except Exception:
                time.sleep(backoff)
                backoff = min(1.0, backoff * 2)
                continue
            self._respawns += 1
            _count("respawns")
            if self._await_ready(worker, self.spawn_timeout_s):
                return
            # spawned but never became ready: kill and try again
            with self.cond:
                proc = worker.proc
            if proc is not None and proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        with self.cond:
            worker.state = "dead"
            self._abandoned.add(worker.index)
            self._publish(worker)
            self.cond.notify_all()

    def _await_ready(self, worker: ClusterWorker, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self.cond:
            while worker.state == "warming":
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self.cond.wait(timeout=remaining)
            return worker.state == "ready"

    # -- heartbeat -------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while True:
            with self.cond:
                if self._closed:
                    return
            time.sleep(self.heartbeat_interval_s)
            now = time.monotonic()
            for worker in self.workers:
                with self.cond:
                    state, proc, generation = worker.state, worker.proc, worker.generation
                if state not in ("ready", "warming") or proc is None:
                    continue
                if not proc.is_alive():
                    self._handle_death(worker, generation)
                    continue
                if state != "ready":
                    continue
                with self.cond:
                    idle = not worker.inflight
                    overdue = (
                        worker.ping_sent is not None
                        and now - worker.ping_sent > self.heartbeat_timeout_s
                    )
                if overdue and idle:
                    # Idle but unresponsive: as lost as crashed.
                    _count("heartbeat.kills")
                    proc.kill()  # death lands in the receiver's EOF path
                    continue
                if idle and worker.ping_sent is None:
                    try:
                        with worker.send_lock:
                            worker.conn.send(("ping", None, None))
                        with self.cond:
                            worker.ping_sent = now
                    except Exception:
                        self._handle_death(worker, generation)

    # -- selection / introspection ----------------------------------------------------

    def acquire(self, job: _Job) -> ClusterWorker | None:
        """Assign *job* to the best available worker (caller holds no lock).

        Health-weighted: among workers in ``ready`` state with spare
        in-flight capacity, the highest ``health / (1 + inflight)``
        score wins.  Returns ``None`` when nobody can take the job.
        """
        with self.cond:
            candidates = [
                w
                for w in self.workers
                if w.state == "ready" and len(w.inflight) < self.max_inflight
            ]
            if not candidates:
                return None
            worker = max(candidates, key=lambda w: (w.score(), -w.index))
            worker.inflight[job.job_id] = job
            self._publish(worker)
            return worker

    def release_without_send(self, worker: ClusterWorker, job: _Job) -> None:
        """Undo :meth:`acquire` after a failed pipe send."""
        with self.cond:
            worker.inflight.pop(job.job_id, None)
            self._publish(worker)
            self.cond.notify_all()

    def live_count(self) -> int:
        with self.cond:
            return sum(1 for w in self.workers if w.state in ("ready", "warming", "respawning"))

    def is_lost(self) -> bool:
        """True when no worker is alive and none will come back."""
        with self.cond:
            if any(w.state in ("ready", "warming", "respawning") for w in self.workers):
                return False
            return not self.respawn or len(self._abandoned) >= self.size

    def saturation(self) -> float:
        """Busy fraction in [0, 1]; 1.0 when nobody is ready (shed hard)."""
        with self.cond:
            ready = [w for w in self.workers if w.state == "ready"]
            if not ready:
                return 1.0
            capacity = len(ready) * self.max_inflight
            busy = sum(len(w.inflight) for w in ready)
            value = busy / capacity
        get_registry().gauge("cluster.saturation").set(value)
        return value

    def _publish(self, worker: ClusterWorker) -> None:
        """Per-worker gauges (caller holds the lock)."""
        reg = get_registry()
        labels = {"worker": worker.index}
        reg.gauge("cluster.worker.state", labels).set(WORKER_STATES.index(worker.state))
        reg.gauge("cluster.worker.health", labels).set(worker.health())
        reg.gauge("cluster.worker.inflight", labels).set(len(worker.inflight))
        reg.gauge("cluster.workers.ready").set(
            sum(1 for w in self.workers if w.state == "ready")
        )

    def stats(self) -> dict[str, Any]:
        with self.cond:
            return {
                "size": self.size,
                "ready": sum(1 for w in self.workers if w.state == "ready"),
                "live": sum(
                    1 for w in self.workers if w.state in ("ready", "warming", "respawning")
                ),
                "deaths": self._deaths,
                "respawns": self._respawns,
                "lost": not self.respawn
                and all(w.state == "dead" for w in self.workers)
                or len(self._abandoned) >= self.size,
                "max_inflight": self.max_inflight,
                "shared_cache": self.shared_cache_refs is not None,
                "workers": [w.describe() for w in self.workers],
            }

    @property
    def closed(self) -> bool:
        with self.cond:
            return self._closed


class _SharedCacheFactory:
    """Engine factory wrapper resolving the shm plan cache in the child."""

    __slots__ = ("factory", "refs")

    def __init__(self, factory: Callable[[], Any], refs: dict):
        self.factory = factory
        self.refs = refs

    def __call__(self) -> Any:
        cache = rebuild_plan_cache(self.refs)
        return self.factory(cache)


class Dispatcher:
    """Routes batches to pool workers; absorbs worker death.

    Parameters
    ----------
    pool:
        The started :class:`WorkerPool`.
    policy:
        Failover budget: ``max_retries`` extra dispatch attempts per
        batch after a worker loss, with the policy's seeded backoff
        between attempts (reusing
        :class:`~repro.resilience.ResiliencePolicy` exactly as the
        channel-level executor does).
    fallback:
        ``(requests, slots) -> per_request_results`` evaluated
        in-process when the whole pool is lost — the serial
        degradation tier.  ``None`` fails such batches with the
        retryable :class:`~repro.serving.errors.ClusterUnavailableError`.
    dispatch_timeout_s:
        Longest one batch may wait for a free worker before the
        dispatcher answers with retryable overload backpressure.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        policy: ResiliencePolicy | None = None,
        fallback: Callable[[Sequence[Any], Sequence[int]], Sequence[Any]] | None = None,
        dispatch_timeout_s: float = 60.0,
    ):
        self.pool = pool
        self.policy = policy or ResiliencePolicy(max_retries=2)
        self.fallback = fallback
        self.dispatch_timeout_s = float(dispatch_timeout_s)
        self._job_ids = itertools.count(1)
        self._rng = random.Random(self.policy.seed)
        self._degraded = False
        pool.on_job_orphaned = self._on_orphaned

    # -- dispatch -------------------------------------------------------------------

    def dispatch(
        self,
        requests: Sequence[Any],
        slots: Sequence[int],
        traces: Sequence[Any] | None = None,
    ) -> Future:
        """Hand one batch to the pool; returns the future of its results.

        Blocks the caller (the scheduler's batcher thread) until the
        batch is *assigned* — so under saturation, requests pile up in
        the scheduler's queue where the shedding tiers can see them,
        instead of in a hidden dispatcher backlog.

        *traces* optionally carries one request-trace context per
        request (``None`` members allowed).  Sampled members make the
        worker activate a tracer for this batch and ship its spans back;
        failover retries are recorded as ``failover_retry`` stages on
        every present context.
        """
        job = _Job(next(self._job_ids), list(requests), list(slots), traces)
        _count("dispatches")
        self._assign(job, first=True)
        return job.future

    def _assign(self, job: _Job, first: bool) -> None:
        """Place *job* on a worker / the fallback, or fail its future."""
        deadline = time.monotonic() + self.dispatch_timeout_s
        while True:
            if self.pool.closed:
                job.future.set_exception(SchedulerClosedError("cluster pool is closed"))
                return
            if self.pool.is_lost():
                self._run_fallback(job)
                return
            worker = self.pool.acquire(job)
            if worker is not None:
                if self._send(worker, job):
                    return
                continue  # send broke the pipe: pick another worker
            with self.pool.cond:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self.pool.cond.wait(timeout=min(remaining, 0.25))
        if first:
            job.future.set_exception(
                ServiceOverloadedError("no worker accepted the batch in time")
            )
        else:
            job.future.set_exception(
                WorkerLostError("failover found no worker in time")
            )

    def _send(self, worker: ClusterWorker, job: _Job) -> bool:
        try:
            with worker.send_lock:
                worker.conn.send(
                    ("batch", job.job_id, (job.requests, job.slots, job.sampled))
                )
            return True
        except Exception:
            self.pool.release_without_send(worker, job)
            self.pool._handle_death(worker, worker.generation)
            return False

    # -- failover -------------------------------------------------------------------

    def _on_orphaned(self, job: _Job) -> None:
        """Pool callback: a worker died holding *job*; requeue or fail it.

        Runs on a receiver thread — the actual reassignment moves to a
        short-lived daemon thread so pipe reads never block on pool
        capacity.
        """
        job.attempts += 1
        if job.attempts > self.policy.max_retries:
            _count("failovers.exhausted")
            job.future.set_exception(
                WorkerLostError(
                    f"batch lost {job.attempts} worker(s); retry budget spent"
                )
            )
            return
        _count("failovers")
        threading.Thread(
            target=self._redispatch, args=(job,), name="cluster-failover", daemon=True
        ).start()

    def _redispatch(self, job: _Job) -> None:
        t0 = time.perf_counter()
        time.sleep(self.policy.backoff_delay(job.attempts, self._rng))
        self._assign(job, first=False)
        # The failover stage covers backoff + reassignment — the extra
        # latency the worker loss added before evaluation restarted.
        t1 = time.perf_counter()
        for ctx in job.traces:
            if ctx is not None:
                ctx.note_retry()
                ctx.add_stage("failover_retry", t0, t1, attempt=job.attempts)

    def _run_fallback(self, job: _Job) -> None:
        """Whole-pool loss: evaluate in-process, or fail retryably."""
        if self.fallback is None:
            job.future.set_exception(
                ClusterUnavailableError("worker pool lost and no serial fallback")
            )
            return
        if not self._degraded:
            self._degraded = True
            get_registry().gauge("cluster.degraded").set(1)
        _count("degraded_serial")
        try:
            job.future.set_result(self.fallback(job.requests, job.slots))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the future
            job.future.set_exception(exc)

    @property
    def degraded(self) -> bool:
        """Whether the dispatcher has served at least one batch serially."""
        return self._degraded
