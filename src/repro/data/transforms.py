"""Input transforms used by the training/inference pipelines."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_unit", "normalize_standard", "downsample", "to_nchw"]


def normalize_unit(images: np.ndarray) -> np.ndarray:
    """Map uint8 images to floats in [0, 1] — the paper's normalisation
    (and the source of the §III.C near-zero encoding concern)."""
    return np.asarray(images, dtype=np.float64) / 255.0


def normalize_standard(images: np.ndarray, mean: float = 0.1307, std: float = 0.3081) -> np.ndarray:
    """Zero-mean/unit-variance normalisation with MNIST-style constants."""
    return (normalize_unit(images) - mean) / std


def downsample(images: np.ndarray, factor: int = 2) -> np.ndarray:
    """Average-pool images by an integer factor (reduced-cost presets)."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return np.asarray(images, dtype=np.float64)
    x = np.asarray(images, dtype=np.float64)
    h, w = x.shape[-2], x.shape[-1]
    if h % factor or w % factor:
        raise ValueError(f"image size {h}x{w} not divisible by {factor}")
    shape = x.shape[:-2] + (h // factor, factor, w // factor, factor)
    return x.reshape(shape).mean(axis=(-3, -1))


def to_nchw(images: np.ndarray) -> np.ndarray:
    """Add the channel axis: ``(N, H, W) -> (N, 1, H, W)``."""
    x = np.asarray(images)
    if x.ndim != 3:
        raise ValueError(f"expected (N, H, W), got {x.shape}")
    return x[:, None, :, :]
