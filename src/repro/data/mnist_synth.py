"""Procedural MNIST-like digit renderer.

Each digit class has a stroke skeleton (polylines in the unit square).
A sample is drawn by applying a random affine jitter (rotation, scale,
shear, translation) to the control points, rasterising the distance
field of the strokes at 28x28, mapping distance to ink with a soft
profile and a random stroke width, then adding light pixel noise —
yielding grayscale uint8 images in [0, 255] like the original dataset.

Rendering is fully vectorised per image (pixel-grid x segments distance
computation), and generated sets are cached on disk keyed by
(count, seed, image size, version).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.utils.rng import derive_rng

__all__ = ["SynthMnistConfig", "render_digit", "generate_synth_mnist", "load_synth_mnist", "DIGIT_STROKES"]

_VERSION = 4


def _ring(cx: float, cy: float, rx: float, ry: float, n: int = 12) -> np.ndarray:
    t = np.linspace(0, 2 * np.pi, n + 1)
    return np.stack([cx + rx * np.cos(t), cy + ry * np.sin(t)], axis=1)


#: Stroke skeletons per digit: a list of polylines, each (points, 2) in [0,1]^2
#: with y running top to bottom (image convention).
DIGIT_STROKES: dict[int, list[np.ndarray]] = {
    0: [_ring(0.5, 0.5, 0.21, 0.32)],
    1: [np.array([[0.38, 0.3], [0.53, 0.15], [0.53, 0.85]]),
        np.array([[0.38, 0.85], [0.68, 0.85]])],
    2: [np.array([[0.3, 0.3], [0.38, 0.18], [0.58, 0.16], [0.7, 0.28],
                  [0.66, 0.45], [0.3, 0.8], [0.72, 0.8]])],
    3: [np.array([[0.3, 0.22], [0.52, 0.16], [0.68, 0.27], [0.52, 0.47],
                  [0.7, 0.62], [0.58, 0.82], [0.3, 0.78]])],
    4: [np.array([[0.62, 0.15], [0.25, 0.62], [0.78, 0.62]]),
        np.array([[0.62, 0.38], [0.62, 0.85]])],
    5: [np.array([[0.7, 0.17], [0.33, 0.17], [0.3, 0.46], [0.55, 0.42],
                  [0.7, 0.56], [0.66, 0.74], [0.48, 0.83], [0.3, 0.76]])],
    6: [np.array([[0.64, 0.15], [0.44, 0.28], [0.34, 0.5], [0.34, 0.7],
                  [0.46, 0.83], [0.62, 0.78], [0.68, 0.62], [0.56, 0.5],
                  [0.37, 0.56]])],
    7: [np.array([[0.28, 0.18], [0.72, 0.18], [0.44, 0.85]]),
        np.array([[0.38, 0.52], [0.62, 0.52]])],
    8: [_ring(0.5, 0.32, 0.16, 0.15, n=10), _ring(0.5, 0.66, 0.19, 0.17, n=10)],
    9: [_ring(0.54, 0.34, 0.17, 0.16, n=10),
        np.array([[0.7, 0.36], [0.66, 0.62], [0.52, 0.85]])],
}


@dataclass(frozen=True)
class SynthMnistConfig:
    """Generation parameters (defaults match the paper's dataset shape)."""

    n_train: int = 50_000
    n_test: int = 10_000
    image_size: int = 28
    seed: int = 2025
    max_rotation_deg: float = 20.0
    scale_range: tuple[float, float] = (0.75, 1.15)
    max_shear: float = 0.22
    max_shift: float = 0.1
    width_range: tuple[float, float] = (0.035, 0.1)
    noise_std: float = 22.0
    point_jitter: float = 0.035


def _segment_distances(pixels: np.ndarray, segs_a: np.ndarray, segs_b: np.ndarray) -> np.ndarray:
    """Min distance from each pixel to any segment (vectorised).

    ``pixels`` is (P, 2); ``segs_a``/``segs_b`` are (S, 2) endpoints.
    """
    d = segs_b - segs_a  # (S, 2)
    len2 = (d**2).sum(axis=1)  # (S,)
    len2 = np.where(len2 < 1e-12, 1e-12, len2)
    ap = pixels[:, None, :] - segs_a[None, :, :]  # (P, S, 2)
    t = np.clip((ap * d[None]).sum(axis=2) / len2[None], 0.0, 1.0)  # (P, S)
    proj = segs_a[None] + t[..., None] * d[None]  # (P, S, 2)
    dist = np.sqrt(((pixels[:, None, :] - proj) ** 2).sum(axis=2))
    return dist.min(axis=1)


def _polylines_to_segments(polys: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    a, b = [], []
    for poly in polys:
        a.append(poly[:-1])
        b.append(poly[1:])
    return np.concatenate(a), np.concatenate(b)


def render_digit(
    digit: int,
    rng: int | np.random.Generator | None = None,
    config: SynthMnistConfig | None = None,
) -> np.ndarray:
    """Render one augmented sample of *digit* as uint8 ``(size, size)``."""
    if digit not in DIGIT_STROKES:
        raise ValueError(f"digit must be 0..9, got {digit}")
    cfg = config or SynthMnistConfig()
    rng = derive_rng(rng)
    polys = [p.copy() for p in DIGIT_STROKES[digit]]
    # Random affine about the glyph center.
    theta = np.deg2rad(rng.uniform(-cfg.max_rotation_deg, cfg.max_rotation_deg))
    scale = rng.uniform(*cfg.scale_range)
    shear = rng.uniform(-cfg.max_shear, cfg.max_shear)
    shift = rng.uniform(-cfg.max_shift, cfg.max_shift, size=2)
    c, s = np.cos(theta), np.sin(theta)
    mat = scale * np.array([[c, -s], [s, c]]) @ np.array([[1.0, shear], [0.0, 1.0]])
    center = np.array([0.5, 0.5])
    polys = [
        (p + rng.normal(0, cfg.point_jitter, size=p.shape) - center) @ mat.T + center + shift
        for p in polys
    ]
    segs_a, segs_b = _polylines_to_segments(polys)
    size = cfg.image_size
    axis = (np.arange(size) + 0.5) / size
    gx, gy = np.meshgrid(axis, axis)
    pixels = np.stack([gx.ravel(), gy.ravel()], axis=1)
    dist = _segment_distances(pixels, segs_a, segs_b)
    width = rng.uniform(*cfg.width_range)
    ink = np.clip(1.35 * np.exp(-((dist / width) ** 2)), 0.0, 1.0)
    img = ink.reshape(size, size) * 255.0
    if cfg.noise_std > 0:
        img = img + rng.normal(0, cfg.noise_std, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


def generate_synth_mnist(
    n: int, seed: int = 0, config: SynthMnistConfig | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Generate *n* labelled samples with a balanced label distribution."""
    cfg = config or SynthMnistConfig()
    rng = derive_rng(seed)
    labels = rng.integers(0, 10, size=n)
    size = cfg.image_size
    images = np.empty((n, size, size), dtype=np.uint8)
    for i in range(n):
        images[i] = render_digit(int(labels[i]), rng, cfg)
    return images, labels.astype(np.int64)


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE", os.path.join(os.path.expanduser("~"), ".cache", "repro"))
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def load_synth_mnist(
    n_train: int = 10_000,
    n_test: int = 2_000,
    seed: int = 2025,
    image_size: int = 28,
    cache: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Train/test split of synthetic MNIST, cached on disk.

    Returns ``(x_train, y_train, x_test, y_test)`` with uint8 images
    shaped ``(n, size, size)`` — same layout as the original dataset.
    """
    cfg = SynthMnistConfig(n_train=n_train, n_test=n_test, image_size=image_size, seed=seed)
    key = f"synthmnist_v{_VERSION}_{n_train}_{n_test}_{image_size}_{seed}.npz"
    path = _cache_dir() / key
    if cache and path.exists():
        data = np.load(path)
        return data["xtr"], data["ytr"], data["xte"], data["yte"]
    xtr, ytr = generate_synth_mnist(n_train, seed=seed, config=cfg)
    xte, yte = generate_synth_mnist(n_test, seed=seed + 1, config=cfg)
    if cache:
        np.savez_compressed(path, xtr=xtr, ytr=ytr, xte=xte, yte=yte)
    return xtr, ytr, xte, yte
