"""Small dataset container utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng

__all__ = ["Dataset", "train_test_split"]


@dataclass
class Dataset:
    """Images + labels with shape checks and batch iteration."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y must have the same number of samples")

    def __len__(self) -> int:
        return self.x.shape[0]

    def batches(self, batch_size: int, shuffle: bool = False, seed: int | None = None):
        """Yield ``(x_batch, y_batch)`` pairs."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        idx = np.arange(len(self))
        if shuffle:
            derive_rng(seed).shuffle(idx)
        for start in range(0, len(self), batch_size):
            sel = idx[start : start + batch_size]
            yield self.x[sel], self.y[sel]

    def subset(self, n: int) -> "Dataset":
        return Dataset(self.x[:n], self.y[:n])


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float = 0.2, seed: int | None = None
) -> tuple[Dataset, Dataset]:
    """Shuffled split into train/test datasets."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    n = x.shape[0]
    idx = derive_rng(seed).permutation(n)
    n_test = int(round(n * test_fraction))
    test_idx, train_idx = idx[:n_test], idx[n_test:]
    return Dataset(x[train_idx], y[train_idx]), Dataset(x[test_idx], y[test_idx])
