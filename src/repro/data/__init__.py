"""Datasets: a procedural, offline substitute for MNIST.

The paper evaluates on MNIST (28x28 grayscale digits, [0, 255], 50k
train / 10k test).  This environment has no network access, so
:mod:`repro.data.mnist_synth` renders digits procedurally from stroke
skeletons with random affine/width/noise augmentation — same shapes,
same dtypes, same code path through every downstream component.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.data.mnist_synth import SynthMnistConfig, generate_synth_mnist, load_synth_mnist, render_digit
from repro.data.datasets import Dataset, train_test_split
from repro.data.transforms import normalize_unit, normalize_standard, downsample, to_nchw

__all__ = [
    "SynthMnistConfig",
    "generate_synth_mnist",
    "load_synth_mnist",
    "render_digit",
    "Dataset",
    "train_test_split",
    "normalize_unit",
    "normalize_standard",
    "downsample",
    "to_nchw",
]
