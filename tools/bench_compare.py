#!/usr/bin/env python
"""Diff current BENCH_*.json benchmark records against a baseline set.

Usage::

    PYTHONPATH=src python tools/bench_compare.py \
        [--baseline bench_artifacts/baselines] [--current bench_artifacts] \
        [--threshold 0.25] [--warn-only] [--markdown] [name ...]

For every ``BENCH_<name>.json`` in the baseline directory (or just the
names given), the matching current record is loaded, both are validated
against the ``repro.bench/1`` schema, and their timing ``results`` are
compared.  Any key that got more than ``threshold`` slower (default
25%) is a regression; schema violations and baselines with no current
counterpart are also failures.

``--markdown`` additionally prints one GitHub-Markdown table row per
compared key (``| name | key | baseline | current | ratio | status |``),
ready to paste into a PR description or the hot-spot history table in
``docs/PERFORMANCE.md``.

Exit status: 0 clean, 1 regressions or invalid/missing records —
unless ``--warn-only`` (the CI bench-smoke default, since shared
runners make wall-clock noisy), which always exits 0 after printing
the same report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.record import compare_records, load_record, record_path  # noqa: E402


def _fmt_seconds(v: float) -> str:
    return f"{v:.6g}"


def markdown_rows(name: str, diff: dict) -> list[str]:
    """One GitHub-Markdown table row per compared key (see module doc)."""
    rows = []
    for row in diff["rows"]:
        status = "regression" if row["regression"] else "ok"
        # Keys carry their own unit (".ms" / ".seconds"), so values are
        # printed bare.
        rows.append(
            f"| {name} | {row['key']} | {_fmt_seconds(row['baseline'])} "
            f"| {_fmt_seconds(row['current'])} | {row['ratio']:.2f}x | {status} |"
        )
    return rows


def compare_pair(
    base_path: Path, cur_path: Path, threshold: float
) -> tuple[bool, list[str], dict | None]:
    """(ok, report lines, diff) for one baseline/current record pair."""
    lines: list[str] = []
    try:
        baseline = load_record(base_path)
    except (ValueError, OSError) as exc:
        return False, [f"  INVALID baseline: {exc}"], None
    if not cur_path.exists():
        return (
            False,
            [f"  MISSING current record {cur_path.name} (benchmark not run?)"],
            None,
        )
    try:
        current = load_record(cur_path)
    except (ValueError, OSError) as exc:
        return False, [f"  INVALID current record: {exc}"], None

    diff = compare_records(baseline, current, threshold=threshold)
    if not diff["env_match"]:
        lines.append(
            "  note: environment fingerprints differ "
            f"(baseline {baseline['env']} vs current {current['env']}) — "
            "timings are not apples-to-apples"
        )
    for row in diff["rows"]:
        marker = "REGRESSION" if row["regression"] else "ok"
        lines.append(
            f"  {marker:>10}  {row['key']}: "
            f"{_fmt_seconds(row['baseline'])} -> {_fmt_seconds(row['current'])} "
            f"({row['ratio']:.2f}x)"
        )
    for key in diff["missing"]:
        lines.append(f"  {'MISSING':>10}  {key}: present in baseline only")
    ok = not diff["regressions"] and not diff["missing"]
    return ok, lines, diff


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names (default: every BENCH_*.json in the baseline dir)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO / "bench_artifacts" / "baselines",
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=REPO / "bench_artifacts",
        help="directory holding the freshly emitted records",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown fraction before a key counts as a regression",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print the full report but always exit 0",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="also print a GitHub-Markdown comparison table (PR-ready)",
    )
    args = parser.parse_args(argv)

    if args.names:
        pairs = [(record_path(args.baseline, n), record_path(args.current, n)) for n in args.names]
    else:
        pairs = [
            (p, args.current / p.name) for p in sorted(args.baseline.glob("BENCH_*.json"))
        ]
    if not pairs:
        print(f"no baseline records under {args.baseline}")
        return 0 if args.warn_only else 1

    failures = 0
    md_lines: list[str] = []
    for base_path, cur_path in pairs:
        name = base_path.stem.removeprefix("BENCH_")
        ok, lines, diff = compare_pair(base_path, cur_path, args.threshold)
        status = "OK" if ok else "FAIL"
        print(f"{status}  {name}")
        print("\n".join(lines))
        failures += 0 if ok else 1
        if args.markdown and diff is not None:
            md_lines.extend(markdown_rows(name, diff))

    if args.markdown and md_lines:
        print("\n| benchmark | key | baseline | current | ratio | status |")
        print("|---|---|---|---|---|---|")
        print("\n".join(md_lines))

    print(
        f"\n{len(pairs) - failures}/{len(pairs)} benchmark records within "
        f"{args.threshold:.0%} of baseline"
    )
    if failures and args.warn_only:
        print("warn-only: regressions reported but not failing the run")
    return 0 if (args.warn_only or not failures) else 1


if __name__ == "__main__":
    sys.exit(main())
