#!/usr/bin/env python
"""Diff current BENCH_*.json benchmark records against a baseline set.

Usage::

    PYTHONPATH=src python tools/bench_compare.py \
        [--baseline bench_artifacts/baselines] [--current bench_artifacts] \
        [--threshold 0.25] [--warn-only] [name ...]

For every ``BENCH_<name>.json`` in the baseline directory (or just the
names given), the matching current record is loaded, both are validated
against the ``repro.bench/1`` schema, and their timing ``results`` are
compared.  Any key that got more than ``threshold`` slower (default
25%) is a regression; schema violations and baselines with no current
counterpart are also failures.

Exit status: 0 clean, 1 regressions or invalid/missing records —
unless ``--warn-only`` (the CI bench-smoke default, since shared
runners make wall-clock noisy), which always exits 0 after printing
the same report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.record import compare_records, load_record, record_path  # noqa: E402


def _fmt_seconds(v: float) -> str:
    return f"{v:.6g}"


def compare_pair(base_path: Path, cur_path: Path, threshold: float) -> tuple[bool, list[str]]:
    """(ok, report lines) for one baseline/current record pair."""
    lines: list[str] = []
    try:
        baseline = load_record(base_path)
    except (ValueError, OSError) as exc:
        return False, [f"  INVALID baseline: {exc}"]
    if not cur_path.exists():
        return False, [f"  MISSING current record {cur_path.name} (benchmark not run?)"]
    try:
        current = load_record(cur_path)
    except (ValueError, OSError) as exc:
        return False, [f"  INVALID current record: {exc}"]

    diff = compare_records(baseline, current, threshold=threshold)
    if not diff["env_match"]:
        lines.append(
            "  note: environment fingerprints differ "
            f"(baseline {baseline['env']} vs current {current['env']}) — "
            "timings are not apples-to-apples"
        )
    for row in diff["rows"]:
        marker = "REGRESSION" if row["regression"] else "ok"
        lines.append(
            f"  {marker:>10}  {row['key']}: "
            f"{_fmt_seconds(row['baseline'])} -> {_fmt_seconds(row['current'])} "
            f"({row['ratio']:.2f}x)"
        )
    for key in diff["missing"]:
        lines.append(f"  {'MISSING':>10}  {key}: present in baseline only")
    ok = not diff["regressions"] and not diff["missing"]
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names (default: every BENCH_*.json in the baseline dir)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO / "bench_artifacts" / "baselines",
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=REPO / "bench_artifacts",
        help="directory holding the freshly emitted records",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown fraction before a key counts as a regression",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print the full report but always exit 0",
    )
    args = parser.parse_args(argv)

    if args.names:
        pairs = [(record_path(args.baseline, n), record_path(args.current, n)) for n in args.names]
    else:
        pairs = [
            (p, args.current / p.name) for p in sorted(args.baseline.glob("BENCH_*.json"))
        ]
    if not pairs:
        print(f"no baseline records under {args.baseline}")
        return 0 if args.warn_only else 1

    failures = 0
    for base_path, cur_path in pairs:
        ok, lines = compare_pair(base_path, cur_path, args.threshold)
        status = "OK" if ok else "FAIL"
        print(f"{status}  {base_path.stem.removeprefix('BENCH_')}")
        print("\n".join(lines))
        failures += 0 if ok else 1

    print(
        f"\n{len(pairs) - failures}/{len(pairs)} benchmark records within "
        f"{args.threshold:.0%} of baseline"
    )
    if failures and args.warn_only:
        print("warn-only: regressions reported but not failing the run")
    return 0 if (args.warn_only or not failures) else 1


if __name__ == "__main__":
    sys.exit(main())
