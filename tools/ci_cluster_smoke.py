#!/usr/bin/env python
"""CI smoke check: kill 1 of 3 cluster workers mid-run, drop zero futures.

The PR 7 acceptance gate, count-asserted so CI machine noise cannot
flake it.  Spins up a 3-worker :class:`ClusteredCloudService` on the
mock backend with a seeded :class:`FaultInjector` armed to SIGKILL one
worker as it starts a batch, then fires concurrent closed-loop clients
through the gateway and asserts:

* every submitted request resolved with scores bit-identical to the
  serial classification of the same ciphertexts — zero dropped futures,
  zero error responses (the orphaned batch failed over to a survivor),
* exactly one worker death was injected and observed,
* the dead worker respawned and reports ready again (all 3 slots up),
* the gateway never fell back to serial degradation,
* the bookkeeping balances (completed == submitted, empty queue).

Exits non-zero with the offending numbers.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.henn.backend import MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import Client, CloudService, ClusteredCloudService
from repro.resilience import FaultInjector

WORKERS = 3
CLIENTS = 8
REQUESTS_PER_CLIENT = 6
KILL_WORKER = 1  # dies as it starts its first batch
SHAPE = (1, 6, 6)


def build_layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), rng.uniform(-0.1, 0.1, 2)),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 32)), rng.uniform(-0.1, 0.1, 10)),
    ]


def main() -> int:
    layers = build_layers()
    backend = MockBackend(batch=64, levels=6)
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    injector = FaultInjector(seed=7).kill_cluster_worker(worker=KILL_WORKER, on_batch=1)
    gateway = ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=WORKERS,
        max_batch_slots=8,
        max_wait_ms=5.0,
        fault_injector=injector,
    )

    images = np.random.default_rng(1).uniform(0, 1, (CLIENTS, 1, 6, 6))
    total = CLIENTS * REQUESTS_PER_CLIENT
    resolved = [0] * CLIENTS
    failures: list[str] = []
    lock = threading.Lock()

    def client_loop(c: int) -> None:
        enc = client.encrypt_request(images[c : c + 1])
        want = client.decrypt_response(serial.classify_encrypted(enc), batch=1)
        for _ in range(REQUESTS_PER_CLIENT):
            response = gateway.try_classify(enc, count=1)
            with lock:
                resolved[c] += 1
                if not response.ok:
                    failures.append(f"client {c}: {response.error}")
                elif not np.array_equal(
                    client.decrypt_response(response.scores, batch=1), want
                ):
                    failures.append(f"client {c}: cluster scores != serial scores")

    threads = [threading.Thread(target=client_loop, args=(c,)) for c in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    wedged = [t for t in threads if t.is_alive()]

    # Count-asserted recovery: the dead worker must come back ready.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline and gateway.pool.stats()["ready"] < WORKERS:
        time.sleep(0.05)

    stats = gateway.scheduler.stats()
    pool = gateway.pool.stats()
    degraded = gateway.dispatcher.degraded
    kills = injector.summary().get("cluster.kill", 0)
    gateway.close()

    print(
        f"submitted={total} resolved={sum(resolved)} "
        f"completed={stats['requests_completed']} batches={stats['batches']} "
        f"deaths={pool['deaths']} respawns={pool['respawns']} ready={pool['ready']}"
    )

    ok = True
    if wedged:
        print(f"FAIL: {len(wedged)} client threads never got an answer (dropped future?)")
        ok = False
    if failures:
        for f in failures[:10]:
            print(f"FAIL: {f}")
        ok = False
    if sum(resolved) != total:
        print(f"FAIL: {sum(resolved)}/{total} requests resolved")
        ok = False
    if stats["requests_completed"] != total:
        print(f"FAIL: scheduler completed {stats['requests_completed']}/{total}")
        ok = False
    if stats["queue_depth"] != 0:
        print(f"FAIL: {stats['queue_depth']} requests stranded in the queue")
        ok = False
    if kills != 1:
        print(f"FAIL: injector armed 1 kill, fired {kills}")
        ok = False
    if pool["deaths"] != 1:
        print(f"FAIL: pool observed {pool['deaths']} deaths, expected exactly 1")
        ok = False
    if pool["respawns"] != 1:
        print(f"FAIL: pool respawned {pool['respawns']} workers, expected exactly 1")
        ok = False
    if pool["ready"] != WORKERS:
        print(f"FAIL: {pool['ready']}/{WORKERS} workers ready — respawn never re-warmed")
        ok = False
    if degraded:
        print("FAIL: gateway degraded to serial — failover should have absorbed 1 death")
        ok = False
    if ok:
        print(
            "OK: worker killed mid-batch, zero dropped futures, "
            "failover + respawn count-verified, scores bit-identical to serial"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
