#!/usr/bin/env python
"""CI smoke check: a warm ``classify()`` performs zero plaintext encodes.

Builds a small CNN-HE-RNS engine with planning enabled, classifies one
batch cold (the scalar plaintext cache fills), then classifies again and
asserts — from the ``repro.obs`` counters, not from timing — that the
second call performed

* zero fresh plaintext encodes (``plan.encode.fresh``),
* zero plaintext-cache misses (``plan.cache.miss``), and
* exactly ``PolyProgram.relins`` relinearisation sweeps per SLAF layer
  (``relin.count`` / ``relin.deferred``) — the lazy-relinearisation
  contract of ``docs/KERNELS.md``,

i.e. the compile-once contract holds: everything the warm path needs
was either precompiled by :func:`repro.henn.plan.compile_plan` or
memoized during the cold call.  Count-based, so it is immune to CI
machine noise.  Exits non-zero with the offending counter deltas.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksRnsBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.nt.kernels import compile_poly_program
from repro.obs.metrics import get_registry


def build_engine() -> HeInferenceEngine:
    rng = np.random.default_rng(0)
    layers = [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), rng.uniform(-0.1, 0.1, 2)),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 32)), rng.uniform(-0.1, 0.1, 10)),
    ]
    backend = CkksRnsBackend(
        CkksRnsParams(
            n=128,
            moduli_bits=(36, 26, 26, 26, 26, 26),
            scale_bits=26,
            special_bits=45,
            hw=16,
        ),
        seed=0,
    )
    return HeInferenceEngine(backend, layers, (1, 6, 6), plan=True)


def main() -> int:
    engine = build_engine()
    images = np.random.default_rng(1).uniform(0, 1, (4, 1, 6, 6))
    reg = get_registry()

    engine.classify(images)  # cold: cache fills, misses expected
    cold_fresh = reg.counter("plan.encode.fresh").value
    cold_miss = reg.counter("plan.cache.miss").value
    cold_hit = reg.counter("plan.cache.hit").value
    cold_relin = reg.counter("relin.count").value
    cold_deferred = reg.counter("relin.deferred").value

    engine.classify(images)  # warm: must be fully served from caches
    warm_fresh = reg.counter("plan.encode.fresh").value - cold_fresh
    warm_miss = reg.counter("plan.cache.miss").value - cold_miss
    warm_hit = reg.counter("plan.cache.hit").value - cold_hit
    warm_relin = reg.counter("relin.count").value - cold_relin
    warm_deferred = reg.counter("relin.deferred").value - cold_deferred

    # One degree-2 SLAF layer, positions batched into one program run:
    # the warm path owes exactly program.relins sweeps, all deferred
    # (post-rescale) under the default lazy mode.
    slaf_degrees = [
        layer.coeffs.shape[1] - 1
        for layer in engine.layers
        if isinstance(layer, HePoly)
    ]
    expected_relins = sum(compile_poly_program(d).relins for d in slaf_degrees)

    print(
        f"cold: fresh_encodes={cold_fresh} cache_misses={cold_miss} cache_hits={cold_hit}"
    )
    print(f"warm: fresh_encodes={warm_fresh} cache_misses={warm_miss} cache_hits={warm_hit}")
    print(
        f"warm: relin_sweeps={warm_relin} deferred={warm_deferred} "
        f"(expected {expected_relins} for SLAF degrees {slaf_degrees})"
    )

    ok = True
    if warm_fresh != 0:
        print(f"FAIL: warm classify performed {warm_fresh} fresh plaintext encodes")
        ok = False
    if warm_miss != 0:
        print(f"FAIL: warm classify missed the plaintext cache {warm_miss} times")
        ok = False
    if warm_hit == 0:
        print("FAIL: warm classify never hit the plaintext cache (cache not in use?)")
        ok = False
    if warm_relin != expected_relins:
        print(
            f"FAIL: warm classify performed {warm_relin} relinearisation sweeps, "
            f"expected {expected_relins}"
        )
        ok = False
    if warm_deferred != warm_relin:
        print(
            f"FAIL: only {warm_deferred}/{warm_relin} warm sweeps were deferred "
            "(lazy relinearisation not in effect)"
        )
        ok = False
    if ok:
        print(
            "OK: warm classify performed zero plaintext encodes and "
            f"{warm_relin} deferred relinearisation sweeps"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
