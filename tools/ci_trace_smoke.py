#!/usr/bin/env python
"""CI smoke check: distributed request tracing across the serving path.

Count-asserted end-to-end gate for :mod:`repro.obs.rtrace`:

* With head sampling forced on (``rate=1.0``), clustered classifications
  must each yield exactly one retained trace whose merged span tree
  contains spans from **at least two processes** (gateway + worker),
  with ``gateway``/``queue_wait``/``compute`` stage attribution,
  worker-side ``rtrace.worker.*`` spans, parent links that all resolve
  inside the trace, and a Chrome export that round-trips through JSON.
  The live ``/debug/traces`` endpoint must serve the same records, and
  ``tools/trace_critical_path.py`` must print a stage breakdown.
* With tracing off (no policy), the same traffic must leak **zero**
  traces: nothing minted, nothing stored, endpoint answering 404.

Exits non-zero with the offending numbers.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.henn.backend import MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import Client, ClusteredCloudService
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.rtrace import SamplingPolicy

WORKERS = 2
REQUESTS = 4
SHAPE = (1, 6, 6)

failures: list[str] = []


def check(ok: bool, message: str) -> None:
    print(("PASS " if ok else "FAIL ") + message)
    if not ok:
        failures.append(message)


def build_layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), rng.uniform(-0.1, 0.1, 2)),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 32)), rng.uniform(-0.1, 0.1, 10)),
    ]


def drive(gateway: ClusteredCloudService) -> None:
    backend = gateway.client_backend
    client = Client(backend, SHAPE)
    images = np.random.default_rng(1).uniform(0, 1, (REQUESTS, *SHAPE))
    for i in range(REQUESTS):
        scores = client.classify_with_retry(gateway, images[i : i + 1])
        assert scores.shape == (1, 10)
    # Trace finish runs on future done-callbacks; let the last one land.
    time.sleep(0.3)


def fetch(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def run_sampled() -> None:
    set_registry(MetricsRegistry())
    gateway = ClusteredCloudService(
        MockBackend(batch=64, levels=6),
        build_layers(),
        SHAPE,
        workers=WORKERS,
        trace_policy=SamplingPolicy(rate=1.0, seed=7),
    )
    try:
        obs = gateway.start_observability()
        drive(gateway)
        records = gateway.rtrace.store.recent()
        check(
            len(records) == REQUESTS,
            f"sampled: {len(records)} traces retained for {REQUESTS} requests",
        )
        cross = [r for r in records if len(r.pids) >= 2]
        check(
            len(cross) == len(records),
            f"sampled: {len(cross)}/{len(records)} traces span >=2 processes",
        )
        for record in records:
            stages = set(record.stages)
            check(
                {"gateway", "queue_wait", "compute"} <= stages,
                f"trace {record.trace_id}: stages {sorted(stages)} cover "
                "gateway+queue_wait+compute",
            )
            names = {s.name for s in record.spans}
            check(
                any(n.startswith("rtrace.worker.") for n in names),
                f"trace {record.trace_id}: worker-side spans present",
            )
            ids = {s.span_id for s in record.spans}
            dangling = [
                s.name
                for s in record.spans
                if s.parent_id is not None and s.parent_id not in ids
            ]
            check(not dangling, f"trace {record.trace_id}: parent links resolve")

        status, body = fetch(f"{obs.url}/debug/traces")
        index = json.loads(body)
        check(
            status == 200 and index["stored"] == REQUESTS,
            f"/debug/traces: status {status}, stored {index.get('stored')}",
        )
        trace_id = records[0].trace_id
        status, body = fetch(f"{obs.url}/debug/traces/{trace_id}?format=chrome")
        chrome = json.loads(body)
        pids = {ev["pid"] for ev in chrome.get("traceEvents", [])}
        check(
            status == 200 and len(pids) >= 2,
            f"/debug/traces/{trace_id}?format=chrome: {len(pids)} process tracks",
        )

        # The analyzer CLI must produce a stage breakdown from a record.
        from trace_critical_path import load_traces, render

        text = render(load_traces(records[0].to_dict())[0])
        check(
            "stage latency" in text and "critical path" in text,
            "trace_critical_path renders stage table + critical path",
        )
    finally:
        gateway.close()


def run_unsampled() -> None:
    set_registry(MetricsRegistry())
    gateway = ClusteredCloudService(
        MockBackend(batch=64, levels=6), build_layers(), SHAPE, workers=WORKERS
    )
    try:
        obs = gateway.start_observability()
        drive(gateway)
        check(
            len(gateway.rtrace.store) == 0,
            f"unsampled: store holds {len(gateway.rtrace.store)} traces (want 0)",
        )
        snap = get_registry().snapshot()
        minted = snap.get("rtrace.minted", {}).get("value", 0)
        check(minted == 0, f"unsampled: {minted} contexts minted (want 0)")
        status, _ = fetch(f"{obs.url}/debug/traces")
        check(status == 404, f"unsampled: /debug/traces answers {status} (want 404)")
    finally:
        gateway.close()


def main() -> int:
    run_sampled()
    run_unsampled()
    if failures:
        print(f"\ntrace smoke FAILED ({len(failures)} checks):")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\ntrace smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
