#!/usr/bin/env python
"""Critical-path analyzer for per-request serving traces.

Answers the latency question a merged cross-process trace exists for:
*which stage of the serving path did this request actually wait on?*
Reads any of:

* one ``RequestTrace`` record (``/debug/traces/<id>`` JSON),
* a ``{"traces": [...]}`` bundle of such records,
* a ``repro.obs/1`` span dump (``dump_json``), grouped by each span's
  ``trace_id`` tag,

and prints, per trace: the stage-latency table (share of end-to-end
seconds), then the **critical path** — the chain from the request root
span down through, at every level, the child that finished last.  The
deepest name on that chain is where the request's tail latency lives;
everything off the chain overlapped with it and was free.

Usage::

    python tools/trace_critical_path.py trace.json [--trace-id ID] [--top N]

``-`` reads stdin, handy straight off the debug endpoint::

    curl -s localhost:9100/debug/traces/<id> | python tools/trace_critical_path.py -
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.report import format_table
from repro.obs.rtrace import STAGES, RequestTrace
from repro.obs.tracer import Span


def load_traces(doc: dict) -> list[RequestTrace]:
    """Normalise any supported input document to RequestTrace records."""
    if "traces" in doc:
        return [RequestTrace.from_dict(d) for d in doc["traces"]]
    if doc.get("format") == "repro.obs/1":
        return _from_span_dump(doc)
    if "trace_id" in doc:
        return [RequestTrace.from_dict(doc)]
    raise ValueError(
        "unrecognised input: expected a trace record, a {'traces': [...]} "
        "bundle, or a repro.obs/1 span dump"
    )


def _from_span_dump(doc: dict) -> list[RequestTrace]:
    """Group a flat span dump into one pseudo-record per trace_id tag."""
    groups: dict[str, list[Span]] = {}
    for d in doc.get("spans", []):
        span = Span.from_dict(d)
        groups.setdefault(str(span.tags.get("trace_id", "?")), []).append(span)
    records = []
    for trace_id, spans in groups.items():
        seconds = max(s.end for s in spans) - min(s.start for s in spans)
        stages = {
            s.name[len("rtrace."):]: s.duration
            for s in spans
            if s.name.startswith("rtrace.") and s.name[len("rtrace."):] in STAGES
        }
        records.append(
            RequestTrace(
                trace_id=trace_id,
                request_id=0,
                sampled=True,
                outcome="?",
                seconds=seconds,
                kept="dump",
                stages=stages,
                spans=spans,
            )
        )
    return records


def critical_path(spans: list[Span]) -> list[tuple[Span, float]]:
    """The root-to-leaf chain through the latest-finishing child.

    Returns ``(span, self_seconds)`` pairs where *self_seconds* is the
    span's duration not covered by its own latest-finishing child — the
    wall-clock that stage itself was the bottleneck for.
    """
    if not spans:
        return []
    by_id = {s.span_id: s for s in spans}
    children: dict[int | None, list[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    roots = children.get(None, [])
    node = max(roots, key=lambda s: s.duration, default=None)
    if node is None:
        return []
    path = []
    while node is not None:
        kids = children.get(node.span_id, [])
        nxt = max(kids, key=lambda s: s.end, default=None)
        path.append((node, node.duration - (nxt.duration if nxt else 0.0)))
        node = nxt
    return path


def render(trace: RequestTrace) -> str:
    out = [
        f"trace {trace.trace_id}  outcome={trace.outcome} kept={trace.kept} "
        f"seconds={trace.seconds:.6f} retries={trace.retries} "
        f"pids={','.join(map(str, trace.pids)) or '-'}"
    ]
    total = trace.seconds or sum(trace.stages.values()) or 1.0
    rows = [
        [name, f"{trace.stages[name]:.6f}", f"{100.0 * trace.stages[name] / total:.1f}%"]
        for name in (*STAGES, *sorted(set(trace.stages) - set(STAGES)))
        if name in trace.stages
    ]
    if rows:
        out.append(format_table(["stage", "seconds", "share"], rows, "stage latency"))
    path = critical_path(trace.spans)
    if path:
        out.append("critical path (latest-finishing child at each level):")
        for depth, (span, self_s) in enumerate(path):
            pid = span.tags.get("pid", "?")
            out.append(
                f"  {'  ' * depth}{span.name}  dur={span.duration:.6f}s "
                f"self={self_s:.6f}s pid={pid}"
            )
    elif not trace.sampled:
        out.append("(tail-kept record: stage timings only, no spans)")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace JSON file, or - for stdin")
    parser.add_argument("--trace-id", help="analyze only this trace id")
    parser.add_argument(
        "--top", type=int, default=5, help="slowest traces to show (default 5)"
    )
    args = parser.parse_args(argv)
    raw = sys.stdin.read() if args.path == "-" else Path(args.path).read_text()
    traces = load_traces(json.loads(raw))
    if args.trace_id is not None:
        traces = [t for t in traces if t.trace_id == args.trace_id]
        if not traces:
            print(f"trace id {args.trace_id} not found", file=sys.stderr)
            return 1
    traces.sort(key=lambda t: t.seconds, reverse=True)
    for trace in traces[: args.top]:
        print(render(trace))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
