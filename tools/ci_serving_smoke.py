#!/usr/bin/env python
"""CI smoke check: the batching gateway coalesces and never drops a future.

Spins up a small mock-backend :class:`BatchedCloudService`, fires
concurrent closed-loop clients at it, and asserts — from counters, not
timing, so CI machine noise cannot flake it — that

* every submitted request resolved with the correct scores
  (bit-identical to the serial classification of the same ciphertexts),
* the scheduler genuinely coalesced (mean ``serving.batch.size`` > 1),
* the bookkeeping balances: completed == submitted, empty queue,
  and the ``serving.requests`` / batch-size counters agree.

Exits non-zero with the offending numbers.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.henn.backend import MockBackend
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import BatchedCloudService, Client, CloudService
from repro.obs.metrics import get_registry

CLIENTS = 8
REQUESTS_PER_CLIENT = 6
SHAPE = (1, 6, 6)


def build_layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), rng.uniform(-0.1, 0.1, 2)),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 32)), rng.uniform(-0.1, 0.1, 10)),
    ]


def main() -> int:
    layers = build_layers()
    backend = MockBackend(batch=64, levels=6)
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    gateway = BatchedCloudService(
        backend, layers, SHAPE, max_batch_slots=16, max_wait_ms=5.0
    )

    images = np.random.default_rng(1).uniform(0, 1, (CLIENTS, 1, 6, 6))
    total = CLIENTS * REQUESTS_PER_CLIENT
    resolved = [0] * CLIENTS
    failures: list[str] = []
    lock = threading.Lock()

    def client_loop(c: int) -> None:
        enc = client.encrypt_request(images[c : c + 1])
        want = client.decrypt_response(serial.classify_encrypted(enc), batch=1)
        for _ in range(REQUESTS_PER_CLIENT):
            response = gateway.try_classify(enc, count=1)
            with lock:
                resolved[c] += 1
                if not response.ok:
                    failures.append(f"client {c}: {response.error}")
                elif not np.array_equal(
                    client.decrypt_response(response.scores, batch=1), want
                ):
                    failures.append(f"client {c}: batched scores != serial scores")

    threads = [threading.Thread(target=client_loop, args=(c,)) for c in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    wedged = [t for t in threads if t.is_alive()]

    stats = gateway.scheduler.stats()
    gateway.close()

    reg = get_registry()
    batch_size = reg.histogram("serving.batch.size")
    completed_ok = reg.counter("henn.requests", {"outcome": "ok"}).value

    print(
        f"submitted={total} resolved={sum(resolved)} "
        f"completed={stats['requests_completed']} batches={stats['batches']} "
        f"mean_batch={stats['mean_batch_size']:.2f} queue={stats['queue_depth']}"
    )

    ok = True
    if wedged:
        print(f"FAIL: {len(wedged)} client threads never got an answer (dropped future?)")
        ok = False
    if failures:
        for f in failures[:10]:
            print(f"FAIL: {f}")
        ok = False
    if sum(resolved) != total:
        print(f"FAIL: {sum(resolved)}/{total} requests resolved")
        ok = False
    if stats["requests_completed"] != total:
        print(f"FAIL: scheduler completed {stats['requests_completed']}/{total}")
        ok = False
    if stats["queue_depth"] != 0:
        print(f"FAIL: {stats['queue_depth']} requests stranded in the queue")
        ok = False
    # the serial references go through classify_encrypted, which does
    # not count requests: only the gateway's requests appear here
    if completed_ok != total:
        print(f"FAIL: henn.requests{{outcome=ok}} = {completed_ok}, expected {total}")
        ok = False
    if not stats["mean_batch_size"] > 1.0:
        print(
            f"FAIL: mean batch size {stats['mean_batch_size']:.2f} — "
            "the gateway never coalesced concurrent requests"
        )
        ok = False
    if batch_size.count != stats["batches"]:
        print(
            f"FAIL: serving.batch.size has {batch_size.count} observations "
            f"for {stats['batches']} batches"
        )
        ok = False
    if ok:
        print("OK: all futures resolved, batching active, scores bit-identical to serial")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
