#!/usr/bin/env python
"""CI smoke check: the batching gateway coalesces and never drops a future.

Spins up a small mock-backend :class:`BatchedCloudService`, fires
concurrent closed-loop clients at it, and asserts — from counters, not
timing, so CI machine noise cannot flake it — that

* every submitted request resolved with the correct scores
  (bit-identical to the serial classification of the same ciphertexts),
* the scheduler genuinely coalesced (mean ``serving.batch.size`` > 1),
* the bookkeeping balances: completed == submitted, empty queue,
  and the ``serving.requests`` / batch-size counters agree.

A second check targets the lane-packed CKKS-RNS path: a warm packed
batch of B images must perform exactly the B=1 number of conv / SLAF /
dense evaluations (one inner-backend call per layer operation, not B),
zero fresh plaintext encodes (``plan.encode.fresh``), and advance the
``serving.pack.pad_slots`` counter on ragged batches.

Exits non-zero with the offending numbers.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksRnsBackend, MockBackend
from repro.henn.inference import HeInferenceEngine
from repro.henn.layers import HeConv2d, HeFlatten, HeLinear, HePoly
from repro.henn.protocol import BatchedCloudService, Client, CloudService
from repro.obs.metrics import get_registry
from repro.serving import serving_backend_for

CLIENTS = 8
REQUESTS_PER_CLIENT = 6
SHAPE = (1, 6, 6)


def build_layers():
    rng = np.random.default_rng(0)
    return [
        HeConv2d(rng.uniform(-0.5, 0.5, (2, 1, 3, 3)), rng.uniform(-0.1, 0.1, 2)),
        HePoly(np.array([0.1, 0.5, 0.25])),
        HeFlatten(),
        HeLinear(rng.uniform(-0.3, 0.3, (10, 32)), rng.uniform(-0.1, 0.1, 10)),
    ]


def packed_opcount_check() -> int:
    """Lane packing on CKKS-RNS: per-layer op counts flat in batch size.

    Counts actual inner-backend calls (``weighted_sum_encoded`` for
    conv/dense taps, ``poly_eval_many`` for the SLAF) through a warm
    packed engine and asserts a B=4 batch issues exactly as many as a
    B=1 batch — the whole point of slot packing.  Also count-asserts
    the warm path performs zero fresh plaintext encodes and that ragged
    batches advance ``serving.pack.pad_slots``.
    """
    layers = build_layers()
    backend = CkksRnsBackend(
        CkksRnsParams(
            n=128,
            moduli_bits=(36, 26, 26, 26, 26, 26),
            scale_bits=26,
            special_bits=45,
            hw=16,
        ),
        seed=0,
    )
    engine = HeInferenceEngine(serving_backend_for(backend), layers, SHAPE)
    images = np.random.default_rng(2).uniform(0, 1, (4, 1, 6, 6))

    calls = {"weighted_sum_encoded": 0, "poly_eval_many": 0}
    for name in calls:
        original = getattr(backend, name)

        def counted(*args, _original=original, _name=name, **kwargs):
            calls[_name] += 1
            return _original(*args, **kwargs)

        setattr(backend, name, counted)

    reg = get_registry()

    def run_batch(n_requests: int) -> dict[str, int]:
        requests = [engine.encrypt_images(images[i : i + 1]) for i in range(n_requests)]
        for name in calls:
            calls[name] = 0
        batch = engine.assemble_batch(requests, [1] * n_requests)
        scores = engine.run_encrypted(batch)
        engine.split_scores(scores, [1] * n_requests)
        return dict(calls)

    run_batch(1)  # warm-up: memoizes the runtime scalar encodes
    fresh_before = reg.counter("plan.encode.fresh").value
    pad_before = reg.counter("serving.pack.pad_slots").value
    serial_ops = run_batch(1)
    packed_ops = run_batch(4)
    ragged_ops = run_batch(3)  # 3 slots pad to 4: ragged final batch
    fresh_delta = reg.counter("plan.encode.fresh").value - fresh_before
    pad_delta = reg.counter("serving.pack.pad_slots").value - pad_before

    print(
        f"packed opcounts: B=1 {serial_ops} B=4 {packed_ops} B=3 {ragged_ops} "
        f"fresh_encodes={fresh_delta} pad_slots={pad_delta}"
    )

    ok = True
    if any(v == 0 for v in serial_ops.values()):
        print(f"FAIL: op counters never fired: {serial_ops}")
        ok = False
    if packed_ops != serial_ops or ragged_ops != serial_ops:
        print(
            f"FAIL: packed batch op counts scale with B — B=1 {serial_ops}, "
            f"B=4 {packed_ops}, B=3 {ragged_ops}; lane packing must evaluate "
            "each layer operation once per batch"
        )
        ok = False
    if fresh_delta != 0:
        print(f"FAIL: warm packed inference performed {fresh_delta} fresh encodes")
        ok = False
    if pad_delta != 1:
        print(f"FAIL: serving.pack.pad_slots advanced by {pad_delta}, expected 1")
        ok = False
    if ok:
        print("OK: packed op counts flat in B, zero warm encodes, pad waste metered")
    return 0 if ok else 1


def main() -> int:
    layers = build_layers()
    backend = MockBackend(batch=64, levels=6)
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    gateway = BatchedCloudService(
        backend, layers, SHAPE, max_batch_slots=16, max_wait_ms=5.0
    )

    images = np.random.default_rng(1).uniform(0, 1, (CLIENTS, 1, 6, 6))
    total = CLIENTS * REQUESTS_PER_CLIENT
    resolved = [0] * CLIENTS
    failures: list[str] = []
    lock = threading.Lock()

    def client_loop(c: int) -> None:
        enc = client.encrypt_request(images[c : c + 1])
        want = client.decrypt_response(serial.classify_encrypted(enc), batch=1)
        for _ in range(REQUESTS_PER_CLIENT):
            response = gateway.try_classify(enc, count=1)
            with lock:
                resolved[c] += 1
                if not response.ok:
                    failures.append(f"client {c}: {response.error}")
                elif not np.array_equal(
                    client.decrypt_response(response.scores, batch=1), want
                ):
                    failures.append(f"client {c}: batched scores != serial scores")

    threads = [threading.Thread(target=client_loop, args=(c,)) for c in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    wedged = [t for t in threads if t.is_alive()]

    stats = gateway.scheduler.stats()
    gateway.close()

    reg = get_registry()
    batch_size = reg.histogram("serving.batch.size")
    completed_ok = reg.counter("henn.requests", {"outcome": "ok"}).value

    print(
        f"submitted={total} resolved={sum(resolved)} "
        f"completed={stats['requests_completed']} batches={stats['batches']} "
        f"mean_batch={stats['mean_batch_size']:.2f} queue={stats['queue_depth']}"
    )

    ok = True
    if wedged:
        print(f"FAIL: {len(wedged)} client threads never got an answer (dropped future?)")
        ok = False
    if failures:
        for f in failures[:10]:
            print(f"FAIL: {f}")
        ok = False
    if sum(resolved) != total:
        print(f"FAIL: {sum(resolved)}/{total} requests resolved")
        ok = False
    if stats["requests_completed"] != total:
        print(f"FAIL: scheduler completed {stats['requests_completed']}/{total}")
        ok = False
    if stats["queue_depth"] != 0:
        print(f"FAIL: {stats['queue_depth']} requests stranded in the queue")
        ok = False
    # the serial references go through classify_encrypted, which does
    # not count requests: only the gateway's requests appear here
    if completed_ok != total:
        print(f"FAIL: henn.requests{{outcome=ok}} = {completed_ok}, expected {total}")
        ok = False
    if not stats["mean_batch_size"] > 1.0:
        print(
            f"FAIL: mean batch size {stats['mean_batch_size']:.2f} — "
            "the gateway never coalesced concurrent requests"
        )
        ok = False
    if batch_size.count != stats["batches"]:
        print(
            f"FAIL: serving.batch.size has {batch_size.count} observations "
            f"for {stats['batches']} batches"
        )
        ok = False
    if ok:
        print("OK: all futures resolved, batching active, scores bit-identical to serial")
    if ok:
        return packed_opcount_check()
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
