#!/usr/bin/env python
"""Check relative links (and their anchors) in the repo's Markdown files.

Scans every ``*.md`` under the repo root (skipping build/artifact
directories), extracts inline links ``[text](target)``, and verifies:

* relative file targets exist on disk;
* ``#anchor`` fragments resolve to a heading in the target file, using
  GitHub's slug rules (lowercase, punctuation stripped, spaces to
  dashes, ``-<n>`` suffixes for duplicates).

External links (``http(s)://``, ``mailto:``) are not fetched — this is
an offline structural check. Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".venv", "node_modules", "bench_artifacts", "__pycache__", ".pytest_cache"}

#: Inline Markdown links; deliberately simple — no reference-style links
#: are used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's heading-to-anchor slug, with duplicate numbering."""
    # strip inline markup: `code`, **bold**, *em*, [text](link)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    slug = text.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def anchors_of(md_path: Path) -> set[str]:
    seen: dict[str, int] = {}
    out: set[str] = set()
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            out.add(github_slug(m.group(1), seen))
    return out


def links_of(md_path: Path) -> list[str]:
    out: list[str] = []
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        out.extend(LINK_RE.findall(line))
    return out


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check(root: Path) -> list[str]:
    errors: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for md in iter_markdown(root):
        for target in links_of(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            if path_part and not dest.exists():
                errors.append(f"{md.relative_to(root)}: broken link -> {target}")
                continue
            if fragment:
                if dest.suffix != ".md" or dest.is_dir():
                    continue  # anchors only checked inside Markdown files
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment not in anchor_cache[dest]:
                    errors.append(f"{md.relative_to(root)}: missing anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    errors = check(root)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    n = sum(1 for _ in iter_markdown(root))
    print(f"docs link check OK ({n} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
