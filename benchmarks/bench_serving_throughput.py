"""Serving throughput — dynamic batching vs. one-request-per-call.

The serving claim behind :class:`repro.henn.protocol.BatchedCloudService`:
a CKKS evaluation costs nearly the same wall-clock however many SIMD
slots are filled, so coalescing independent requests into slot-packed
batches multiplies throughput at high offered concurrency.  This bench
measures it on the mock backend (plaintext slot semantics, so the
numbers isolate the *scheduling* win from HE arithmetic cost):

* **serial** — a plain :class:`~repro.henn.protocol.CloudService`, one
  request at a time (the pre-gateway behaviour).
* **batched** — the gateway under 1x / 4x / 16x concurrent closed-loop
  clients (each waits for its response before sending the next).

Reported per mode: images/sec, request latency p50/p99, and the mean
coalesced batch size.  The record's explicit ``results`` map carries
only the latency seconds (rates must not enter the regression compare,
where smaller means better).

All modes here run with request tracing **off** (no ``trace_policy``),
which is also the gateway default: ``RequestTracer.mint`` then returns
``None`` after one flag check, every trace branch on the scheduler and
cluster path is an ``is not None`` test, and no span, clock read or
allocation happens per request — the tracing overhead on these numbers
is orders of magnitude below this bench's machine noise (<1%).
"""

from __future__ import annotations

import os
import threading
import time

from conftest import save_record

from repro.bench.workloads import make_engine
from repro.henn.inference import HeInferenceEngine
from repro.henn.protocol import (
    BatchedCloudService,
    Client,
    CloudService,
    ClusteredCloudService,
)
from repro.obs.metrics import get_registry
from repro.serving import MemberwiseBackend, ShedPolicy, SlotPackedBackend

#: Requests each closed-loop client issues per measured run.
REQUESTS_PER_CLIENT = 8
CONCURRENCIES = (1, 4, 16)
MAX_BATCH_SLOTS = 32
MAX_WAIT_MS = 2.0

#: Cluster scaling run (PR 7): 64x closed-loop clients against 1 vs 3 workers.
CLUSTER_CLIENTS = 64
CLUSTER_REQUESTS_PER_CLIENT = 4
CLUSTER_WORKERS = (1, 3)
CLUSTER_BATCH_SLOTS = 16

#: Lane-packed sweep (PR 8): batch sizes for the CKKS-RNS amortization run.
PACKED_BATCHES = (1, 4, 16)


def _latencies_to_row(mode, concurrency, latencies, elapsed, batch_mean):
    n = len(latencies)
    ordered = sorted(latencies)
    p50 = ordered[max(0, (n + 1) // 2 - 1)]
    p99 = ordered[max(0, -(-99 * n // 100) - 1)]
    return [
        mode,
        concurrency,
        n,
        n / elapsed,
        p50 * 1e3,
        p99 * 1e3,
        batch_mean,
    ], (p50, p99)


def _run_clients(concurrency, issue, requests_per_client=REQUESTS_PER_CLIENT):
    """Closed-loop load: per-request latencies + wall-clock elapsed."""
    latencies: list[float] = []
    lock = threading.Lock()

    def client_loop():
        mine = []
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            issue()
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client_loop) for _ in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, time.perf_counter() - t0


def test_serving_throughput(benchmark, cnn1_models, preset):
    backend = make_engine(cnn1_models, "mock").backend
    client = Client(backend, cnn1_models.input_shape)
    image = cnn1_models.x_test[:1]

    rows, results = [], {}

    def measure():
        # serial baseline: the pre-gateway service, one request per call
        serial = CloudService(backend, cnn1_models.he_layers, cnn1_models.input_shape)
        serial.try_classify(client.encrypt_request(image))  # warm the plan caches

        def issue_serial():
            response = serial.try_classify(client.encrypt_request(image))
            assert response.ok, response.error

        latencies, elapsed = _run_clients(1, issue_serial)
        row, (p50, p99) = _latencies_to_row("serial", 1, latencies, elapsed, 1.0)
        rows.append(row)
        results["serial_p50_seconds"] = p50
        results["serial_p99_seconds"] = p99
        serial_rate = row[3]

        # batched gateway under increasing offered concurrency
        for concurrency in CONCURRENCIES:
            gateway = BatchedCloudService(
                backend,
                cnn1_models.he_layers,
                cnn1_models.input_shape,
                max_batch_slots=MAX_BATCH_SLOTS,
                max_wait_ms=MAX_WAIT_MS,
                max_queue_depth=4 * MAX_BATCH_SLOTS,
            )
            gateway.try_classify(client.encrypt_request(image), count=1)  # warm

            def issue_batched(gw=gateway):
                response = gw.try_classify(client.encrypt_request(image), count=1)
                assert response.ok, response.error

            latencies, elapsed = _run_clients(concurrency, issue_batched)
            stats = gateway.scheduler.stats()
            gateway.close()
            row, (p50, p99) = _latencies_to_row(
                "batched", concurrency, latencies, elapsed, stats["mean_batch_size"]
            )
            rows.append(row)
            results[f"batched_{concurrency}x_p50_seconds"] = p50
            results[f"batched_{concurrency}x_p99_seconds"] = p99
            if concurrency == max(CONCURRENCIES):
                speedup = row[3] / serial_rate
                rows.append(["speedup at 16x (vs serial)", "", "", speedup, "", "", ""])
                assert speedup >= 4.0, (
                    f"batched throughput only {speedup:.2f}x serial at "
                    f"{concurrency}x concurrency (acceptance floor: 4x)"
                )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    get_registry().reset()  # serving histograms from this bench stay local
    save_record(
        "serving",
        ["mode", "clients", "requests", "images/sec", "p50 ms", "p99 ms", "mean batch"],
        rows,
        f"SERVING — dynamic batching throughput, mock backend (preset={preset.name})",
        results=results,
    )


def test_serving_packed_amortized(benchmark, cnn1_models, preset):
    """Lane packing on the real CKKS-RNS scheme (PR 8): amortized
    per-image latency vs. batch size.

    The memberwise fallback fans every primitive out per member (and
    loses the position-packed BSGS), so its per-image cost is flat in
    B; :class:`SlotPackedBackend` stacks B requests along a lane axis
    and issues one inner call per operation, so per-op Python/NumPy
    overhead amortizes across the batch.  The arithmetic itself is
    *exact* per lane and therefore linear in B — only overhead
    amortizes — so the single-core floor asserted here is 1.05x; the
    measured gain is ~1.2-1.6x (see docs/PERFORMANCE.md for why the >= 4x
    SIMD win requires native slot concatenation, demonstrated on the
    mock backend above, or multi-core residue executors).  Timings
    cover the server side (assemble -> evaluate -> split), warm plan
    caches.
    """
    backend = make_engine(cnn1_models, "ckks-rns").backend
    layers = cnn1_models.he_layers
    shape = cnn1_models.input_shape
    image = cnn1_models.x_test[:1]
    repeats = max(2, preset.latency_repeats)

    memberwise = HeInferenceEngine(MemberwiseBackend(backend), layers, shape)
    packed = HeInferenceEngine(SlotPackedBackend(backend), layers, shape)

    def run_once(engine, b):
        requests = [engine.encrypt_images(image) for _ in range(b)]
        counts = [1] * b
        t0 = time.perf_counter()
        batch = engine.assemble_batch(requests, counts)
        scores = engine.run_encrypted(batch)
        engine.split_scores(scores, counts)
        return time.perf_counter() - t0

    rows, results = [], {}

    def measure():
        run_once(memberwise, 1)  # warm: compiles plans, memoizes encodes
        run_once(packed, 1)

        member_s = min(run_once(memberwise, 1) for _ in range(repeats))
        rows.append(["memberwise", 1, member_s * 1e3, member_s * 1e3])
        results["memberwise_b1_per_image_seconds"] = member_s

        for b in PACKED_BATCHES:
            total = min(run_once(packed, b) for _ in range(repeats))
            amortized = total / b
            rows.append(["packed", b, total * 1e3, amortized * 1e3])
            results[f"packed_b{b}_per_image_seconds"] = amortized
            if b == max(PACKED_BATCHES):
                gain = member_s / amortized
                rows.append([f"amortization at B={b} (vs memberwise)", "", "", gain])
                assert gain >= 1.05, (
                    f"packed B={b} amortized only {gain:.2f}x better than "
                    "B=1 memberwise (single-core exact-packing floor: 1.05x; "
                    "typical is ~1.5x, tracked by tools/bench_compare.py)"
                )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    get_registry().reset()  # serving counters from this bench stay local
    save_record(
        "serving_packed",
        ["mode", "B", "batch ms", "per-image ms"],
        rows,
        "SERVING PACKED — lane-packed amortization, CKKS-RNS backend "
        f"(preset={preset.name})",
        results=results,
    )


def test_serving_cluster_scaling(benchmark, cnn1_models, preset):
    """Worker-pool scaling (PR 7): 3 process-backed workers vs 1 under
    64x closed-loop clients.

    Each batch evaluates in a forked worker process, so with >= 3 cores
    three workers overlap three batches and throughput must reach at
    least 2x the single-worker rate (the PR 7 acceptance floor).  On
    core-starved machines (this includes 1-2 core CI runners) the run
    is core-bound — the record still captures the latencies, but the
    scaling assertion drops to a sanity floor: the cluster must not
    *crater* throughput versus one worker.
    """
    backend = make_engine(cnn1_models, "mock").backend
    client = Client(backend, cnn1_models.input_shape)
    image = cnn1_models.x_test[:1]
    cores = os.cpu_count() or 1

    rows, results, rates = [], {}, {}

    def measure():
        for workers in CLUSTER_WORKERS:
            gateway = ClusteredCloudService(
                backend,
                cnn1_models.he_layers,
                cnn1_models.input_shape,
                workers=workers,
                max_batch_slots=CLUSTER_BATCH_SLOTS,
                max_wait_ms=MAX_WAIT_MS,
                max_queue_depth=8 * CLUSTER_CLIENTS,
                # Measuring capacity, not admission control: keep the
                # tiered ladder out of the way (the queue never fills
                # past ~12% here, so every request is plainly accepted).
                shed_policy=ShedPolicy(saturation_weight=0.0),
            )
            gateway.try_classify(client.encrypt_request(image), count=1)  # warm

            def issue(gw=gateway):
                response = gw.try_classify(client.encrypt_request(image), count=1)
                assert response.ok, response.error

            latencies, elapsed = _run_clients(
                CLUSTER_CLIENTS, issue, CLUSTER_REQUESTS_PER_CLIENT
            )
            stats = gateway.scheduler.stats()
            gateway.close()
            row, (p50, p99) = _latencies_to_row(
                f"cluster-{workers}w",
                CLUSTER_CLIENTS,
                latencies,
                elapsed,
                stats["mean_batch_size"],
            )
            rows.append(row)
            rates[workers] = row[3]
            results[f"cluster_{workers}w_p50_seconds"] = p50
            results[f"cluster_{workers}w_p99_seconds"] = p99

        scaling = rates[3] / rates[1]
        rows.append([f"scaling 3w/1w ({cores} cores)", "", "", scaling, "", "", ""])
        floor = 2.0 if cores >= 3 else 0.3
        assert scaling >= floor, (
            f"3-worker throughput only {scaling:.2f}x one worker on {cores} "
            f"cores (acceptance floor: {floor}x)"
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    get_registry().reset()  # serving histograms from this bench stay local
    save_record(
        "serving_cluster",
        ["mode", "clients", "requests", "images/sec", "p50 ms", "p99 ms", "mean batch"],
        rows,
        "SERVING CLUSTER — worker-pool scaling, 64x closed-loop clients, "
        f"mock backend (preset={preset.name}, cores={cores})",
        results=results,
    )
