"""Serving throughput — dynamic batching vs. one-request-per-call.

The serving claim behind :class:`repro.henn.protocol.BatchedCloudService`:
a CKKS evaluation costs nearly the same wall-clock however many SIMD
slots are filled, so coalescing independent requests into slot-packed
batches multiplies throughput at high offered concurrency.  This bench
measures it on the mock backend (plaintext slot semantics, so the
numbers isolate the *scheduling* win from HE arithmetic cost):

* **serial** — a plain :class:`~repro.henn.protocol.CloudService`, one
  request at a time (the pre-gateway behaviour).
* **batched** — the gateway under 1x / 4x / 16x concurrent closed-loop
  clients (each waits for its response before sending the next).

Reported per mode: images/sec, request latency p50/p99, and the mean
coalesced batch size.  The record's explicit ``results`` map carries
only the latency seconds (rates must not enter the regression compare,
where smaller means better).
"""

from __future__ import annotations

import os
import threading
import time

from conftest import save_record

from repro.bench.workloads import make_engine
from repro.henn.protocol import (
    BatchedCloudService,
    Client,
    CloudService,
    ClusteredCloudService,
)
from repro.obs.metrics import get_registry
from repro.serving import ShedPolicy

#: Requests each closed-loop client issues per measured run.
REQUESTS_PER_CLIENT = 8
CONCURRENCIES = (1, 4, 16)
MAX_BATCH_SLOTS = 32
MAX_WAIT_MS = 2.0

#: Cluster scaling run (PR 7): 64x closed-loop clients against 1 vs 3 workers.
CLUSTER_CLIENTS = 64
CLUSTER_REQUESTS_PER_CLIENT = 4
CLUSTER_WORKERS = (1, 3)
CLUSTER_BATCH_SLOTS = 16


def _latencies_to_row(mode, concurrency, latencies, elapsed, batch_mean):
    n = len(latencies)
    ordered = sorted(latencies)
    p50 = ordered[max(0, (n + 1) // 2 - 1)]
    p99 = ordered[max(0, -(-99 * n // 100) - 1)]
    return [
        mode,
        concurrency,
        n,
        n / elapsed,
        p50 * 1e3,
        p99 * 1e3,
        batch_mean,
    ], (p50, p99)


def _run_clients(concurrency, issue, requests_per_client=REQUESTS_PER_CLIENT):
    """Closed-loop load: per-request latencies + wall-clock elapsed."""
    latencies: list[float] = []
    lock = threading.Lock()

    def client_loop():
        mine = []
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            issue()
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client_loop) for _ in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, time.perf_counter() - t0


def test_serving_throughput(benchmark, cnn1_models, preset):
    backend = make_engine(cnn1_models, "mock").backend
    client = Client(backend, cnn1_models.input_shape)
    image = cnn1_models.x_test[:1]

    rows, results = [], {}

    def measure():
        # serial baseline: the pre-gateway service, one request per call
        serial = CloudService(backend, cnn1_models.he_layers, cnn1_models.input_shape)
        serial.try_classify(client.encrypt_request(image))  # warm the plan caches

        def issue_serial():
            response = serial.try_classify(client.encrypt_request(image))
            assert response.ok, response.error

        latencies, elapsed = _run_clients(1, issue_serial)
        row, (p50, p99) = _latencies_to_row("serial", 1, latencies, elapsed, 1.0)
        rows.append(row)
        results["serial_p50_seconds"] = p50
        results["serial_p99_seconds"] = p99
        serial_rate = row[3]

        # batched gateway under increasing offered concurrency
        for concurrency in CONCURRENCIES:
            gateway = BatchedCloudService(
                backend,
                cnn1_models.he_layers,
                cnn1_models.input_shape,
                max_batch_slots=MAX_BATCH_SLOTS,
                max_wait_ms=MAX_WAIT_MS,
                max_queue_depth=4 * MAX_BATCH_SLOTS,
            )
            gateway.try_classify(client.encrypt_request(image), count=1)  # warm

            def issue_batched(gw=gateway):
                response = gw.try_classify(client.encrypt_request(image), count=1)
                assert response.ok, response.error

            latencies, elapsed = _run_clients(concurrency, issue_batched)
            stats = gateway.scheduler.stats()
            gateway.close()
            row, (p50, p99) = _latencies_to_row(
                "batched", concurrency, latencies, elapsed, stats["mean_batch_size"]
            )
            rows.append(row)
            results[f"batched_{concurrency}x_p50_seconds"] = p50
            results[f"batched_{concurrency}x_p99_seconds"] = p99
            if concurrency == max(CONCURRENCIES):
                speedup = row[3] / serial_rate
                rows.append(["speedup at 16x (vs serial)", "", "", speedup, "", "", ""])
                assert speedup >= 4.0, (
                    f"batched throughput only {speedup:.2f}x serial at "
                    f"{concurrency}x concurrency (acceptance floor: 4x)"
                )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    get_registry().reset()  # serving histograms from this bench stay local
    save_record(
        "serving",
        ["mode", "clients", "requests", "images/sec", "p50 ms", "p99 ms", "mean batch"],
        rows,
        f"SERVING — dynamic batching throughput, mock backend (preset={preset.name})",
        results=results,
    )


def test_serving_cluster_scaling(benchmark, cnn1_models, preset):
    """Worker-pool scaling (PR 7): 3 process-backed workers vs 1 under
    64x closed-loop clients.

    Each batch evaluates in a forked worker process, so with >= 3 cores
    three workers overlap three batches and throughput must reach at
    least 2x the single-worker rate (the PR 7 acceptance floor).  On
    core-starved machines (this includes 1-2 core CI runners) the run
    is core-bound — the record still captures the latencies, but the
    scaling assertion drops to a sanity floor: the cluster must not
    *crater* throughput versus one worker.
    """
    backend = make_engine(cnn1_models, "mock").backend
    client = Client(backend, cnn1_models.input_shape)
    image = cnn1_models.x_test[:1]
    cores = os.cpu_count() or 1

    rows, results, rates = [], {}, {}

    def measure():
        for workers in CLUSTER_WORKERS:
            gateway = ClusteredCloudService(
                backend,
                cnn1_models.he_layers,
                cnn1_models.input_shape,
                workers=workers,
                max_batch_slots=CLUSTER_BATCH_SLOTS,
                max_wait_ms=MAX_WAIT_MS,
                max_queue_depth=8 * CLUSTER_CLIENTS,
                # Measuring capacity, not admission control: keep the
                # tiered ladder out of the way (the queue never fills
                # past ~12% here, so every request is plainly accepted).
                shed_policy=ShedPolicy(saturation_weight=0.0),
            )
            gateway.try_classify(client.encrypt_request(image), count=1)  # warm

            def issue(gw=gateway):
                response = gw.try_classify(client.encrypt_request(image), count=1)
                assert response.ok, response.error

            latencies, elapsed = _run_clients(
                CLUSTER_CLIENTS, issue, CLUSTER_REQUESTS_PER_CLIENT
            )
            stats = gateway.scheduler.stats()
            gateway.close()
            row, (p50, p99) = _latencies_to_row(
                f"cluster-{workers}w",
                CLUSTER_CLIENTS,
                latencies,
                elapsed,
                stats["mean_batch_size"],
            )
            rows.append(row)
            rates[workers] = row[3]
            results[f"cluster_{workers}w_p50_seconds"] = p50
            results[f"cluster_{workers}w_p99_seconds"] = p99

        scaling = rates[3] / rates[1]
        rows.append([f"scaling 3w/1w ({cores} cores)", "", "", scaling, "", "", ""])
        floor = 2.0 if cores >= 3 else 0.3
        assert scaling >= floor, (
            f"3-worker throughput only {scaling:.2f}x one worker on {cores} "
            f"cores (acceptance floor: {floor}x)"
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    get_registry().reset()  # serving histograms from this bench stay local
    save_record(
        "serving_cluster",
        ["mode", "clients", "requests", "images/sec", "p50 ms", "p99 ms", "mean batch"],
        rows,
        "SERVING CLUSTER — worker-pool scaling, 64x closed-loop clients, "
        f"mock backend (preset={preset.name}, cores={cores})",
        results=results,
    )
