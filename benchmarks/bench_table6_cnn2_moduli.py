"""Table VI — CNN2-HE-RNS latency across moduli configurations (1, 3..10).

Paper: k=1 (the non-RNS baseline) at 39.91 s, dropping to ~23 s for
k >= 3, minimum 22.46 s at k=9, uptick at k=10.  Row k=1 runs the
non-decomposed multiprecision convolution.
"""

from conftest import save_record

from repro.bench.tables import run_table6


def test_table6(benchmark, cnn2_models, preset):
    headers, rows = benchmark.pedantic(
        lambda: run_table6(cnn2_models), rounds=1, iterations=1
    )
    save_record(
        "table6",
        headers,
        rows,
        f"TABLE VI — CNN2-HE-RNS moduli sweep (preset={preset.name})",
    )
    ks = [r[0] for r in rows]
    assert ks == [1] + list(range(3, 11))
