"""Table II — CKKS-RNS security settings, validated against the HE standard."""

from conftest import save_record

from repro.bench.tables import table2_rows
from repro.ckksrns import CkksRnsParams


def test_table2(benchmark):
    params = CkksRnsParams.paper_table2()

    headers, rows = benchmark.pedantic(
        lambda: table2_rows(params), rounds=1, iterations=1
    )
    save_record("table2", headers, rows, "TABLE II — CKKS-RNS security settings")
    d = {r[0]: r[1] for r in rows}
    assert d["HE-standard OK"] is True
    assert d["log q"] == 366
