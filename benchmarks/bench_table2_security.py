"""Table II — CKKS-RNS security settings, validated against the HE standard."""

from conftest import save_artifact

from repro.bench.tables import format_table, table2_rows
from repro.ckksrns import CkksRnsParams


def test_table2(benchmark):
    params = CkksRnsParams.paper_table2()

    headers, rows = benchmark.pedantic(
        lambda: table2_rows(params), rounds=1, iterations=1
    )
    save_artifact("table2", format_table(headers, rows, "TABLE II — CKKS-RNS security settings"))
    d = {r[0]: r[1] for r in rows}
    assert d["HE-standard OK"] is True
    assert d["log q"] == 366
