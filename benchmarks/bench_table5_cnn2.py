"""Table V — CNN2-HE vs CNN2-HE-RNS: latency and accuracy.

Paper: 39.91 s -> 23.67 s (40.7% speed-up), accuracy 99.21 both rows.
"""

from conftest import save_record

from repro.bench.tables import run_table5


def test_table5(benchmark, cnn2_models, preset):
    headers, rows = benchmark.pedantic(
        lambda: run_table5(cnn2_models), rounds=1, iterations=1
    )
    save_record(
        "table5", headers, rows, f"TABLE V — CNN2 (preset={preset.name})"
    )
    he_row, rns_row = rows[0], rows[1]
    assert he_row[-1] == rns_row[-1], "accuracy parity violated"
    assert rns_row[4] < he_row[4], "RNS should be faster than multiprecision"
