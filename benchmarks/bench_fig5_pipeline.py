"""Fig. 5 — per-stage trace of the CNN-RNS pipeline.

Decompose -> parallel conv channels -> CRT recompose -> encrypted
activation / dense tail, with wall-clock per stage.

Run with ``REPRO_BENCH_TRACE=1`` to additionally emit
``bench_artifacts/fig5_trace.json`` and ``fig5_primitives.txt`` — the
per-primitive breakdown of the same run, from the ``repro.obs`` spans.
"""

from conftest import save_record, save_trace_artifact

from repro.bench.workloads import make_engine
from repro.henn.hybrid import HybridRnsEngine

#: Warm rounds per record; the kept trace is the fastest round's, the
#: same min-of-N convention as ``bench_plan_cache.py`` (single-shot
#: warm numbers swing ±20% on shared runners).
WARM_ROUNDS = 3


def test_fig5_stage_trace(benchmark, cnn1_models, preset):
    backend = make_engine(cnn1_models, "ckks-rns").backend
    engine = HybridRnsEngine(
        backend,
        cnn1_models.he_layers,
        cnn1_models.input_shape,
        k_moduli=3,
        total_bits=preset.sweep_total_bits,
    )

    def classify():
        return engine.classify(cnn1_models.x_test[:1])

    # First image pays the one-time costs (plan compile on construction,
    # plaintext-cache fills, key material); record it separately so the
    # regression gate tracks both regimes (docs/PERFORMANCE.md).
    classify()
    cold_total = engine.stages.total
    best = None
    for _ in range(WARM_ROUNDS - 1):
        classify()
        snap = (
            engine.stages.total,
            engine.stages.conv_stage,
            engine.stages.he_stage,
            engine.tail.trace.as_rows(),
        )
        if best is None or snap[0] < best[0]:
            best = snap
    benchmark.pedantic(classify, rounds=1, iterations=1)
    snap = (
        engine.stages.total,
        engine.stages.conv_stage,
        engine.stages.he_stage,
        engine.tail.trace.as_rows(),
    )
    if snap[0] < best[0]:
        best = snap
    total, conv_stage, he_stage, tail_rows = best
    rows = [
        ["RNS conv stage (decompose + k parallel convs + CRT)", conv_stage],
        ["encrypted tail (SLAF activations + dense layers)", he_stage],
        ["total", total],
        ["cold first-image total (cache fills included)", cold_total],
    ]
    # the engine's per-layer trace of the tail (fastest warm round)
    for name, secs in tail_rows:
        rows.append([f"  tail layer {name}", secs])
    save_record(
        "fig5",
        ["stage", "seconds"],
        rows,
        f"FIG 5 — CNN1-RNS pipeline trace (preset={preset.name})",
    )
    save_trace_artifact("fig5")
