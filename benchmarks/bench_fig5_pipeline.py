"""Fig. 5 — per-stage trace of the CNN-RNS pipeline.

Decompose -> parallel conv channels -> CRT recompose -> encrypted
activation / dense tail, with wall-clock per stage.

Run with ``REPRO_BENCH_TRACE=1`` to additionally emit
``bench_artifacts/fig5_trace.json`` and ``fig5_primitives.txt`` — the
per-primitive breakdown of the same run, from the ``repro.obs`` spans.
"""

from conftest import save_record, save_trace_artifact

from repro.bench.workloads import make_engine
from repro.henn.hybrid import HybridRnsEngine


def test_fig5_stage_trace(benchmark, cnn1_models, preset):
    backend = make_engine(cnn1_models, "ckks-rns").backend
    engine = HybridRnsEngine(
        backend,
        cnn1_models.he_layers,
        cnn1_models.input_shape,
        k_moduli=3,
        total_bits=preset.sweep_total_bits,
    )

    def classify():
        return engine.classify(cnn1_models.x_test[:1])

    # First image pays the one-time costs (plan compile on construction,
    # plaintext-cache fills, key material); record it separately so the
    # regression gate tracks both regimes (docs/PERFORMANCE.md).
    classify()
    cold_total = engine.stages.total
    benchmark.pedantic(classify, rounds=1, iterations=1)
    rows = [
        ["RNS conv stage (decompose + k parallel convs + CRT)", engine.stages.conv_stage],
        ["encrypted tail (SLAF activations + dense layers)", engine.stages.he_stage],
        ["total", engine.stages.total],
        ["cold first-image total (cache fills included)", cold_total],
    ]
    # the engine's per-layer trace of the tail
    for name, secs in engine.tail.trace.as_rows():
        rows.append([f"  tail layer {name}", secs])
    save_record(
        "fig5",
        ["stage", "seconds"],
        rows,
        f"FIG 5 — CNN1-RNS pipeline trace (preset={preset.name})",
    )
    save_trace_artifact("fig5")
