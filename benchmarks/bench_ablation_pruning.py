"""Ablation — weight pruning (Faster-CryptoNets, §IV related work).

Compiling with ``prune_below`` drops near-zero weights from the
homomorphic weighted sums; latency falls with sparsity while accuracy
degrades gracefully.  This regenerates that trade-off curve on CNN1.
"""

import numpy as np
from conftest import save_record

from repro.bench.tables import measure_engine_latency
from repro.bench.workloads import make_engine
from repro.henn.compiler import compile_model
from repro.henn.inference import HeInferenceEngine
from repro.henn.backend import MockBackend
from repro.henn.compiler import model_depth


def test_ablation_pruning(benchmark, cnn1_models, preset):
    rows = []
    for threshold in (0.0, 0.02, 0.05, 0.1):
        layers = compile_model(cnn1_models.slaf_model, prune_below=threshold)
        mock = MockBackend(batch=256, levels=model_depth(layers) + 1)
        eng = HeInferenceEngine(mock, layers, cnn1_models.input_shape)
        n = min(256, len(cnn1_models.y_test))
        acc = eng.accuracy(cnn1_models.x_test[:n], cnn1_models.y_test[:n])
        rns = make_engine(cnn1_models, "ckks-rns")
        rns.layers = layers
        lat = measure_engine_latency(rns, cnn1_models.x_test[:1], repeats=1).avg
        weights = np.concatenate(
            [l.weight.ravel() for l in layers if hasattr(l, "weight")]
        )
        sparsity = float((np.abs(weights) <= threshold).mean()) if threshold else 0.0
        rows.append([threshold, f"{sparsity:.0%}", lat, acc * 100])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_record(
        "ablation_pruning",
        ["prune threshold", "weights dropped", "latency (s)", "accuracy (%)"],
        rows,
        f"Pruning ablation on CNN1 (preset={preset.name})",
    )
    assert rows[-1][2] <= rows[0][2] * 1.05  # latency should not grow with pruning
