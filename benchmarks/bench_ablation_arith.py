"""Ablation — DESIGN.md §5.1: multiprecision (Kronecker) vs RNS (NTT)
polynomial multiplication across ring degrees.

This isolates the arithmetic-level source of the Tables III/V speed-up:
one negacyclic product in R_q with ~200-bit q, as big-int coefficients
vs as RNS channels.
"""

import numpy as np
import pytest
from conftest import save_record

from repro.nt.modarith import mulmod
from repro.nt.ntt import NttPlan
from repro.nt.polynomial import PolyRing
from repro.nt.primes import gen_ntt_primes
from repro.utils.timing import Timer


def _rns_mul(plans, stacks_a, stacks_b):
    out = []
    for plan, a, b in zip(plans, stacks_a, stacks_b):
        out.append(plan.inverse(mulmod(plan.forward(a), plan.forward(b), plan.p)))
    return out


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_ablation_poly_mul(benchmark, n):
    rng = np.random.default_rng(0)
    primes = gen_ntt_primes([26] * 8, n)
    q = 1
    for p in primes:
        q *= p
    ring = PolyRing(n, q)
    a = ring.random_uniform(rng)
    b = ring.random_uniform(rng)
    plans = [NttPlan(n, p) for p in primes]
    sa = [np.mod(a.astype(object), p).astype(np.int64) for p in primes]
    sb = [np.mod(b.astype(object), p).astype(np.int64) for p in primes]

    with Timer() as t_mp:
        ring.mul(a, b)
    t_rns = benchmark(lambda: _rns_mul(plans, sa, sb))  # noqa: F841 (timed by harness)

    with Timer() as t_rns2:
        _rns_mul(plans, sa, sb)
    save_record(
        f"ablation_arith_n{n}",
        ["representation", "one product (ms)"],
        [
            ["multiprecision big-int (Kronecker)", t_mp.elapsed * 1e3],
            ["RNS channels (8 x 26-bit, NTT)", t_rns2.elapsed * 1e3],
            ["speed-up", t_mp.elapsed / max(t_rns2.elapsed, 1e-9)],
        ],
        f"Polynomial product in R_q, n={n}, log q ~ 208",
    )
