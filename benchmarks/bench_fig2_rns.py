"""Fig. 2 — RNS decomposition micro-benchmarks.

Measures the decompose / componentwise-op / recompose pipeline on an
image-sized integer tensor, demonstrating that channel arithmetic is
word-sized and the CRT bracket is where the (small) overhead lives.
"""

import numpy as np
from conftest import save_record

from repro.rns import RnsBase, channel_mul, rns_decompose, rns_recompose_signed
from repro.utils.timing import Timer


def test_fig2_decompose_roundtrip(benchmark, rng=np.random.default_rng(0)):
    base = RnsBase.from_bit_sizes([26, 26, 26], 64)
    x = rng.integers(-(2**40), 2**40, (64, 28, 28))

    def roundtrip():
        st = rns_decompose(x, base)
        st = channel_mul(st, st, base)
        return rns_recompose_signed(st, base)

    benchmark(roundtrip)

    rows = []
    for stage, fn in [
        ("decompose", lambda: rns_decompose(x, base)),
        ("channel mul", lambda st=rns_decompose(x, base): channel_mul(st, st, base)),
        ("recompose", lambda st=rns_decompose(x, base): rns_recompose_signed(st, base)),
    ]:
        with Timer() as t:
            fn()
        rows.append([stage, t.elapsed * 1000])
    save_record(
        "fig2", ["stage", "ms"], rows, "FIG 2 — RNS decomposition stages (batch=64)"
    )
