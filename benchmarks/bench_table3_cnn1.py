"""Table III — CNN1-HE vs CNN1-HE-RNS: latency (min/max/avg) and accuracy.

Paper: 3.56 s -> 2.27 s (36.2% speed-up), accuracy 98.22 both rows.
Expected shape here: identical accuracy for both backends; CKKS-RNS
strictly faster than the multiprecision baseline (our pure-Python
substrate typically widens the gap well beyond 36%).
"""

from conftest import save_record, save_trace_artifact

from repro.bench.tables import run_table3


def test_table3(benchmark, cnn1_models, preset):
    headers, rows = benchmark.pedantic(
        lambda: run_table3(cnn1_models), rounds=1, iterations=1
    )
    save_record(
        "table3", headers, rows, f"TABLE III — CNN1 (preset={preset.name})"
    )
    save_trace_artifact("table3")
    he_row, rns_row = rows[0], rows[1]
    assert he_row[-1] == rns_row[-1], "accuracy parity violated"
    assert rns_row[4] < he_row[4], "RNS should be faster than multiprecision"
