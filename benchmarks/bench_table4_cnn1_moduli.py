"""Table IV — CNN1-HE-RNS latency across moduli-chain lengths (3..10).

Paper: monotone decrease from 2.27 s (k=3) to a minimum of 1.67 s at
k=9, small uptick at k=10.  The sweep knob is the Fig. 5 decomposition
of the convolution stage at a fixed total precision budget; the
homomorphic tail is k-independent and reported as a constant column.
"""

from conftest import save_record

from repro.bench.tables import run_table4


def test_table4(benchmark, cnn1_models, preset):
    headers, rows = benchmark.pedantic(
        lambda: run_table4(cnn1_models), rounds=1, iterations=1
    )
    save_record(
        "table4",
        headers,
        rows,
        f"TABLE IV — CNN1-HE-RNS moduli sweep (preset={preset.name})",
    )
    ks = [r[0] for r in rows]
    assert ks == list(range(3, 11))
    assert all(r[1] > 0 for r in rows)
