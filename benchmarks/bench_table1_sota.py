"""Table I — state-of-the-art NN-HE summary, with our measured rows.

The literature rows are constants from the paper; our CNN1/CNN2 rows are
measured on this machine (latency of one encrypted classification under
CKKS-RNS; accuracy over the mock backend on the synthetic test set).
"""

from conftest import save_record

from repro.bench.tables import measure_engine_latency, mock_accuracy, table1_rows
from repro.bench.workloads import make_engine


def test_table1(benchmark, cnn1_models, cnn2_models, preset):
    measured = []
    for models in (cnn1_models, cnn2_models):
        engine = make_engine(models, "ckks-rns")
        stats = measure_engine_latency(engine, models.x_test[:1], repeats=1)
        acc = mock_accuracy(models) * 100
        measured.append((f"{models.arch.upper()}-HE-RNS (ours)", stats.avg, acc))

    def regen():
        return table1_rows(measured)

    headers, rows = benchmark.pedantic(regen, rounds=1, iterations=1)
    save_record(
        "table1",
        headers,
        rows,
        f"TABLE I — SOTA summary + ours (preset={preset.name})",
    )
