"""Supporting bench: primitive op latencies for both schemes.

This is the microscopic version of the paper's headline: every CKKS-RNS
primitive runs on int64 residue channels, every multiprecision CKKS
primitive on big-int coefficients.
"""

import numpy as np
import pytest
from conftest import save_record, save_trace_artifact

from repro.ckks import CkksContext, CkksParams
from repro.ckksrns import CkksRnsContext, CkksRnsParams
from repro.utils.timing import Timer

N = 1024
DEPTH = 4


@pytest.fixture(scope="module")
def mp():
    ctx = CkksContext(CkksParams(n=N, scale_bits=26, q0_bits=40, levels=DEPTH))
    keys = ctx.keygen(0)
    z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
    return ctx, keys, ctx.encrypt(keys.pk, z, 0)


@pytest.fixture(scope="module")
def rns():
    ctx = CkksRnsContext(
        CkksRnsParams(n=N, moduli_bits=(40,) + (26,) * DEPTH, special_bits=49)
    )
    keys = ctx.keygen(0)
    z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
    return ctx, keys, ctx.encrypt(keys.pk, z, 0)


def test_rns_mul(benchmark, rns):
    ctx, keys, ct = rns
    benchmark(lambda: ctx.mul(ct, ct, keys.relin))


def test_mp_mul(benchmark, mp):
    ctx, keys, ct = mp
    benchmark.pedantic(lambda: ctx.mul(ct, ct, keys.relin), rounds=3, iterations=1)


def test_rns_add(benchmark, rns):
    ctx, _, ct = rns
    benchmark(lambda: ctx.add(ct, ct))


def test_mp_add(benchmark, mp):
    ctx, _, ct = mp
    benchmark(lambda: ctx.add(ct, ct))


def test_rns_mul_plain_scalar(benchmark, rns):
    ctx, _, ct = rns
    benchmark(lambda: ctx.mul_plain_scalar(ct, 0.37))


def test_mp_mul_plain_scalar(benchmark, mp):
    ctx, _, ct = mp
    benchmark(lambda: ctx.mul_plain_scalar(ct, 0.37))


def test_rns_rescale(benchmark, rns):
    ctx, keys, ct = rns
    prod = ctx.mul(ct, ct, keys.relin)
    benchmark(lambda: ctx.rescale(prod))


def test_mp_rescale(benchmark, mp):
    ctx, keys, ct = mp
    prod = ctx.mul(ct, ct, keys.relin)
    benchmark(lambda: ctx.rescale(prod))


def test_primitive_summary(benchmark, mp, rns):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, (ctx, keys, ct) in [("CKKS (multiprecision)", mp), ("CKKS-RNS", rns)]:
        with Timer() as t_mul:
            ctx.mul(ct, ct, keys.relin)
        with Timer() as t_add:
            ctx.add(ct, ct)
        with Timer() as t_pl:
            ctx.mul_plain_scalar(ct, 0.5)
        rows.append([name, t_mul.elapsed * 1e3, t_add.elapsed * 1e3, t_pl.elapsed * 1e3])
    save_record(
        "primitives",
        ["scheme", "ct*ct (ms)", "ct+ct (ms)", "ct*scalar (ms)"],
        rows,
        f"Primitive latencies at N={N}, depth={DEPTH}",
    )
    save_trace_artifact("primitives")
