"""Keyswitch strategies on the SLAF tail: eager vs lazy vs hoisted.

One ``poly_eval`` per SLAF degree 2..8 on both real schemes, three
relinearisation strategies:

* **eager** — every ciphertext product keyswitches immediately
  (``program.ct_mults ~ 2*sqrt(d)`` sweeps);
* **lazy** — products stay in degree-2/3 extended space and each block
  sum relinearises once, post-rescale (``program.relins ~ sqrt(d)``
  sweeps), with the hoisted-digit cache disabled;
* **lazy+hoist** (CKKS-RNS only) — lazy plus the level-keyed hoisted
  digit-decomposition cache (``keyswitch.hoist.*``); hoisting is an RNS
  digit-domain concept so the multiprecision scheme has no such mode.

Counters (``relin.count``, ``keyswitch.hoist.{hit,miss}``) are metered
per evaluation and recorded alongside the timings, so the sweep-count
claim (lazy = ``program.relins``) is checked structurally, not by
wall-clock.  See ``docs/KERNELS.md`` for the per-degree relin table.
"""

import time

import numpy as np
import pytest
from conftest import save_record

from repro.ckks import CkksParams
from repro.ckksrns import CkksRnsParams
from repro.henn.backend import CkksBackend, CkksRnsBackend
from repro.nt.kernels import compile_poly_program
from repro.obs.metrics import get_registry

RNS_N = 512
CKKS_N = 256
DEPTH = 8  # levels; degree-8 BSGS consumes program.depth = 5
DEGREES = range(2, 9)
ROUNDS = 3


def _coeffs(degree: int) -> np.ndarray:
    return np.random.default_rng(degree).uniform(-0.5, 0.5, degree + 1)


@pytest.fixture(scope="module")
def rns_backend():
    return CkksRnsBackend(
        CkksRnsParams(n=RNS_N, moduli_bits=(40,) + (26,) * DEPTH, special_bits=49),
        seed=0,
    )


@pytest.fixture(scope="module")
def ckks_backend():
    return CkksBackend(
        CkksParams(n=CKKS_N, scale_bits=26, q0_bits=40, levels=DEPTH), seed=0
    )


def _meter_eval(backend, ct, coeffs):
    """(seconds, relins, hoist hits, hoist misses) for one poly_eval."""
    reg = get_registry()
    relin0 = reg.counter("relin.count").value
    hit0 = reg.counter("keyswitch.hoist.hit").value
    miss0 = reg.counter("keyswitch.hoist.miss").value
    t0 = time.perf_counter()
    backend.poly_eval(ct, coeffs)
    secs = time.perf_counter() - t0
    return (
        secs,
        reg.counter("relin.count").value - relin0,
        reg.counter("keyswitch.hoist.hit").value - hit0,
        reg.counter("keyswitch.hoist.miss").value - miss0,
    )


def _run_modes(backend, modes):
    """Benchmark every (mode, degree) cell on one backend.

    Each cell keeps the best-of-ROUNDS wall time and the (identical
    across rounds) counter deltas of the last round.
    """
    ctx = getattr(backend, "ctx", None)
    default_hoist = getattr(ctx, "hoist_cache_bytes", 0)
    rows = []
    rng = np.random.default_rng(7)
    for mode, relin_mode, hoisted in modes:
        backend.relin_mode = relin_mode
        if ctx is not None and hasattr(ctx, "hoist_cache_bytes"):
            ctx.hoist_cache_bytes = default_hoist if hoisted else 0
            ctx.clear_hoist_cache()
        for degree in DEGREES:
            coeffs = _coeffs(degree)
            ct = backend.encrypt(rng.uniform(-1, 1, min(backend.max_batch, 64)))
            best, relins, hits, misses = _meter_eval(backend, ct, coeffs)
            for _ in range(ROUNDS - 1):
                secs, relins, hits, misses = _meter_eval(backend, ct, coeffs)
                best = min(best, secs)
            prog = compile_poly_program(degree)
            expected = prog.relins if relin_mode == "lazy" else prog.ct_mults
            assert relins == expected, (
                f"{backend.name}/{mode} degree {degree}: {relins} relins, "
                f"expected {expected}"
            )
            rows.append([backend.name, mode, degree, best, relins, hits, misses])
    backend.relin_mode = "lazy"
    if ctx is not None and hasattr(ctx, "hoist_cache_bytes"):
        ctx.hoist_cache_bytes = default_hoist
        ctx.clear_hoist_cache()
    return rows


def test_keyswitch_strategies(benchmark, rns_backend, ckks_backend):
    rows = _run_modes(
        rns_backend,
        [
            ("eager", "eager", False),
            ("lazy", "lazy", False),
            ("lazy+hoist", "lazy", True),
        ],
    )
    rows += _run_modes(
        ckks_backend, [("eager", "eager", False), ("lazy", "lazy", False)]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    results = {
        f"{scheme}.{mode}.d{degree}.seconds": secs
        for scheme, mode, degree, secs, *_ in rows
    }
    save_record(
        "keyswitch",
        ["scheme", "mode", "degree", "seconds", "relins", "hoist hits", "hoist misses"],
        rows,
        f"KEYSWITCH — eager vs lazy vs hoisted SLAF evaluation "
        f"(RNS n={RNS_N}, CKKS n={CKKS_N}, depth={DEPTH}, best of {ROUNDS})",
        results=results,
    )

    # The headline: lazy must never sweep more than eager.
    by_cell = {(r[0], r[1], r[2]): r[4] for r in rows}
    for degree in DEGREES:
        for scheme in ("ckks-rns", "ckks"):
            assert by_cell[(scheme, "lazy", degree)] <= by_cell[(scheme, "eager", degree)]
