"""Plan cache — cold vs warm single-image latency on CNN1-HE-RNS.

Compares the unplanned (encode-per-call) engine against the planned
engine's cold first classify (which fills the scalar plaintext cache)
and its warm steady state (zero plaintext encodes, verified by the
``plan.encode.fresh`` counter, not by timing).  See
``docs/PERFORMANCE.md`` for the methodology.
"""

import re
import time
from pathlib import Path

from conftest import save_record

from repro.bench.workloads import make_engine
from repro.henn.backend import CkksRnsBackend
from repro.henn.inference import HeInferenceEngine
from repro.obs.metrics import get_registry

WARM_ROUNDS = 3


def _fig5_baseline_seconds():
    """Total seconds recorded by bench_fig5_pipeline.py, if it has run."""
    path = Path(__file__).resolve().parent.parent / "bench_artifacts" / "fig5.txt"
    if not path.exists():
        return None
    match = re.search(r"^total\s*\|\s*([0-9.]+)", path.read_text(), re.MULTILINE)
    return float(match.group(1)) if match else None


def _classify_seconds(engine, image):
    t0 = time.perf_counter()
    engine.classify(image)
    return time.perf_counter() - t0


def test_plan_cache_cold_vs_warm(benchmark, cnn1_models, preset):
    image = cnn1_models.x_test[:1]
    reg = get_registry()

    # Baseline: a fresh backend with planning disabled (no caches at all).
    base_backend = CkksRnsBackend(preset.rns_params(cnn1_models.depth), seed=0)
    baseline = HeInferenceEngine(
        base_backend, cnn1_models.he_layers, cnn1_models.input_shape, plan=False
    )
    baseline_secs = min(_classify_seconds(baseline, image) for _ in range(2))

    # Planned engine (make_engine default): cold call compiles nothing —
    # the plan was built at construction — but fills the scalar cache.
    engine = make_engine(cnn1_models, "ckks-rns")
    cold_secs = _classify_seconds(engine, image)

    fresh0 = reg.counter("plan.encode.fresh").value
    miss0 = reg.counter("plan.cache.miss").value
    warm_samples = [_classify_seconds(engine, image) for _ in range(WARM_ROUNDS)]
    warm_secs = min(warm_samples)
    warm_fresh = reg.counter("plan.encode.fresh").value - fresh0
    warm_miss = reg.counter("plan.cache.miss").value - miss0

    benchmark.pedantic(lambda: engine.classify(image), rounds=1, iterations=1)

    hits = reg.counter("plan.cache.hit").value
    misses = reg.counter("plan.cache.miss").value
    hit_rate = hits / max(1, hits + misses)
    speedup = baseline_secs / warm_secs if warm_secs > 0 else float("inf")

    rows = [
        ["unplanned (encode per call)", baseline_secs, "-"],
        ["planned, cold (classify #1, cache filling)", cold_secs, "-"],
        [f"planned, warm (min of {WARM_ROUNDS})", warm_secs, f"{speedup:.2f}x"],
        ["warm fresh encodes (must be 0)", float(warm_fresh), "-"],
        ["warm cache misses (must be 0)", float(warm_miss), "-"],
        ["cache hit rate (session)", hit_rate, "-"],
        ["cache entries", float(len(engine.plan.cache)), "-"],
    ]
    fig5_secs = _fig5_baseline_seconds()
    if fig5_secs is not None:
        vs_fig5 = fig5_secs / warm_secs if warm_secs > 0 else float("inf")
        rows.append(
            ["recorded fig5 pipeline baseline (total)", fig5_secs, f"{vs_fig5:.2f}x"]
        )
    save_record(
        "plan_cache",
        ["configuration", "seconds", "vs unplanned"],
        rows,
        f"PLAN CACHE — CNN1-HE-RNS single image, cold vs warm (preset={preset.name})",
    )
    assert warm_fresh == 0, "warm classify performed fresh plaintext encodes"
    assert warm_miss == 0, "warm classify missed the plaintext cache"
