"""Ablation — DESIGN.md §5.3: SIMD batch packing amortisation.

One encrypted classification costs the same wall-clock whether 1 or
max-batch images ride in the slots; throughput therefore scales with
the batch while single-image latency is constant.
"""

from conftest import save_record

from repro.bench.tables import measure_engine_latency
from repro.bench.workloads import make_engine


def test_ablation_packing(benchmark, cnn1_models):
    engine = make_engine(cnn1_models, "ckks-rns")
    batches = [1, 4, 16]
    rows = []
    for b in batches:
        stats = measure_engine_latency(engine, cnn1_models.x_test[:b], repeats=1)
        rows.append([b, stats.avg, b / stats.avg])

    benchmark.pedantic(
        lambda: engine.classify(cnn1_models.x_test[:1]), rounds=1, iterations=1
    )
    lat1 = rows[0][1]
    lat16 = rows[-1][1]
    assert lat16 < 2.0 * lat1, "batched packing should not scale latency with batch"
    save_record(
        "ablation_packing",
        ["batch (images)", "latency (s)", "throughput (img/s)"],
        rows,
        "SIMD batch packing: latency is batch-invariant",
    )
