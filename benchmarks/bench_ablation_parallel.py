"""Ablation — DESIGN.md §5.2: executor choice for residue-channel dispatch.

On a multicore host the thread/process executors realise the paper's
per-residue parallelism; on a single-core container (like most CI) they
should roughly tie with serial — either way, results must be identical.
"""

import os

import numpy as np
import pytest
from conftest import save_record

from repro.ckksrns import CkksRnsContext, CkksRnsParams
from repro.parallel import SerialExecutor, ThreadExecutor
from repro.utils.timing import Timer


@pytest.mark.parametrize("executor_kind", ["serial", "thread"])
def test_ablation_executor(benchmark, executor_kind):
    params = CkksRnsParams(n=1024, moduli_bits=(40,) + (26,) * 7, special_bits=49)
    executor = SerialExecutor() if executor_kind == "serial" else ThreadExecutor(workers=8)
    ctx = CkksRnsContext(params, executor=executor)
    keys = ctx.keygen(0)
    z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
    ct = ctx.encrypt(keys.pk, z, 0)
    benchmark(lambda: ctx.mul(ct, ct, keys.relin))
    executor.close()


def test_ablation_executor_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    params = CkksRnsParams(n=1024, moduli_bits=(40,) + (26,) * 7, special_bits=49)
    rows = []
    results = {}
    for kind, ex in [("serial", SerialExecutor()), ("thread x8", ThreadExecutor(workers=8))]:
        ctx = CkksRnsContext(params, executor=ex)
        keys = ctx.keygen(0)
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        ct = ctx.encrypt(keys.pk, z, 0)
        with Timer() as t:
            out = ctx.mul(ct, ct, keys.relin)
        results[kind] = out.c0
        rows.append([kind, t.elapsed * 1e3])
        ex.close()
    assert np.array_equal(results["serial"], results["thread x8"])
    # Timing rows only: "host cores" is environment metadata, which the
    # record's env fingerprint already carries, so keep it out of the
    # regression-compared results.
    timing_results = {f"{kind}.ms": ms for kind, ms in rows}
    rows.append(["host cores", os.cpu_count()])
    save_record(
        "ablation_parallel",
        ["executor", "ct*ct (ms) / cores"],
        rows,
        "Executor ablation (CKKS-RNS mul)",
        results=timing_results,
    )
