"""Shared benchmark fixtures: preset resolution and trained-model cache.

Benchmarks print their tables and also persist them under
``bench_artifacts/`` so EXPERIMENTS.md can reference actual runs.
Select sizes with ``REPRO_BENCH_PRESET`` (tiny | reduced | paper).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import get_preset, prepare_models

ARTIFACTS = Path(__file__).resolve().parent.parent / "bench_artifacts"


def save_artifact(name: str, text: str) -> None:
    ARTIFACTS.mkdir(exist_ok=True)
    (ARTIFACTS / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def preset():
    return get_preset()


@pytest.fixture(scope="session")
def cnn1_models(preset):
    return prepare_models("cnn1", preset)


@pytest.fixture(scope="session")
def cnn2_models(preset):
    return prepare_models("cnn2", preset)
