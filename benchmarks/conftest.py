"""Shared benchmark fixtures: preset resolution and trained-model cache.

Benchmarks print their tables and also persist them under
``bench_artifacts/`` — both as the human ``<name>.txt`` table and as a
schema-versioned ``BENCH_<name>.json`` record
(:mod:`repro.bench.record`) that ``tools/bench_compare.py`` diffs
against the committed baselines.  Select sizes with
``REPRO_BENCH_PRESET`` (tiny | reduced | paper).

Set ``REPRO_BENCH_TRACE=1`` to enable the ``repro.obs`` tracer for the
whole benchmark session: bench scripts that call
:func:`save_trace_artifact` then additionally emit a per-primitive
breakdown (``<name>_primitives.txt``) and a raw span dump
(``<name>_trace.json``).  The default leaves the no-op tracer in place
so benchmark timings are unaffected.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import obs
from repro.bench import format_table, get_preset, make_record, prepare_models, write_record

ARTIFACTS = Path(__file__).resolve().parent.parent / "bench_artifacts"


def _trace_requested() -> bool:
    return os.environ.get("REPRO_BENCH_TRACE", "") not in ("", "0")


@pytest.fixture(scope="session", autouse=True)
def _bench_tracing():
    """Enable the global tracer for the session when REPRO_BENCH_TRACE is set."""
    if not _trace_requested():
        yield
        return
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


def save_artifact(name: str, text: str) -> None:
    ARTIFACTS.mkdir(exist_ok=True)
    (ARTIFACTS / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def save_record(name: str, headers, rows, title: str, results=None) -> None:
    """Persist one benchmark table as ``<name>.txt`` + ``BENCH_<name>.json``.

    The JSON record (schema ``repro.bench/1``) carries the table, an
    environment fingerprint, a snapshot of the metrics registry, and
    the flat timing ``results`` map that ``tools/bench_compare.py``
    judges regressions on (auto-derived from the table's time-like
    columns unless given explicitly).
    """
    save_artifact(name, format_table(headers, rows, title))
    record = make_record(
        name,
        headers,
        rows,
        title=title,
        results=results,
        metrics=obs.get_registry().snapshot(),
    )
    write_record(record, ARTIFACTS)


def save_trace_artifact(name: str) -> None:
    """Persist the current trace as JSON + per-primitive report, then reset.

    No-op when tracing is disabled, so bench scripts can call this
    unconditionally.  Clears the tracer and metrics registry afterwards so
    each benchmark's artifact covers only its own spans.
    """
    if not obs.enabled():
        return
    tracer = obs.get_tracer()
    registry = obs.get_registry()
    ARTIFACTS.mkdir(exist_ok=True)
    obs.dump_json(ARTIFACTS / f"{name}_trace.json", tracer, registry)
    report = obs.render_report(tracer, registry)
    (ARTIFACTS / f"{name}_primitives.txt").write_text(report + "\n")
    print("\n" + report)
    tracer.clear()
    registry.reset()


@pytest.fixture(scope="session")
def preset():
    return get_preset()


@pytest.fixture(scope="session")
def cnn1_models(preset):
    return prepare_models("cnn1", preset)


@pytest.fixture(scope="session")
def cnn2_models(preset):
    return prepare_models("cnn2", preset)
