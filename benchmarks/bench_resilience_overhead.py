"""Resilience — what the redundant RRNS channels cost.

The Fig. 5 conv stage evaluates ``k + r`` residue channels instead of
``k``; with serial dispatch the overhead ceiling is ``r / k``, and with
idle cores the redundant channels ride along nearly free.  This
benchmark measures the real end-to-end cost of ``redundancy`` on the
hybrid RNS conv stage, plus the price of an actual recovery (detection
+ projection test) when a channel is corrupted.
"""

import numpy as np
from conftest import save_record

from repro.henn.rnscnn import rns_conv_pipeline
from repro.resilience import FaultInjector
from repro.utils.timing import Timer


def _conv_inputs(rng=np.random.default_rng(0)):
    images = rng.uniform(0, 1, (32, 1, 12, 12))
    weight = rng.standard_normal((5, 1, 3, 3)) * 0.2
    return images, weight


def test_resilience_redundancy_overhead(benchmark):
    images, weight = _conv_inputs()

    benchmark(lambda: rns_conv_pipeline(images, weight, k=3, redundancy=2))

    with Timer() as t0:
        rns_conv_pipeline(images, weight, k=3, redundancy=0)
    base_ms = t0.elapsed * 1000

    rows = [["r=0 (baseline)", 3, base_ms, 0.0]]
    for r in (1, 2, 3):
        with Timer() as t:
            res = rns_conv_pipeline(images, weight, k=3, redundancy=r)
        assert res["exact"]
        ms = t.elapsed * 1000
        rows.append([f"r={r}", 3 + r, ms, 100.0 * (ms - base_ms) / base_ms])

    inj = FaultInjector(seed=0).corrupt_channel(channel=1, times=1)
    with Timer() as t:
        res = rns_conv_pipeline(images, weight, k=3, redundancy=2, fault_injector=inj)
    assert res["exact"] and res["faults"] == [1]
    rows.append(["r=2 + recovery", 5, t.elapsed * 1000, 100.0 * (t.elapsed * 1000 - base_ms) / base_ms])

    save_record(
        "resilience_overhead",
        ["config", "channels", "ms", "overhead %"],
        rows,
        "RESILIENCE — redundant-channel overhead (Fig. 5 conv stage, k=3, batch=32)",
    )
