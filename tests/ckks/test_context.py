"""Multiprecision CKKS: every primitive of §II, end to end."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams


def _enc(ctx, keys, z, rng):
    return ctx.encrypt(keys.pk, z, rng)


def test_params_validation():
    with pytest.raises(ValueError):
        CkksParams(n=100)
    with pytest.raises(ValueError):
        CkksParams(levels=0)
    with pytest.raises(ValueError):
        CkksParams(q0_bits=10, scale_bits=26)


def test_encrypt_decrypt(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    ct = _enc(ckks_ctx, ckks_keys, z, rng)
    assert ct.level == ckks_ctx.top_level
    out = ckks_ctx.decrypt_real(ckks_keys.sk, ct)
    assert np.max(np.abs(out - z)) < 1e-3


def test_decrypt_complex(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots) + 1j * rng.uniform(-1, 1, ckks_ctx.slots)
    ct = ckks_ctx.encrypt(ckks_keys.pk, z, rng)
    out = ckks_ctx.decrypt(ckks_keys.sk, ct)
    assert np.max(np.abs(out - z)) < 1e-3


def test_homomorphic_add_sub_neg(ckks_ctx, ckks_keys, rng):
    z1 = rng.uniform(-1, 1, ckks_ctx.slots)
    z2 = rng.uniform(-1, 1, ckks_ctx.slots)
    c1, c2 = _enc(ckks_ctx, ckks_keys, z1, rng), _enc(ckks_ctx, ckks_keys, z2, rng)
    assert np.allclose(ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.add(c1, c2)), z1 + z2, atol=1e-3)
    assert np.allclose(ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.sub(c1, c2)), z1 - z2, atol=1e-3)
    assert np.allclose(ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.negate(c1)), -z1, atol=1e-3)


def test_mul_and_rescale(ckks_ctx, ckks_keys, rng):
    z1 = rng.uniform(-1, 1, ckks_ctx.slots)
    z2 = rng.uniform(-1, 1, ckks_ctx.slots)
    c1, c2 = _enc(ckks_ctx, ckks_keys, z1, rng), _enc(ckks_ctx, ckks_keys, z2, rng)
    cm = ckks_ctx.mul(c1, c2, ckks_keys.relin)
    assert np.isclose(cm.scale, c1.scale * c2.scale)
    cm = ckks_ctx.rescale(cm)
    assert cm.level == c1.level - 1
    assert np.allclose(ckks_ctx.decrypt_real(ckks_keys.sk, cm), z1 * z2, atol=1e-3)


def test_square_matches_mul(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    via_sq = ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.rescale(ckks_ctx.square(c, ckks_keys.relin)))
    via_mul = ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.rescale(ckks_ctx.mul(c, c, ckks_keys.relin)))
    assert np.allclose(via_sq, via_mul, atol=1e-3)
    assert np.allclose(via_sq, z * z, atol=1e-3)


def test_plain_ops(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    w = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    assert np.allclose(
        ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.add_plain(c, w)), z + w, atol=1e-3
    )
    cp = ckks_ctx.rescale(ckks_ctx.mul_plain(c, w))
    assert np.allclose(ckks_ctx.decrypt_real(ckks_keys.sk, cp), z * w, atol=1e-3)
    cs = ckks_ctx.rescale(ckks_ctx.mul_plain_scalar(c, -0.73))
    assert np.allclose(ckks_ctx.decrypt_real(ckks_keys.sk, cs), -0.73 * z, atol=1e-3)


def test_scalar_add(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    out = ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.add_plain(c, 0.5))
    assert np.allclose(out, z + 0.5, atol=1e-3)


def test_rotation(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    for r in (1, 2, 5):
        out = ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.rotate(c, r, ckks_keys.galois))
        assert np.allclose(out, np.roll(z, -r), atol=1e-3), f"rotation {r}"


def test_rotation_zero_is_identity(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    out = ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.rotate(c, 0, ckks_keys.galois))
    assert np.allclose(out, z, atol=1e-3)


def test_rotation_missing_key(ckks_ctx, ckks_keys, rng):
    c = _enc(ckks_ctx, ckks_keys, np.zeros(ckks_ctx.slots), rng)
    with pytest.raises(KeyError):
        ckks_ctx.rotate(c, 3, ckks_keys.galois)


def test_depth_chain(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    want = z.copy()
    for _ in range(3):
        c = ckks_ctx.rescale(ckks_ctx.square(c, ckks_keys.relin))
        want = want * want
    assert np.max(np.abs(ckks_ctx.decrypt_real(ckks_keys.sk, c) - want)) < 5e-3


def test_level_alignment_in_add(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    low = ckks_ctx.mod_switch_to(c, c.level - 2)
    out = ckks_ctx.decrypt_real(ckks_keys.sk, ckks_ctx.add(c, low))
    assert np.allclose(out, 2 * z, atol=1e-3)


def test_scale_mismatch_rejected(ckks_ctx, ckks_keys, rng):
    z = rng.uniform(-1, 1, ckks_ctx.slots)
    c = _enc(ckks_ctx, ckks_keys, z, rng)
    cp = ckks_ctx.mul_plain_scalar(c, 0.5)
    with pytest.raises(ValueError, match="scale"):
        ckks_ctx.add(c, cp)


def test_rescale_below_zero_rejected(ckks_ctx, ckks_keys, rng):
    c = _enc(ckks_ctx, ckks_keys, np.zeros(ckks_ctx.slots), rng)
    c = ckks_ctx.mod_switch_to(c, 0)
    with pytest.raises(ValueError):
        ckks_ctx.rescale(c)


def test_mod_switch_up_rejected(ckks_ctx, ckks_keys, rng):
    c = _enc(ckks_ctx, ckks_keys, np.zeros(ckks_ctx.slots), rng)
    low = ckks_ctx.mod_switch_to(c, 1)
    with pytest.raises(ValueError):
        ckks_ctx.mod_switch_to(low, 2)


def test_fresh_ciphertext_indistinguishable_without_key(ckks_ctx, ckks_keys, rng):
    """Different messages yield completely different-looking ciphertexts and
    decryption with the wrong key fails to recover the plaintext."""
    z = np.ones(ckks_ctx.slots) * 0.5
    c1 = _enc(ckks_ctx, ckks_keys, z, rng)
    other = ckks_ctx.keygen(999)
    wrong = ckks_ctx.decrypt_real(other.sk, c1)
    assert np.max(np.abs(wrong - z)) > 1.0  # noise-like garbage
