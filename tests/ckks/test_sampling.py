"""RLWE distributions: HW(h), ZO, rounded Gaussian."""

import numpy as np
import pytest

from repro.ckks.sampling import sample_gaussian, sample_hwt, sample_zo


def test_hwt_exact_weight(rng):
    s = sample_hwt(256, 32, rng)
    assert np.count_nonzero(s) == 32
    assert set(np.unique(s[s != 0])) <= {-1, 1}


def test_hwt_validation(rng):
    with pytest.raises(ValueError):
        sample_hwt(10, 0, rng)
    with pytest.raises(ValueError):
        sample_hwt(10, 11, rng)


def test_zo_support_and_rate(rng):
    s = sample_zo(20_000, rng, rho=0.5)
    assert set(np.unique(s)) <= {-1, 0, 1}
    rate = np.count_nonzero(s) / s.size
    assert 0.45 < rate < 0.55


def test_zo_validation(rng):
    with pytest.raises(ValueError):
        sample_zo(10, rng, rho=0.0)


def test_gaussian_stats(rng):
    s = sample_gaussian(50_000, rng, sigma=3.2)
    assert s.dtype == np.int64
    assert abs(float(s.mean())) < 0.1
    assert 2.9 < float(s.std()) < 3.5


def test_gaussian_zero_sigma(rng):
    assert np.all(sample_gaussian(100, rng, sigma=0.0) == 0)
    with pytest.raises(ValueError):
        sample_gaussian(10, rng, sigma=-1.0)


def test_determinism():
    a = sample_hwt(64, 8, np.random.default_rng(5))
    b = sample_hwt(64, 8, np.random.default_rng(5))
    assert np.array_equal(a, b)
