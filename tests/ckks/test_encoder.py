"""Canonical-embedding encoder: roundtrips, slot ordering, error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.encoder import CkksEncoder


@pytest.fixture(scope="module")
def enc():
    return CkksEncoder(64)


def test_embed_project_roundtrip(enc, rng):
    z = rng.uniform(-1, 1, enc.slots) + 1j * rng.uniform(-1, 1, enc.slots)
    back = enc.project(enc.embed(z))
    assert np.max(np.abs(back - z)) < 1e-10


def test_embed_gives_real_coeffs(enc, rng):
    z = rng.uniform(-1, 1, enc.slots) + 1j * rng.uniform(-1, 1, enc.slots)
    coeffs = enc.embed(z)
    assert coeffs.dtype == np.float64
    assert coeffs.shape == (enc.n,)


def test_encode_decode_roundtrip(enc, rng):
    z = rng.uniform(-10, 10, enc.slots)
    scale = 2.0**30
    back = enc.decode(enc.encode(z, scale), scale)
    assert np.max(np.abs(np.real(back) - z)) < 1e-6
    assert np.max(np.abs(np.imag(back))) < 1e-6


def test_encode_partial_vector(enc):
    z = np.array([1.0, 2.0, 3.0])
    back = enc.decode(enc.encode(z, 2.0**26), 2.0**26)
    assert np.allclose(np.real(back[:3]), z, atol=1e-5)
    assert np.allclose(np.real(back[3:]), 0.0, atol=1e-5)


def test_encoding_error_shrinks_with_scale(enc, rng):
    z = rng.uniform(-0.05, 0.05, enc.slots)
    err_small = enc.encoding_error(z, 2.0**8).max()
    err_big = enc.encoding_error(z, 2.0**30).max()
    assert err_big < err_small


def test_additive_homomorphism(enc, rng):
    scale = 2.0**26
    a = rng.uniform(-1, 1, enc.slots)
    b = rng.uniform(-1, 1, enc.slots)
    ca = enc.encode(a, scale)
    cb = enc.encode(b, scale)
    back = enc.decode(ca + cb, scale)
    assert np.max(np.abs(np.real(back) - (a + b))) < 1e-6


def test_rotation_ordering(enc, rng):
    """Galois map X -> X^5 left-rotates slots by one in the 5^j ordering."""
    from repro.nt.polynomial import PolyRing

    scale = 2.0**26
    z = rng.uniform(-1, 1, enc.slots)
    q = 1 << 50
    ring = PolyRing(enc.n, q)
    m = np.mod(enc.encode(z, scale), q)
    m5 = ring.automorphism(m, 5)
    back = enc.decode(ring.to_centered(m5), scale)
    assert np.max(np.abs(np.real(back) - np.roll(z, -1))) < 1e-5


def test_conjugation_element(enc, rng):
    """X -> X^(2n-1) conjugates the slots."""
    from repro.nt.polynomial import PolyRing

    scale = 2.0**26
    z = rng.uniform(-1, 1, enc.slots) + 1j * rng.uniform(-1, 1, enc.slots)
    q = 1 << 50
    ring = PolyRing(enc.n, q)
    m = np.mod(enc.encode(z, scale), q)
    mc = ring.automorphism(m, 2 * enc.n - 1)
    back = enc.decode(ring.to_centered(mc), scale)
    assert np.max(np.abs(back - np.conj(z))) < 1e-5


def test_validation():
    with pytest.raises(ValueError):
        CkksEncoder(6)
    enc = CkksEncoder(16)
    with pytest.raises(ValueError):
        enc.encode(np.zeros(100), 2.0**20)  # too many slots
    with pytest.raises(ValueError):
        enc.encode(np.zeros(4), -1.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=8, max_size=8))
def test_roundtrip_property(values):
    enc = CkksEncoder(16)
    z = np.array(values)
    back = np.real(enc.decode(enc.encode(z, 2.0**32), 2.0**32))
    assert np.max(np.abs(back - z)) < 1e-4
