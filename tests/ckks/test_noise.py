"""Noise measurement utilities and growth behaviour."""

import numpy as np
import pytest

from repro.ckks.noise import fresh_noise_bound, measure_error, noise_budget_bits


def test_measure_error():
    stats = measure_error(np.array([1.001, 2.0]), np.array([1.0, 2.0]))
    assert np.isclose(stats["max_abs"], 0.001)
    assert stats["max_rel"] > 0
    assert stats["bits_precision"] > 9
    with pytest.raises(ValueError):
        measure_error(np.zeros(2), np.zeros(3))


def test_fresh_noise_bound_monotone():
    assert fresh_noise_bound(2048) > fresh_noise_bound(1024)
    assert fresh_noise_bound(1024, sigma=6.4) > fresh_noise_bound(1024, sigma=3.2)


def test_noise_budget_rule():
    # Table II: log q = 366, Δ = 2^26, CNN2 depth 13 -> positive headroom
    assert noise_budget_bits(366, 26, 13) > 0
    # the same circuit cannot fit a 200-bit modulus
    assert noise_budget_bits(300, 26, 13) < 0


def test_error_grows_with_depth(ckks_ctx, ckks_keys, rng):
    """Decryption error increases monotonically-ish along a mult chain."""
    z = rng.uniform(0.9, 1.1, ckks_ctx.slots)  # magnitudes ~1 so error accumulates
    ct = ckks_ctx.encrypt(ckks_keys.pk, z, rng)
    want = z.copy()
    errs = [measure_error(ckks_ctx.decrypt_real(ckks_keys.sk, ct), want)["max_abs"]]
    for _ in range(3):
        ct = ckks_ctx.rescale(ckks_ctx.square(ct, ckks_keys.relin))
        want = want * want
        errs.append(measure_error(ckks_ctx.decrypt_real(ckks_keys.sk, ct), want)["max_abs"])
    assert errs[-1] > errs[0]
