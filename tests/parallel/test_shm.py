"""Zero-copy residue dispatch: arena packing, fallback paths, fault survival."""

import numpy as np
import pytest

from repro.obs.metrics import get_registry
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ShmArena,
    ShmArrayRef,
    ThreadExecutor,
    dispatch_channels,
    shm_available,
    uses_processes,
)
from repro.parallel.shm import _ALIGN, resolve

needs_shm = pytest.mark.skipif(not shm_available(), reason="POSIX shared memory unavailable")


def _channel_sum(arrays, i):
    """Module-level worker (picklable): sum one channel of each array."""
    return float(arrays["a"][i].sum()) + float(arrays["b"][i].sum())


def _channel_slice(arrays, i):
    """Returns an ndarray view of the segment — must come back detached."""
    return arrays["a"][i]


# -- ShmArena ---------------------------------------------------------------


@needs_shm
def test_arena_roundtrip(rng):
    a = rng.integers(-(2**40), 2**40, size=(3, 4, 16)).astype(np.int64)
    b = rng.uniform(-1, 1, size=(5, 7))
    with ShmArena({"a": a, "b": b}) as arena:
        assert set(arena.refs) == {"a", "b"}
        for ref in arena.refs.values():
            assert ref.offset % _ALIGN == 0
        va = resolve(arena.refs["a"])
        vb = resolve(arena.refs["b"])
        assert np.array_equal(va, a)
        assert np.array_equal(vb, b)
        assert va.dtype == a.dtype and vb.dtype == b.dtype


@needs_shm
def test_arena_rejects_object_dtype():
    arr = np.empty(3, dtype=object)
    with pytest.raises(TypeError):
        ShmArena({"bad": arr})


@needs_shm
def test_arena_close_idempotent():
    arena = ShmArena({"a": np.arange(8)})
    arena.close()
    arena.close()  # second close is a no-op


def test_ref_nbytes():
    ref = ShmArrayRef("x", (3, 4), "<i8", 0)
    assert ref.nbytes == 3 * 4 * 8


# -- uses_processes ---------------------------------------------------------


def test_uses_processes_classification():
    assert not uses_processes(None)
    assert not uses_processes(SerialExecutor())
    with ThreadExecutor(workers=2) as tex:
        assert not uses_processes(tex)
    with ProcessExecutor(workers=1) as pex:
        assert uses_processes(pex)

    class _Chained:
        chain = ("process", "thread", "serial")

    class _NoProc:
        chain = ("thread", "serial")

    assert uses_processes(_Chained())
    assert not uses_processes(_NoProc())


def test_uses_processes_on_resilient_executor():
    from repro.resilience import ResiliencePolicy, ResilientExecutor

    fast = dict(backoff_base=0.001, backoff_max=0.01)
    with ResilientExecutor(
        primary="process", workers=2, policy=ResiliencePolicy(degrade=("serial",), **fast)
    ) as ex:
        assert uses_processes(ex)
    with ResilientExecutor(primary="serial", policy=ResiliencePolicy(**fast)) as ex:
        assert not uses_processes(ex)


# -- dispatch_channels ------------------------------------------------------


def test_dispatch_serial_matches_direct(rng):
    a = rng.uniform(-1, 1, size=(4, 32))
    b = rng.uniform(-1, 1, size=(4, 32))
    arrays = {"a": a, "b": b}
    expect = [_channel_sum(arrays, i) for i in range(4)]
    got = dispatch_channels(SerialExecutor(), _channel_sum, arrays, list(range(4)))
    assert got == expect


def test_dispatch_thread_is_inline_path(rng):
    """Thread executors must NOT pay for a segment: no dispatch counter bump."""
    reg = get_registry()
    d0 = reg.counter("parallel.shm.dispatches").value
    a = rng.uniform(-1, 1, size=(4, 32))
    arrays = {"a": a, "b": a}
    with ThreadExecutor(workers=2) as ex:
        got = dispatch_channels(ex, _channel_sum, arrays, list(range(4)))
    assert got == [_channel_sum(arrays, i) for i in range(4)]
    assert reg.counter("parallel.shm.dispatches").value == d0


@needs_shm
def test_dispatch_process_matches_serial_and_counts(rng):
    a = rng.integers(-1000, 1000, size=(3, 64)).astype(np.int64)
    b = rng.uniform(-1, 1, size=(3, 64))
    arrays = {"a": a, "b": b}
    expect = [_channel_sum(arrays, i) for i in range(3)]
    reg = get_registry()
    d0 = reg.counter("parallel.shm.dispatches").value
    i0 = reg.counter("parallel.shm.items").value
    with ProcessExecutor(workers=2) as ex:
        got = dispatch_channels(ex, _channel_sum, arrays, list(range(3)))
    assert got == expect
    assert reg.counter("parallel.shm.dispatches").value == d0 + 1
    assert reg.counter("parallel.shm.items").value == i0 + 3


@needs_shm
def test_dispatch_single_item_skips_segment(rng):
    """One item is not worth a segment: inline even on a process pool."""
    reg = get_registry()
    d0 = reg.counter("parallel.shm.dispatches").value
    arrays = {"a": rng.uniform(size=(1, 8)), "b": rng.uniform(size=(1, 8))}
    with ProcessExecutor(workers=1) as ex:
        got = dispatch_channels(ex, _channel_sum, arrays, [0])
    assert got == [_channel_sum(arrays, 0)]
    assert reg.counter("parallel.shm.dispatches").value == d0


@needs_shm
def test_dispatch_result_views_are_detached(rng):
    """A worker returning a view of the segment must not hand the parent a
    buffer that dies when the arena is unlinked."""
    a = rng.integers(0, 100, size=(2, 16)).astype(np.int64)
    with ProcessExecutor(workers=2) as ex:
        got = dispatch_channels(ex, _channel_slice, {"a": a}, [0, 1])
    # The arena is closed by now; the results must still be readable.
    assert np.array_equal(got[0], a[0])
    assert np.array_equal(got[1], a[1])


@needs_shm
def test_dispatch_object_array_falls_back(rng):
    """Unshareable arrays take the pickle path and bump the fallback counter."""
    obj = np.empty(2, dtype=object)
    obj[0] = np.arange(4)
    obj[1] = np.arange(4, 8)
    reg = get_registry()
    f0 = reg.counter("parallel.shm.fallbacks").value

    with ProcessExecutor(workers=2) as ex:
        got = dispatch_channels(ex, _obj_sum, {"a": obj}, [0, 1])
    assert got == [6.0, 22.0]
    assert reg.counter("parallel.shm.fallbacks").value == f0 + 1


def _obj_sum(arrays, i):
    return float(np.asarray(arrays["a"][i]).sum())


# -- fault survival ---------------------------------------------------------


@pytest.mark.faults
@needs_shm
def test_shm_dispatch_survives_worker_kill(rng):
    """A worker SIGKILLed mid-flight breaks the pool; the resilient chain
    recreates it and the retry must still resolve the same refs (the
    arena is only unlinked after the map returns)."""
    from repro.resilience import FaultInjector, ResiliencePolicy, ResilientExecutor

    inj = FaultInjector(seed=0).fail_worker(item=1, mode="kill", times=1)
    a = rng.integers(0, 1000, size=(3, 128)).astype(np.int64)
    expect = [float(a[i].sum()) for i in range(3)]
    policy = ResiliencePolicy(
        max_retries=2, degrade=("serial",), backoff_base=0.001, backoff_max=0.01
    )
    reg = get_registry()
    rec0 = reg.counter("resilience.pool_recreations").value
    with ResilientExecutor(primary="process", workers=2, policy=policy, injector=inj) as ex:
        got = dispatch_channels(ex, _channel_only_a, {"a": a}, [0, 1, 2])
    assert got == expect
    assert reg.counter("resilience.pool_recreations").value >= rec0 + 1
    assert inj.summary() == {"worker.kill": 1}


def _channel_only_a(arrays, i):
    return float(arrays["a"][i].sum())


@pytest.mark.faults
@needs_shm
def test_rns_context_shm_process_matches_serial(rng):
    """End to end: the CKKS-RNS context under a process executor (shm
    dispatch) computes bit-identical ciphertexts to the serial context."""
    from repro.ckksrns import CkksRnsContext, CkksRnsParams

    params = CkksRnsParams(n=64, moduli_bits=(36, 26, 26), scale_bits=26, special_bits=45, hw=8)
    serial_ctx = CkksRnsContext(params)
    with ProcessExecutor(workers=2) as ex:
        proc_ctx = CkksRnsContext(params, executor=ex)
        ks = serial_ctx.keygen(5)
        kp = proc_ctx.keygen(5)
        assert np.array_equal(ks.pk.b, kp.pk.b)
        z = rng.uniform(-1, 1, serial_ctx.slots)
        cs = serial_ctx.encrypt(ks.pk, z, 9)
        cp = proc_ctx.encrypt(kp.pk, z, 9)
        assert np.array_equal(cs.c0, cp.c0)
        ms = serial_ctx.rescale(serial_ctx.mul(cs, cs, ks.relin))
        mp = proc_ctx.rescale(proc_ctx.mul(cp, cp, kp.relin))
        assert np.array_equal(ms.c0, mp.c0)
        assert np.allclose(
            serial_ctx.decrypt(ks.sk, ms), proc_ctx.decrypt(kp.sk, mp)
        )
