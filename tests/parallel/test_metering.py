"""ProcessExecutor metering: worker telemetry merges back into the parent."""

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.tracer import Tracer
from repro.parallel import ProcessExecutor


@pytest.fixture()
def fresh_registry():
    prev = get_registry()
    reg = set_registry(MetricsRegistry())
    try:
        yield reg
    finally:
        set_registry(prev)


def _work(i):
    """Worker payload: bumps counters/gauges and opens spans."""
    reg = get_registry()
    reg.counter("worker.items").inc()
    reg.counter("worker.ops").inc(i)
    reg.gauge("worker.level").set(float(i))
    reg.histogram("worker.seconds").observe(0.01 * (i + 1))
    with obs.span("worker.outer", item=i):
        with obs.span("worker.inner"):
            pass
    return i * i


def _span_on_forked_tracer(i):
    """Record a span on a tracer that believes it belongs to another process.

    Same situation as a fork-inherited tracer inside a pool worker: the
    recording pid differs from the owning pid, so the span must be
    counted as dropped rather than stored in memory the owner will
    never read.
    """
    tracer = Tracer()
    tracer._pid = -1
    with tracer.span("lost.span"):
        pass
    return i


def test_metered_map_merges_counters_spans_and_workers(fresh_registry):
    with obs.tracing(metrics=fresh_registry) as tracer:
        with ProcessExecutor(workers=2) as ex:
            out = ex.map(_work, list(range(4)))
    assert out == [0, 1, 4, 9]
    assert fresh_registry.counter("worker.items").value == 4
    assert fresh_registry.counter("worker.ops").value == 0 + 1 + 2 + 3
    assert fresh_registry.histogram("worker.seconds").count == 4
    # gauges adopt a worker's last value; the envelope spans all items
    g = fresh_registry.gauge("worker.level").to_dict()
    assert g["min"] == 0.0 and g["max"] == 3.0

    spans = tracer.finished()
    names = [s.name for s in spans]
    assert names.count("worker.outer") == 4 and names.count("worker.inner") == 4
    # absorbed worker spans are re-ided uniquely and tagged with their worker
    ids = [s.span_id for s in spans]
    assert len(ids) == len(set(ids))
    workers = {s.tags["worker"] for s in spans if s.name.startswith("worker.")}
    assert all(w.startswith("worker-") for w in workers)
    # parent links survive the id remap
    for inner in (s for s in spans if s.name == "worker.inner"):
        parents = [s for s in spans if s.span_id == inner.parent_id]
        assert len(parents) == 1 and parents[0].name == "worker.outer"

    ledgers = fresh_registry.per_worker()
    assert ledgers and set(ledgers) == workers
    assert sum(l["worker.items"]["value"] for l in ledgers.values()) == 4


def test_untraced_map_is_not_metered(fresh_registry):
    with ProcessExecutor(workers=2) as ex:
        out = ex.map(_work, list(range(4)))
    assert out == [0, 1, 4, 9]
    # worker registries were forked copies; nothing came home
    assert fresh_registry.names() == []
    assert fresh_registry.per_worker() == {}


def test_single_item_map_runs_inline(fresh_registry):
    with obs.tracing(metrics=fresh_registry):
        with ProcessExecutor(workers=2) as ex:
            assert ex.map(_work, [5]) == [25]
    # inline execution records into the parent registry directly: no ledger
    assert fresh_registry.counter("worker.items").value == 1
    assert fresh_registry.per_worker() == {}


def test_spans_dropped_counter_ships_home(fresh_registry):
    """A span recorded on a fork-inherited tracer is counted, not lost silently."""
    with obs.tracing(metrics=fresh_registry):
        with ProcessExecutor(workers=2) as ex:
            ex.map(_span_on_forked_tracer, list(range(3)))
    # the worker-side drop counter travelled back inside the metered delta
    assert fresh_registry.counter("obs.spans.dropped").value == 3


def test_dropped_span_counted_in_process(fresh_registry):
    """Unit view of the same contract, no pool involved."""
    tracer = Tracer()
    tracer._pid = -1
    with tracer.span("lost.span"):
        pass
    assert tracer.finished() == []
    assert fresh_registry.counter("obs.spans.dropped").value == 1


def test_starmap_is_metered_too(fresh_registry):
    with obs.tracing(metrics=fresh_registry):
        with ProcessExecutor(workers=2) as ex:
            out = ex.starmap(_np_add, [(1, 2), (3, 4)])
    assert out == [3, 7]
    assert fresh_registry.counter("add.calls").value == 2


def _np_add(a, b):
    get_registry().counter("add.calls").inc()
    return int(np.int64(a) + np.int64(b))
