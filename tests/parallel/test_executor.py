"""Executors: order preservation, result agreement, lifecycle."""

import numpy as np
import pytest

from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    interleave,
    make_executor,
    shard_indices,
)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


@pytest.mark.parametrize("kind", ["serial", "thread"])
def test_map_order_preserved(kind):
    with make_executor(kind, workers=4) as ex:
        out = ex.map(_square, list(range(20)))
    assert out == [i * i for i in range(20)]


def test_process_executor():
    with ProcessExecutor(workers=2) as ex:
        out = ex.map(_square, [1, 2, 3, 4])
    assert out == [1, 4, 9, 16]


def test_single_item_short_circuit():
    ex = ThreadExecutor(workers=2)
    assert ex.map(_square, [7]) == [49]
    assert ex._pool is None  # no pool spun up for one item
    ex.close()


def test_starmap():
    with SerialExecutor() as ex:
        assert ex.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]


def test_process_executor_starmap():
    """Regression: starmap must not wrap fn in a lambda — process pools
    pickle the callable, so the adapter has to be a module-level class."""
    with ProcessExecutor(workers=2) as ex:
        assert ex.starmap(_add, [(1, 2), (3, 4), (5, 6)]) == [3, 7, 11]


def test_executors_agree_on_numpy_work(rng):
    data = [rng.integers(0, 100, 50) for _ in range(6)]

    def work(a):
        return (a * 3 + 1) % 97

    serial = SerialExecutor().map(work, data)
    with ThreadExecutor(workers=3) as tex:
        threaded = tex.map(work, data)
    for s, t in zip(serial, threaded):
        assert np.array_equal(s, t)


def test_make_executor_unknown():
    with pytest.raises(ValueError):
        make_executor("gpu")


def test_close_idempotent():
    ex = ThreadExecutor(workers=2)
    ex.map(_square, [1, 2])
    ex.close()
    ex.close()


def test_shard_indices_balanced():
    shards = shard_indices(10, 3)
    assert [len(s) for s in shards] == [4, 3, 3]
    assert sorted(i for s in shards for i in s) == list(range(10))
    assert shard_indices(2, 5) == [[0], [1]]
    assert shard_indices(0, 3) == [[]]
    with pytest.raises(ValueError):
        shard_indices(-1, 2)
    with pytest.raises(ValueError):
        shard_indices(5, 0)


def test_interleave_inverse_of_sharding():
    shards = shard_indices(11, 4)
    results = [[i * 10 for i in s] for s in shards]
    flat = interleave(results, shards, 11)
    assert flat == [i * 10 for i in range(11)]
    with pytest.raises(ValueError):
        interleave([[1, 2]], [[0]], 2)


def test_rns_context_with_thread_executor(rng):
    """The CKKS-RNS context computes identical results under any executor."""
    from repro.ckksrns import CkksRnsContext, CkksRnsParams
    from repro.parallel import ThreadExecutor

    params = CkksRnsParams(n=64, moduli_bits=(36, 26, 26), scale_bits=26, special_bits=45, hw=8)
    serial_ctx = CkksRnsContext(params)
    thread_ctx = CkksRnsContext(params, executor=ThreadExecutor(workers=3))
    ks = serial_ctx.keygen(5)
    kt = thread_ctx.keygen(5)
    assert np.array_equal(ks.pk.b, kt.pk.b)
    z = rng.uniform(-1, 1, serial_ctx.slots)
    cs = serial_ctx.encrypt(ks.pk, z, 9)
    ct = thread_ctx.encrypt(kt.pk, z, 9)
    assert np.array_equal(cs.c0, ct.c0)
    ms = serial_ctx.rescale(serial_ctx.mul(cs, cs, ks.relin))
    mt = thread_ctx.rescale(thread_ctx.mul(ct, ct, kt.relin))
    assert np.array_equal(ms.c0, mt.c0)
    thread_ctx.executor.close()


# -- pool lifecycle regressions (resilience satellites) ----------------------


def _raise_on_three(x):
    if x == 3:
        raise ValueError("poisoned item")
    return x * x


def _kill_self(x):
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


@pytest.mark.parametrize("kind", ["thread", "process"])
def test_map_after_raising_map_still_works(kind):
    """Regression: a worker exception must not leave a dead pool cached —
    the next map has to run, not re-raise a stale error."""
    with make_executor(kind, workers=2) as ex:
        with pytest.raises(ValueError):
            ex.map(_raise_on_three, [1, 2, 3, 4])
        assert ex.map(_square, [5, 6, 7]) == [25, 36, 49]


@pytest.mark.faults
def test_map_after_broken_process_pool_recovers():
    """A SIGKILLed worker breaks the pool; the executor must discard it
    and serve the next map from a fresh one."""
    from concurrent.futures import BrokenExecutor

    with ProcessExecutor(workers=2) as ex:
        with pytest.raises(BrokenExecutor):
            ex.map(_kill_self, [1, 2, 3])
        assert ex._pool is None  # broken pool was discarded
        assert ex.map(_square, [2, 3]) == [4, 9]


def test_reset_is_idempotent_and_nonblocking():
    ex = ThreadExecutor(workers=2)
    assert ex.map(_square, [1, 2]) == [1, 4]
    ex.reset()
    ex.reset()
    assert ex._pool is None
    assert ex.map(_square, [3, 4]) == [9, 16]  # lazily recreated
    ex.close()


def test_close_after_reset_idempotent():
    ex = ProcessExecutor(workers=1)
    assert ex.map(_square, [1, 2]) == [1, 4]
    ex.reset()
    ex.close()
    ex.close()


def test_submit_single_item():
    with ThreadExecutor(workers=2) as ex:
        fut = ex.submit(_square, 9)
        assert fut.result(timeout=30) == 81


def test_pool_executors_registered_for_atexit():
    """Internally-created executors are tracked so the atexit hook can
    close them (leak-proofing for make_executor callers)."""
    from repro.parallel.executor import _LIVE_POOLS

    ex = make_executor("thread", workers=1)
    assert ex in _LIVE_POOLS
    ex.close()
