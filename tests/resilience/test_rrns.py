"""RRNS channel recovery: detection, correction, erasures, exhaustion."""

import numpy as np
import pytest

from repro.nt.crt import CrtBasis
from repro.obs.metrics import get_registry
from repro.resilience import ChannelIntegrityError, RedundantBasis


@pytest.fixture(scope="module")
def rb():
    # 26-bit data moduli (realistic channel width), 2 redundant.
    base = CrtBasis([67108859, 67108837, 67108819])
    return RedundantBasis.extend(base, 2)


@pytest.fixture(scope="module")
def values(rb):
    rng = np.random.default_rng(7)
    half = rb.data.modulus // 2
    lo = int(-min(half, 2**62))
    hi = int(min(half, 2**62))
    return np.array([int(v) for v in rng.integers(lo, hi, 32)], dtype=object)


def test_extend_validates(rb):
    assert rb.k == rb.k_data + rb.r == 5
    for m in rb.moduli[rb.k_data:]:
        assert m >= max(rb.moduli[: rb.k_data])
    assert len(set(rb.moduli)) == rb.k
    with pytest.raises(ValueError):
        RedundantBasis([97, 101], [89])  # redundant modulus too small
    with pytest.raises(ValueError):
        RedundantBasis([97, 101], [])
    with pytest.raises(ValueError):
        RedundantBasis.extend(CrtBasis([97]), 0)


def test_clean_roundtrip(rb, values):
    v, faults = rb.recover(rb.decompose(values))
    assert np.array_equal(v, values)
    assert faults == []
    assert rb.check(rb.decompose(values))


@pytest.mark.parametrize("channel", range(5))
def test_single_corruption_any_channel(rb, values, channel):
    """Corrupting *any* one channel — data or redundant — is corrected."""
    chans = rb.decompose(values)
    m = rb.moduli[channel]
    chans[channel] = (chans[channel] + 12345) % m
    v, faults = rb.recover(chans)
    assert np.array_equal(v, values)
    assert faults == [channel]


@pytest.mark.parametrize("channel", range(5))
def test_single_erasure_any_channel(rb, values, channel):
    chans = rb.decompose(values)
    chans[channel] = None
    v, faults = rb.recover(chans)
    assert np.array_equal(v, values)
    assert faults == [channel]


def test_erasure_plus_corruption_needs_three_redundant(values):
    """Mixed faults: an erasure costs 1 redundant modulus, a correction 2."""
    rb3 = RedundantBasis.extend(CrtBasis([67108859, 67108837, 67108819]), 3)
    chans = rb3.decompose(values)
    chans[0] = None
    chans[3] = (chans[3] + 999) % rb3.moduli[3]
    v, faults = rb3.recover(chans)
    assert np.array_equal(v, values)
    assert faults == [0, 3]


def test_two_erasures_consume_all_redundancy(rb, values):
    chans = rb.decompose(values)
    chans[1] = None
    chans[4] = None
    v, faults = rb.recover(chans)
    assert np.array_equal(v, values)
    assert sorted(faults) == [1, 4]


def test_too_many_erasures_raise(rb, values):
    chans = rb.decompose(values)
    for i in (0, 1, 2):
        chans[i] = None
    with pytest.raises(ChannelIntegrityError) as ei:
        rb.recover(chans)
    assert ei.value.suspects == (0, 1, 2)


def test_corruption_with_one_erasure_raises_not_miscorrects(rb, values):
    """At r=2, one erasure + one corruption exceed the e + 2c <= r budget;
    the result must be a typed failure, never a silently wrong value."""
    chans = rb.decompose(values)
    chans[0] = None
    chans[3] = (chans[3] + 999) % rb.moduli[3]
    with pytest.raises(ChannelIntegrityError):
        rb.recover(chans)


def test_double_corruption_detected_not_miscorrected(rb, values):
    """Two corrupted channels cannot be localised by the single-exclusion
    search; the failure must be a typed error, never a wrong value."""
    chans = rb.decompose(values)
    chans[0] = (chans[0] + 17) % rb.moduli[0]
    chans[2] = (chans[2] + 31) % rb.moduli[2]
    with pytest.raises(ChannelIntegrityError):
        rb.recover(chans)


def test_channel_count_enforced(rb, values):
    with pytest.raises(ValueError):
        rb.recover(rb.decompose(values)[:-1])
    with pytest.raises(ValueError):
        rb.check(rb.decompose(values)[:-1])


def test_recovery_counters(rb, values):
    reg = get_registry()
    detected0 = reg.counter("resilience.faults_detected").value
    recovered0 = reg.counter("resilience.channel_recoveries").value
    chans = rb.decompose(values)
    chans[2] = (chans[2] + 5) % rb.moduli[2]
    rb.recover(chans)
    assert reg.counter("resilience.faults_detected").value == detected0 + 1
    assert reg.counter("resilience.channel_recoveries").value == recovered0 + 1
