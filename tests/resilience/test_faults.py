"""FaultInjector semantics: determinism, budgets, backend hooks."""

import numpy as np
import pytest

from repro.henn.backend import MockBackend
from repro.resilience import FaultInjector, InjectedFault


def _noop(x):
    return x


def test_seeded_determinism():
    a = FaultInjector(seed=11).corrupt_channel(times=3)
    b = FaultInjector(seed=11).corrupt_channel(times=3)
    moduli = [97, 101, 103]
    outs = [np.arange(5) % m for m in moduli]
    for _ in range(3):
        ra = a.apply_channel_faults(list(outs), moduli)
        rb = b.apply_channel_faults(list(outs), moduli)
        for x, y in zip(ra, rb):
            assert np.array_equal(x, y)
    assert a.events == b.events


def test_channel_budget_exhausts():
    inj = FaultInjector(seed=0).corrupt_channel(channel=1, times=2)
    moduli = [97, 101]
    outs = [np.arange(4) % m for m in moduli]
    first = inj.apply_channel_faults(outs, moduli)
    assert not np.array_equal(first[1], outs[1])
    assert np.array_equal(first[0], outs[0])  # other channels untouched
    inj.apply_channel_faults(outs, moduli)
    third = inj.apply_channel_faults(outs, moduli)  # budget spent
    assert np.array_equal(third[1], outs[1])
    assert inj.summary() == {"channel.corrupt": 2}


def test_channel_drop_marks_erasure():
    inj = FaultInjector(seed=0).corrupt_channel(channel=0, drop=True)
    outs = [np.arange(4) % 97, np.arange(4) % 101]
    faulted = inj.apply_channel_faults(outs, [97, 101])
    assert faulted[0] is None
    assert inj.summary() == {"channel.drop": 1}


def test_wrap_worker_consumes_budget_parent_side():
    inj = FaultInjector(seed=0).fail_worker(item=2, mode="exception", times=1)
    wrapped = inj.wrap_worker(_noop, item_index=2, attempt=1)
    with pytest.raises(InjectedFault):
        wrapped("payload")
    # Budget was consumed at wrap time: the retry dispatch runs clean.
    clean = inj.wrap_worker(_noop, item_index=2, attempt=2)
    assert clean is _noop
    assert inj.wrap_worker(_noop, item_index=0, attempt=1) is _noop


def test_invalid_worker_mode_rejected():
    with pytest.raises(ValueError):
        FaultInjector().fail_worker(item=0, mode="meteor")


def test_scale_perturbation_trips_mock_bookkeeping():
    """A mis-tracked scale must surface as the backend's scale-mismatch
    ValueError (a *detected* fault), not as silently wrong logits."""
    inj = FaultInjector(seed=0).perturb_scale(factor=1.5, times=1)
    be = MockBackend(batch=4, fault_injector=inj)
    bad = be.encrypt(np.ones(4))  # perturbed handle
    good = be.encrypt(np.ones(4))
    with pytest.raises(ValueError, match="scale mismatch"):
        be.add(bad, good)
    assert inj.summary() == {"scale.perturb": 1}


def test_ciphertext_corruption_hook():
    """Limb corruption at encrypt silently damages the plaintext — the
    motivating case for carrying RRNS redundancy in the conv stage."""
    from repro.ckksrns import CkksRnsParams
    from repro.henn.backend import CkksRnsBackend

    inj = FaultInjector(seed=0).corrupt_ciphertext(channel=0, times=1)
    be = CkksRnsBackend(
        CkksRnsParams(
            n=128, moduli_bits=(36, 26, 26), scale_bits=26, special_bits=45, hw=16
        ),
        seed=3,
        fault_injector=inj,
    )
    values = np.linspace(-1, 1, be.max_batch)
    corrupted = be.decrypt(be.encrypt(values))
    clean = be.decrypt(be.encrypt(values))
    assert inj.summary() == {"ciphertext.corrupt": 1}
    assert np.allclose(clean, values, atol=1e-3)
    assert not np.allclose(corrupted, values, atol=1e-3)
