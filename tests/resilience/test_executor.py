"""ResilientExecutor: retries, timeouts, degradation, exhaustion."""

import time

import pytest

from repro.obs.metrics import get_registry
from repro.resilience import (
    ExecutorExhaustedError,
    FaultInjector,
    ResiliencePolicy,
    ResilientExecutor,
)

FAST = dict(backoff_base=0.001, backoff_max=0.01)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError("boom")


def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        ResiliencePolicy(jitter=2.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(item_timeout=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(degrade=("gpu",))
    with pytest.raises(ValueError):
        ResiliencePolicy(on_exhausted="maybe")


def test_backoff_deterministic():
    import random

    p = ResiliencePolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0, jitter=0.2)
    a = [p.backoff_delay(i, random.Random(3)) for i in range(1, 5)]
    b = [p.backoff_delay(i, random.Random(3)) for i in range(1, 5)]
    assert a == b
    assert all(d <= 1.0 * 1.2 for d in a)


def test_clean_map_passthrough():
    with ResilientExecutor(primary="serial", policy=ResiliencePolicy(**FAST)) as ex:
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]


def test_retry_recovers_transient_fault():
    inj = FaultInjector(seed=0).fail_worker(item=1, mode="exception", times=1)
    reg = get_registry()
    retries0 = reg.counter("resilience.retries").value
    with ResilientExecutor(
        primary="serial", policy=ResiliencePolicy(**FAST), injector=inj
    ) as ex:
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert reg.counter("resilience.retries").value == retries0 + 1
    assert inj.summary() == {"worker.exception": 1}


def test_degradation_chain_reaches_serial():
    """A fault outliving a stage's retry budget falls through the chain."""
    inj = FaultInjector(seed=0).fail_worker(item=0, mode="exception", times=1)
    reg = get_registry()
    degr0 = reg.counter("resilience.degradations").value
    policy = ResiliencePolicy(max_retries=0, degrade=("serial",), **FAST)
    with ResilientExecutor(primary="thread", workers=2, policy=policy, injector=inj) as ex:
        assert ex.map(_square, [5, 6]) == [25, 36]
    assert reg.counter("resilience.degradations").value == degr0 + 1


def test_unpicklable_closure_degrades_from_process():
    """A closure cannot cross the process boundary; the chain must fall
    back to thread dispatch instead of surfacing a pickling error."""
    offset = 10

    def closure(x):
        return x + offset

    policy = ResiliencePolicy(max_retries=0, degrade=("thread", "serial"), **FAST)
    with ResilientExecutor(primary="process", workers=2, policy=policy) as ex:
        assert ex.map(closure, [1, 2, 3]) == [11, 12, 13]


def test_exhaustion_raises_typed_error():
    policy = ResiliencePolicy(max_retries=1, degrade=("serial",), **FAST)
    with ResilientExecutor(primary="serial", policy=policy) as ex:
        with pytest.raises(ExecutorExhaustedError) as ei:
            ex.map(_boom, [1, 2])
    assert ei.value.failed_items == (0, 1)
    assert isinstance(ei.value.last_error, RuntimeError)


def test_exhaustion_as_erasures():
    """on_exhausted='none' yields None placeholders — RRNS erasure shape."""
    inj = FaultInjector(seed=0).fail_worker(item=2, mode="exception", times=99)
    policy = ResiliencePolicy(max_retries=1, degrade=(), on_exhausted="none", **FAST)
    with ResilientExecutor(primary="serial", policy=policy, injector=inj) as ex:
        assert ex.map(_square, [1, 2, 3]) == [1, 4, None]


@pytest.mark.faults
def test_timeout_enforced_and_retried():
    inj = FaultInjector(seed=0).fail_worker(item=0, mode="delay", times=1, delay=1.5)
    reg = get_registry()
    t0 = reg.counter("resilience.timeouts").value
    policy = ResiliencePolicy(max_retries=1, item_timeout=0.25, degrade=("serial",), **FAST)
    with ResilientExecutor(primary="thread", workers=2, policy=policy, injector=inj) as ex:
        start = time.perf_counter()
        assert ex.map(_square, [3, 4]) == [9, 16]
        assert time.perf_counter() - start < 1.4  # did not wait out the delay
    assert reg.counter("resilience.timeouts").value == t0 + 1


@pytest.mark.faults
def test_killed_process_worker_recovers():
    """SIGKILLed worker → BrokenProcessPool → pool recreated → retry OK."""
    inj = FaultInjector(seed=0).fail_worker(item=1, mode="kill", times=1)
    reg = get_registry()
    rec0 = reg.counter("resilience.pool_recreations").value
    policy = ResiliencePolicy(max_retries=2, degrade=("serial",), **FAST)
    with ResilientExecutor(primary="process", workers=2, policy=policy, injector=inj) as ex:
        assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert reg.counter("resilience.pool_recreations").value >= rec0 + 1
    assert inj.summary() == {"worker.kill": 1}


def test_close_idempotent_and_reusable_chain():
    ex = ResilientExecutor(primary="thread", workers=2, policy=ResiliencePolicy(**FAST))
    assert ex.map(_square, [2]) == [4]
    ex.close()
    ex.close()
