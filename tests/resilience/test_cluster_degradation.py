"""Whole-pool loss: the cluster gateway degrades, it does not die.

Extends the resilience suite's degradation-chain story (process ->
thread -> serial in the executor) to the serving cluster: when every
worker is dead and none will respawn, batches fall back to serial
in-process evaluation on the gateway's own engine — slower, but every
future still resolves with correct scores.  With the fallback disabled,
the failure is the *retryable* sanitised ``unavailable`` error, never a
hang.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.henn.backend import MockBackend
from repro.henn.layers import HeFlatten, HeLinear, HePoly
from repro.henn.protocol import Client, ClusteredCloudService, CloudService

SHAPE = (1, 4, 4)


@pytest.fixture(scope="module")
def layers():
    rng = np.random.default_rng(2)
    return [
        HePoly([0.0, 1.0, 0.1]),
        HeFlatten(),
        HeLinear(rng.normal(0, 0.3, (5, 16)), np.zeros(5)),
    ]


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(3).uniform(0, 1, (4, 1, 4, 4))


def _kill_pool(pool):
    """SIGKILL every live worker and wait for the pool to notice."""
    for worker in pool.workers:
        if worker.proc is not None and worker.proc.is_alive():
            worker.proc.kill()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline and not pool.is_lost():
        time.sleep(0.02)
    assert pool.is_lost()


@pytest.mark.faults
def test_whole_pool_loss_degrades_to_serial_in_process(layers, images):
    backend = MockBackend(batch=8, levels=4)
    client = Client(backend, SHAPE)
    serial = CloudService(backend, layers, SHAPE)
    with ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=2,
        max_wait_ms=5.0,
        respawn=False,  # no way back: the pool stays lost
    ) as gateway:
        _kill_pool(gateway.pool)
        for i in range(3):
            enc = client.encrypt_request(images[i : i + 1])
            want = client.decrypt_response(serial.classify_encrypted(enc), batch=1)
            response = gateway.submit(enc).result(timeout=60)
            assert response.ok, response.error
            got = client.decrypt_response(response.scores, batch=1)
            assert np.array_equal(got, want)
        assert gateway.dispatcher.degraded is True
        cluster = gateway._health()["cluster"]
        assert cluster["ready"] == 0
        assert cluster["degraded_serial"] is True
        assert all(w["state"] == "dead" for w in cluster["workers"])


@pytest.mark.faults
def test_whole_pool_loss_without_fallback_is_retryable_not_a_hang(layers, images):
    backend = MockBackend(batch=8, levels=4)
    client = Client(backend, SHAPE)
    with ClusteredCloudService(
        backend,
        layers,
        SHAPE,
        workers=2,
        max_wait_ms=5.0,
        respawn=False,
        serial_fallback=False,
    ) as gateway:
        _kill_pool(gateway.pool)
        response = gateway.submit(client.encrypt_request(images[:1])).result(timeout=60)
        assert not response.ok
        assert response.error.code == "ClusterUnavailableError"
        assert response.error.category == "unavailable"
        assert response.error.retryable is True
        assert gateway.dispatcher.degraded is False
