"""Prime generation: primality, NTT-friendliness, distinctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.primes import (
    gen_coprime_chain,
    gen_ntt_primes,
    gen_primes,
    is_prime,
    next_prime,
    prev_prime,
)

_KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, (1 << 31) - 1, 2**61 - 1]
_KNOWN_COMPOSITES = [0, 1, 4, 100, 561, 1729, 25326001, (1 << 31) - 2]


@pytest.mark.parametrize("p", _KNOWN_PRIMES)
def test_known_primes(p):
    assert is_prime(p)


@pytest.mark.parametrize("c", _KNOWN_COMPOSITES)
def test_known_composites(c):
    assert not is_prime(c)


def test_next_prev_prime():
    assert next_prime(10) == 11
    assert next_prime(13) == 17
    assert prev_prime(10) == 7
    assert prev_prime(3) == 2
    with pytest.raises(ValueError):
        prev_prime(2)


@pytest.mark.parametrize("n", [64, 256, 2048])
def test_gen_ntt_primes_congruence(n):
    primes = gen_ntt_primes([30, 30, 40, 26], n)
    assert len(set(primes)) == 4
    for p, bits in zip(primes, [30, 30, 40, 26]):
        assert is_prime(p)
        assert p.bit_length() == bits
        assert p % (2 * n) == 1


def test_gen_ntt_primes_exclusion():
    first = gen_ntt_primes([30], 64)
    second = gen_ntt_primes([30], 64, exclude=set(first))
    assert first[0] != second[0]


def test_gen_ntt_primes_validation():
    with pytest.raises(ValueError):
        gen_ntt_primes([30], 63)  # not a power of two
    with pytest.raises(ValueError):
        gen_ntt_primes([55], 64)  # beyond supported width
    with pytest.raises(ValueError):
        gen_ntt_primes([10], 2048)  # too small for 2n steps


def test_gen_coprime_chain():
    chain = gen_coprime_chain(5, 26, 128)
    assert len(set(chain)) == 5
    assert all(p % 256 == 1 for p in chain)


@pytest.mark.parametrize("bits", [8, 30, 60, 120, 250])
def test_gen_primes_arbitrary_width(bits):
    ps = gen_primes([bits, bits])
    assert len(set(ps)) == 2
    for p in ps:
        assert is_prime(p)
        assert p.bit_length() == bits


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=10**6))
def test_next_prime_property(n):
    p = next_prime(n)
    assert p > n
    assert is_prime(p)
    for q in range(n + 1, p):
        assert not is_prime(q)
