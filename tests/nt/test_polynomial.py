"""Multiprecision negacyclic ring: Kronecker multiply, rescale helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nt.polynomial import PolyRing


def naive_mul(a, b, n, q):
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            v = int(a[i]) * int(b[j])
            if k >= n:
                out[k - n] = (out[k - n] - v) % q
            else:
                out[k] = (out[k] + v) % q
    return np.array(out, dtype=object)


@pytest.fixture(scope="module")
def ring():
    return PolyRing(16, (1 << 100) + 277)


def test_constructor_validation():
    with pytest.raises(ValueError):
        PolyRing(12, 97)
    with pytest.raises(ValueError):
        PolyRing(16, 1)


def test_mul_matches_naive(ring, rng):
    a = np.array([int(v) for v in rng.integers(0, 2**60, ring.n)], dtype=object) % ring.q
    b = np.array([int(v) for v in rng.integers(0, 2**60, ring.n)], dtype=object) % ring.q
    assert all(int(x) == int(y) for x, y in zip(ring.mul(a, b), naive_mul(a, b, ring.n, ring.q)))


def test_mul_with_huge_coefficients(ring, rng):
    a = ring.random_uniform(rng)
    b = ring.random_uniform(rng)
    got = ring.mul(a, b)
    ref = naive_mul(a, b, ring.n, ring.q)
    assert all(int(x) == int(y) for x, y in zip(got, ref))


def test_linear_ops(ring, rng):
    a = ring.random_uniform(rng)
    b = ring.random_uniform(rng)
    s = ring.add(a, b)
    assert all(int(x) == (int(u) + int(v)) % ring.q for x, u, v in zip(s, a, b))
    d = ring.sub(a, b)
    assert all(int(x) == (int(u) - int(v)) % ring.q for x, u, v in zip(d, a, b))
    m = ring.scalar_mul(a, 12345)
    assert all(int(x) == int(u) * 12345 % ring.q for x, u in zip(m, a))
    z = ring.add(a, ring.neg(a))
    assert all(int(x) == 0 for x in z)


def test_constant_and_zero(ring):
    c = ring.constant(-5)
    assert int(c[0]) == ring.q - 5
    assert all(int(v) == 0 for v in c[1:])
    assert all(int(v) == 0 for v in ring.zero())


def test_to_centered(ring):
    a = ring.constant(ring.q - 1)  # = -1 centered
    assert int(ring.to_centered(a)[0]) == -1


def test_round_div_half_away_from_zero():
    ring = PolyRing(4, 1 << 40)
    a = ring.from_coeffs(np.array([10, 15, -15 % ring.q, 14], dtype=object))
    out = ring.round_div(a, 10, 1 << 30)
    q2 = 1 << 30
    assert [int(v) for v in out] == [1, 2, (-2) % q2, 1]


def test_mod_switch_preserves_centered_value():
    ring = PolyRing(4, 1 << 60)
    small = 1 << 30
    a = ring.from_coeffs(np.array([5, -7 % ring.q, 0, 123], dtype=object))
    out = ring.mod_switch(a, small)
    assert [int(v) for v in out] == [5, (-7) % small, 0, 123]


def test_automorphism_identity_and_composition(ring, rng):
    a = ring.random_uniform(rng)
    assert all(int(x) == int(y) for x, y in zip(ring.automorphism(a, 1), a))
    # kappa_g1 . kappa_g2 = kappa_{g1*g2 mod 2n}
    g1, g2 = 5, 9
    lhs = ring.automorphism(ring.automorphism(a, g1), g2)
    rhs = ring.automorphism(a, (g1 * g2) % (2 * ring.n))
    assert all(int(x) == int(y) for x, y in zip(lhs, rhs))


def test_automorphism_even_rejected(ring):
    with pytest.raises(ValueError):
        ring.automorphism(ring.zero(), 4)


def test_automorphism_is_ring_morphism(ring, rng):
    """kappa_g(a*b) == kappa_g(a) * kappa_g(b)."""
    a = ring.random_uniform(rng)
    b = ring.random_uniform(rng)
    g = 2 * ring.n - 1
    lhs = ring.automorphism(ring.mul(a, b), g)
    rhs = ring.mul(ring.automorphism(a, g), ring.automorphism(b, g))
    assert all(int(x) == int(y) for x, y in zip(lhs, rhs))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=8, max_size=8))
def test_mul_commutative_property(coeffs):
    ring = PolyRing(8, (1 << 64) + 13)
    a = ring.from_coeffs(np.array(coeffs, dtype=object))
    b = ring.from_coeffs(np.array(coeffs[::-1], dtype=object))
    ab = ring.mul(a, b)
    ba = ring.mul(b, a)
    assert all(int(x) == int(y) for x, y in zip(ab, ba))
